//! Criterion benchmark of distance-table computation (Algorithm 1 step 2)
//! and of the ADC distance itself — the costs the paper folds into the
//! "<1 % of CPU time" steps.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pqfs_bench::Fixture;
use pqfs_core::DistanceTables;

fn bench_tables(c: &mut Criterion) {
    let mut fx = Fixture::train(1001);
    let query = fx.queries(1);
    let codes = fx.partition(1024);
    let tables = fx.tables(&query);

    let mut group = c.benchmark_group("distance_tables");
    group.bench_function("compute_8x256_tables", |b| {
        b.iter(|| DistanceTables::compute(&fx.pq, &query).unwrap())
    });
    group.throughput(Throughput::Elements(codes.len() as u64));
    group.bench_function("adc_distance_1k_codes", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for code in codes.iter() {
                acc += tables.distance(code);
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tables
}
criterion_main!(benches);

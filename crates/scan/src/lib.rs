//! Scan implementations for PQ nearest-neighbor search: the four PQ Scan
//! baselines the paper analyzes (§3) and **PQ Fast Scan** itself (§4).
//!
//! | Implementation | Paper | Layout | Per-vector work |
//! |---|---|---|---|
//! | [`scan_naive`] | Alg. 1 | row-major | 8 mem1 + 8 mem2 loads, scalar adds |
//! | [`scan_libpq`] | §3.1 | row-major | 1×64-bit mem1 load + shifts, 8 mem2 |
//! | [`scan_avx`] | §3.2 Fig. 4 | transposed | scalar lookups, SIMD vertical adds |
//! | [`scan_gather`] | §3.2 Fig. 5 | transposed | AVX2 `vpgatherdps` lookups |
//! | [`FastScanIndex`] | §4 | grouped+packed | in-register `pshufb` lookups, ~95 % of exact computations pruned |
//! | [`scan_quantize_only`] | §5.5 | row-major | 8-bit bounds from full tables (pruning-power study) |
//!
//! Every implementation returns the **exact same result set** — the `topk`
//! smallest `(distance, id)` pairs — which the test suite verifies pairwise
//! and property-based tests verify against brute force.

pub mod avx;
mod error;
pub mod fastscan;
pub mod gather;
pub mod libpq;
pub mod naive;
pub mod quantize;
pub mod quantize_only;
mod result;

pub use avx::scan_avx;
pub use error::ScanError;
pub use fastscan::{FastScanIndex, FastScanOptions, Kernel, ScanParams};
pub use gather::scan_gather;
pub use libpq::scan_libpq;
pub use naive::scan_naive;
pub use quantize::{DistanceQuantizer, DEFAULT_BINS, NO_PRUNE, PAPER_BINS};
pub use quantize_only::scan_quantize_only;
pub use result::{ScanResult, ScanStats};

//! Criterion benchmark of batch-query throughput versus pool size.
//!
//! Measures `IvfadcIndex::search_batch_on` — the paper's §3.1 "parallelizes
//! naturally over multiple queries" path — on explicit [`ThreadPool`]s of
//! 1, 2, 4 and 8 threads, so the parallel-efficiency trajectory is visible
//! from one run. The single-probe and multi-probe (`nprobe = 4`) variants
//! are timed separately: the latter exercises the intra-query fan-out of
//! `search_probes` on the same pool.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqfs_bench::{synthetic_index, DIM};
use pqfs_ivf::SearchBackend;
use pqfs_pool::ThreadPool;

const QUERIES: usize = 64;

fn bench_batch_qps(c: &mut Criterion) {
    let (index, queries) = synthetic_index(20_000, 8, QUERIES, 42);

    let mut group = c.benchmark_group("batch_qps");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(QUERIES as u64));
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_function(BenchmarkId::new("search_batch", threads), |b| {
            b.iter(|| {
                index
                    .search_batch_on(&queries, 100, SearchBackend::FastScan, 0.005, &pool)
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("search_probes_x4", threads), |b| {
            b.iter(|| {
                queries
                    .chunks_exact(DIM)
                    .map(|q| {
                        index
                            .search_probes_on(q, 100, SearchBackend::FastScan, 0.005, 4, &pool)
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_qps);
criterion_main!(benches);

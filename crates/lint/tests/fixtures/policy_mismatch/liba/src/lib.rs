//! Fixture: safe crate missing the forbid header.

pub fn nothing() {}

//! Criterion benchmark of `checked-kernels` shadow-execution overhead on
//! the batch-throughput path.
//!
//! The workload is the same `search_batch_on` loop as `batch_qps`, under
//! the same benchmark id in every compilation, so Criterion's saved
//! baseline reports the delta directly across runs:
//!
//! ```text
//! cargo bench -p pqfs_bench --bench checked_kernels_overhead
//! cargo bench -p pqfs_bench --bench checked_kernels_overhead --features checked-kernels
//! ```
//!
//! The first run (feature compiled out) is the baseline: shadow checking
//! costs exactly 0% because no checking code exists in the binary. The
//! second run samples one shadow execution per
//! [`DEFAULT_CHECK_RATE`](pqfs_scan::checked::DEFAULT_CHECK_RATE) = 64
//! kernel invocations (override with `PQFS_CHECK_RATE`); the budget for
//! the reported change is **<5% of batch QPS**. Unsampled invocations pay
//! one relaxed fetch-add, so nearly all of the delta is the 1-in-64
//! portable re-scan.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqfs_bench::synthetic_index;
use pqfs_ivf::SearchBackend;
use pqfs_pool::ThreadPool;

const QUERIES: usize = 64;
const THREADS: usize = 4;

fn bench_checked_kernels_overhead(c: &mut Criterion) {
    let variant = if cfg!(feature = "checked-kernels") {
        "checked-kernels ON (sampled shadow execution)"
    } else {
        "checked-kernels OFF (baseline)"
    };
    eprintln!("checked_kernels_overhead variant: {variant}");

    let (index, queries) = synthetic_index(20_000, 8, QUERIES, 42);
    let pool = ThreadPool::new(THREADS);

    let mut group = c.benchmark_group("checked_kernels_overhead");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function(BenchmarkId::new("search_batch", "fastscan"), |b| {
        b.iter(|| {
            index
                .search_batch_on(&queries, 100, SearchBackend::FastScan, 0.005, &pool)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_checked_kernels_overhead);
criterion_main!(benches);

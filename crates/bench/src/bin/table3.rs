//! Table 3 — sizes of the 8 IVF partitions of ANN_SIFT100M1 and the number
//! of queries the coarse index routes to each.
//!
//! The base set is a scaled synthetic substitute (DESIGN.md §2); the
//! structure under test — an 8-cell coarse quantizer producing unequal
//! partitions, with queries routed to their nearest cell — is the same.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin table3
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scale, DIM, TABLE3_QUERIES, TABLE3_SIZES_M};
use pqfs_data::{SyntheticConfig, SyntheticDataset};
use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
use pqfs_metrics::{fmt_count, TextTable};

fn main() {
    let n_base = (2_000_000.0 * scale()) as usize;
    let n_queries = env_usize("PQFS_QUERIES", 10_000);
    header(
        "table3",
        "Table 3, §5.1",
        &format!("base {n_base}, 8 partitions, {n_queries} queries"),
    );

    let mut dataset = SyntheticDataset::new(&SyntheticConfig::sift_like().with_seed(333));
    let train = dataset.sample(15_000);
    let base = dataset.sample(n_base);
    let queries = dataset.sample(n_queries);

    let mut config = IvfadcConfig::new(DIM, 8).with_seed(33);
    config.backends = vec![SearchBackend::Naive]; // only the structure matters here
    let index = IvfadcIndex::build(&train, &base, &config).expect("build");

    let mut routed = [0usize; 8];
    for q in queries.chunks_exact(DIM) {
        routed[index.select_partition(q)] += 1;
    }

    // Order partitions by descending size for readability (the paper labels
    // them 0..7 in its own arbitrary order).
    let sizes = index.partition_sizes();
    let mut order: Vec<usize> = (0..8).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(sizes[p]));

    let mut t = TextTable::new(vec!["Partition", "# vectors", "# queries"]);
    for (rank, &p) in order.iter().enumerate() {
        t.row(vec![
            rank.to_string(),
            fmt_count(sizes[p] as u64),
            fmt_count(routed[p] as u64),
        ]);
    }
    println!("{t}");

    println!("paper (ANN_SIFT100M1, 100 M vectors, 10 000 queries):");
    let mut paper = TextTable::new(vec!["Partition", "# vectors", "# queries"]);
    for p in 0..8 {
        paper.row(vec![
            p.to_string(),
            format!("{:.1}M", TABLE3_SIZES_M[p]),
            TABLE3_QUERIES[p].to_string(),
        ]);
    }
    println!("{paper}");
    println!(
        "shape check: both indexes produce strongly unequal partitions, and \
         larger partitions receive proportionally more queries."
    );
}

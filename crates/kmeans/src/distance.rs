//! Squared-L2 distance kernels.
//!
//! The whole reproduction works with *squared* Euclidean distances, as the
//! paper does (§2.2): squaring preserves the nearest-neighbor order and
//! avoids a square root per candidate.

/// Squared L2 distance between two equal-length slices.
///
/// The 4-way manually unrolled loop lets LLVM vectorize without `-ffast-math`
/// (the accumulation order is fixed, so results are deterministic across
/// builds).
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is used.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        tail += d * d;
    }
    (acc0 + acc1) + (acc2 + acc3) + tail
}

/// Index and squared distance of the centroid nearest to `v`.
///
/// `centroids` is a row-major `k × dim` matrix. Ties are broken toward the
/// lower index, which keeps every consumer in the workspace deterministic.
///
/// # Panics
///
/// Panics if `centroids.len()` is not a multiple of `dim`, or if it is empty.
#[inline]
pub fn nearest_centroid(v: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    assert!(dim > 0, "dim must be positive");
    assert!(
        !centroids.is_empty() && centroids.len() % dim == 0,
        "centroid matrix must be a non-empty multiple of dim"
    );
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.chunks_exact(dim).enumerate() {
        let d = l2_sq(v, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Squared distances from `v` to every row of `centroids` written into `out`.
///
/// This is the inner loop of distance-table computation (paper Eq. 2); it is
/// kept allocation-free so callers can reuse a scratch buffer per query.
///
/// # Panics
///
/// Panics if `out.len() * dim != centroids.len()`.
#[inline]
pub fn distances_to_all(v: &[f32], centroids: &[f32], dim: usize, out: &mut [f32]) {
    assert_eq!(
        out.len() * dim,
        centroids.len(),
        "output length must match the number of centroids"
    );
    for (o, c) in out.iter_mut().zip(centroids.chunks_exact(dim)) {
        *o = l2_sq(v, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_matches_naive_definition() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0f32, 4.0, 3.0, 2.0, 1.0];
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert_eq!(l2_sq(&a, &b), expect);
    }

    #[test]
    fn l2_sq_zero_for_identical_vectors() {
        let a = [0.5f32; 17];
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    #[test]
    fn l2_sq_handles_empty_slices() {
        assert_eq!(l2_sq(&[], &[]), 0.0);
    }

    #[test]
    fn l2_sq_handles_non_multiple_of_four_lengths() {
        for n in 1..=9usize {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32) + 1.0).collect();
            assert_eq!(l2_sq(&a, &b), n as f32, "length {n}");
        }
    }

    #[test]
    fn nearest_centroid_picks_minimum_and_breaks_ties_low() {
        let centroids = [0.0f32, 0.0, 2.0, 0.0, 2.0, 0.0]; // rows 1 and 2 identical
        let (idx, d) = nearest_centroid(&[2.0, 0.1], &centroids, 2);
        assert_eq!(idx, 1, "tie must go to the lower index");
        assert!((d - 0.01).abs() < 1e-6);
    }

    #[test]
    fn distances_to_all_fills_every_slot() {
        let centroids = [0.0f32, 0.0, 1.0, 0.0, 0.0, 1.0];
        let mut out = [0.0f32; 3];
        distances_to_all(&[0.0, 0.0], &centroids, 2, &mut out);
        assert_eq!(out, [0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn distances_to_all_rejects_bad_output_len() {
        let centroids = [0.0f32; 6];
        let mut out = [0.0f32; 2];
        distances_to_all(&[0.0, 0.0], &centroids, 2, &mut out);
    }
}

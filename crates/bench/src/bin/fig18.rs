//! Figure 18 — impact of the `topk` parameter on pruning power and scan
//! speed (keep = 0.5 %, all partitions).
//!
//! Larger result sets raise the distance to the topk-th neighbor, loosening
//! the pruning threshold: fewer candidates can be discarded and speed
//! decreases.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig18
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scaled_partition_sizes, Fixture};
use pqfs_core::RowMajorCodes;
use pqfs_metrics::{fmt_f, mvecs_per_sec, time_ms, Summary, TextTable};
use pqfs_scan::{Backend, PreparedScanner, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let sizes = scaled_partition_sizes();
    let queries_per_partition = env_usize("PQFS_QUERIES", 3);
    header(
        "fig18",
        "Figure 18, §5.4",
        &format!("partitions {sizes:?}, keep 0.5%, {queries_per_partition} queries each"),
    );

    let mut fx = Fixture::train(18);
    let opts = ScanOpts::default();
    let partitions: Vec<Arc<RowMajorCodes>> =
        sizes.iter().map(|&n| Arc::new(fx.partition(n))).collect();
    let prepare = |backend: Backend| -> Vec<Box<dyn PreparedScanner>> {
        partitions
            .iter()
            .map(|codes| {
                backend
                    .scanner(&opts)
                    .prepare(Arc::clone(codes))
                    .expect("prepare")
            })
            .collect()
    };
    let indexes = prepare(Backend::FastScan);
    let libpqs = prepare(Backend::Libpq);

    let mut t = TextTable::new(vec![
        "topk",
        "pruned [%]",
        "fastpq speed [Mv/s]",
        "libpq speed [Mv/s]",
        "speedup",
    ]);

    for topk in [1usize, 10, 100, 500, 1000] {
        let params = ScanParams::new(topk).with_keep(0.005);
        let mut pruned = Vec::new();
        let mut fast_speeds = Vec::new();
        let mut slow_speeds = Vec::new();
        for ((codes, index), libpq) in partitions.iter().zip(&indexes).zip(&libpqs) {
            for _ in 0..queries_per_partition {
                let q = fx.queries(1);
                let tables = fx.tables(&q);
                let (r, ms) = time_ms(|| index.scan(&tables, &params).unwrap());
                pruned.push(100.0 * r.stats.pruned_fraction());
                fast_speeds.push(mvecs_per_sec(codes.len(), ms));
                let (_, ms) = time_ms(|| libpq.scan(&tables, &params).unwrap());
                slow_speeds.push(mvecs_per_sec(codes.len(), ms));
            }
        }
        let f = Summary::from_values(&fast_speeds).median();
        let s = Summary::from_values(&slow_speeds).median();
        t.row(vec![
            topk.to_string(),
            fmt_f(Summary::from_values(&pruned).median(), 2),
            fmt_f(f, 0),
            fmt_f(s, 0),
            fmt_f(f / s, 1),
        ]);
    }
    println!("{t}");
    println!(
        "paper shape: pruning power and speed decrease monotonically with topk \
         (≈99.7 % pruned at topk=1 down to ≈95 % at topk=1000; speed roughly \
         halves from topk=100 to topk=1000); libpq speed is topk-insensitive."
    );
}

//! Figure 16 — impact of the `keep` parameter on pruning power and scan
//! speed, for topk = 100 and topk = 1000 (all partitions).
//!
//! `keep` controls how much of the database is scanned with plain PQ Scan
//! to find the temporary nearest neighbor that sets the `qmax` quantization
//! bound (§4.4): more warm-up ⇒ tighter bound ⇒ more pruning, until the
//! warm-up itself dominates and speed collapses.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig16
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scaled_partition_sizes, Fixture};
use pqfs_metrics::{fmt_f, mvecs_per_sec, time_ms, Summary, TextTable};
use pqfs_scan::{Backend, PreparedScanner, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let sizes = scaled_partition_sizes();
    let queries_per_partition = env_usize("PQFS_QUERIES", 3);
    header(
        "fig16",
        "Figure 16, §5.4",
        &format!("partitions {sizes:?}, {queries_per_partition} queries each"),
    );

    let mut fx = Fixture::train(16);
    let opts = ScanOpts::default();
    let prepare = |backend: Backend, codes: &Arc<pqfs_core::RowMajorCodes>| {
        backend
            .scanner(&opts)
            .prepare(Arc::clone(codes))
            .expect("prepare")
    };
    let partitions: Vec<Arc<pqfs_core::RowMajorCodes>> =
        sizes.iter().map(|&n| Arc::new(fx.partition(n))).collect();
    let indexes: Vec<Box<dyn PreparedScanner>> = partitions
        .iter()
        .map(|codes| prepare(Backend::FastScan, codes))
        .collect();
    let libpqs: Vec<Box<dyn PreparedScanner>> = partitions
        .iter()
        .map(|codes| prepare(Backend::Libpq, codes))
        .collect();

    let keeps = [0.0001, 0.001, 0.005, 0.01, 0.05, 0.1];
    let mut t = TextTable::new(vec![
        "topk",
        "keep [%]",
        "pruned [%]",
        "speed med [Mv/s]",
        "speed q1",
        "speed q3",
        "libpq [Mv/s]",
    ]);

    for topk in [100usize, 1000] {
        // libpq reference speed (keep-independent).
        let mut libpq_speeds = Vec::new();
        for (codes, libpq) in partitions.iter().zip(&libpqs) {
            let q = fx.queries(1);
            let tables = fx.tables(&q);
            let (_, ms) = time_ms(|| libpq.scan(&tables, &ScanParams::new(topk)).unwrap());
            libpq_speeds.push(mvecs_per_sec(codes.len(), ms));
        }
        let libpq_med = Summary::from_values(&libpq_speeds).median();

        for keep in keeps {
            let params = ScanParams::new(topk).with_keep(keep);
            let mut pruned = Vec::new();
            let mut speeds = Vec::new();
            for (codes, index) in partitions.iter().zip(&indexes) {
                for _ in 0..queries_per_partition {
                    let q = fx.queries(1);
                    let tables = fx.tables(&q);
                    let (r, ms) = time_ms(|| index.scan(&tables, &params).unwrap());
                    pruned.push(100.0 * r.stats.pruned_fraction());
                    speeds.push(mvecs_per_sec(codes.len(), ms));
                }
            }
            let p = Summary::from_values(&pruned);
            let s = Summary::from_values(&speeds);
            t.row(vec![
                topk.to_string(),
                fmt_f(keep * 100.0, 2),
                fmt_f(p.median(), 2),
                fmt_f(s.median(), 0),
                fmt_f(s.percentile(25.0), 0),
                fmt_f(s.percentile(75.0), 0),
                fmt_f(libpq_med, 0),
            ]);
        }
    }
    println!("{t}");
    println!(
        "paper shape: pruning power rises moderately with keep (94-99.7 % for \
         topk=100, lower for topk=1000); speed is flat in keep between 0.1 % \
         and 1 % and collapses at high keep where the PQ-Scan warm-up dominates."
    );
}

//! The in-register lookup kernels (paper §4.5).
//!
//! The small tables `S_0 … S_7` (16 bytes each) live in SIMD registers for
//! the duration of the scan. Per block of 16 vectors the kernel:
//!
//! 1. loads each 16-byte component array (6 loads per block for `c = 4` —
//!    the paper's "6 bytes per vector");
//! 2. extracts 4-bit indexes — low nibbles for grouped components, high
//!    nibbles (`psrlw 4` + mask) for the minimum-table components;
//! 3. looks up 16 values at once with `pshufb` (`_mm_shuffle_epi8`);
//! 4. accumulates with saturating unsigned adds (`_mm_adds_epu8`);
//! 5. compares the 16 lower bounds against the quantized threshold with the
//!    unsigned `min_epu8`/`cmpeq` idiom and extracts a candidate bitmask
//!    via `pmovmskb`.
//!
//! The scan loop over groups lives *inside* the kernel and is
//! **monomorphized on the number of grouping components** (`const C`): the
//! component loops fully unroll, the minimum-table registers stay resident
//! for the entire partition, and only the `C` portion registers reload at
//! group boundaries (solid arrows of the paper's Figure 13). A bit-exact
//! portable implementation is always available and doubles as the test
//! oracle.

// The kernels index fixed-size register arrays with the component number
// `j`; explicit `j in c..FS_M` loops mirror the paper's per-component
// notation and keep the grouped/min-table split visible.
#![allow(clippy::needless_range_loop)]

use crate::fastscan::grouping::GroupedCodes;
use crate::fastscan::layout::{FS_BLOCK, FS_M, PORTION};
use crate::ScanError;

/// Kernel back-end selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Pick the fastest back-end supported by the running CPU
    /// (AVX2 → SSSE3 → portable).
    #[default]
    Auto,
    /// The scalar emulation (available everywhere; test oracle).
    Portable,
    /// The SSSE3 `pshufb` kernel the paper describes.
    Ssse3,
    /// Extension: 256-bit kernel processing two blocks (32 codes) per
    /// iteration with the small tables broadcast to both 128-bit lanes —
    /// the step the paper's §6 anticipates for wider SIMD. Returns the
    /// exact same neighbors; pruning *statistics* may differ marginally
    /// because a block pair shares one threshold snapshot.
    Avx2,
}

/// A concrete back-end after CPU-feature resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedKernel {
    Portable,
    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    Ssse3,
    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    Avx2,
}

impl Kernel {
    /// Resolves against the running CPU.
    ///
    /// # Errors
    ///
    /// [`ScanError::KernelUnavailable`] when an explicitly requested SIMD
    /// back-end is unsupported.
    pub(crate) fn resolve(self) -> Result<ResolvedKernel, ScanError> {
        match self {
            Kernel::Auto => {
                #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
                {
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return Ok(ResolvedKernel::Avx2);
                    }
                    if std::arch::is_x86_feature_detected!("ssse3") {
                        return Ok(ResolvedKernel::Ssse3);
                    }
                }
                Ok(ResolvedKernel::Portable)
            }
            Kernel::Portable => Ok(ResolvedKernel::Portable),
            Kernel::Ssse3 => {
                #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
                {
                    if std::arch::is_x86_feature_detected!("ssse3") {
                        return Ok(ResolvedKernel::Ssse3);
                    }
                }
                Err(ScanError::KernelUnavailable { kernel: "ssse3" })
            }
            Kernel::Avx2 => {
                #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
                {
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return Ok(ResolvedKernel::Avx2);
                    }
                }
                Err(ScanError::KernelUnavailable { kernel: "avx2" })
            }
        }
    }
}

/// The per-query quantized tables a scan consumes.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScanTables {
    /// For each grouped component `j < c`: the full 256-entry quantized
    /// table (16-entry portions selected per group).
    pub grouped: Vec<Vec<u8>>,
    /// For each component: the 16-entry small table. Entries `c..8` hold
    /// the quantized minimum tables; entries `0..c` are scratch the kernels
    /// refresh per group.
    pub small: [[u8; PORTION]; FS_M],
}

/// Visitor invoked for every candidate: `(group_index, index_in_group)`;
/// returns the possibly updated quantized threshold.
pub(crate) trait Visit: FnMut(usize, usize) -> u8 {}
impl<F: FnMut(usize, usize) -> u8> Visit for F {}

/// Candidate bitmask of one block, portable reference: bit `lane` is set
/// when the saturated lower bound of that lane is `<= threshold` (the
/// vector survives pruning).
pub(crate) fn block_mask_portable(
    c: usize,
    block: &[u8],
    small: &[[u8; PORTION]; FS_M],
    threshold: u8,
) -> u16 {
    let pairs = c / 2;
    let odd = c % 2 == 1;
    let mut mask = 0u16;
    for lane in 0..FS_BLOCK {
        let mut acc = 0u8;
        let mut array = 0usize;
        for p in 0..pairs {
            let byte = block[array * FS_BLOCK + lane];
            array += 1;
            acc = acc.saturating_add(small[2 * p][(byte & 0x0F) as usize]);
            acc = acc.saturating_add(small[2 * p + 1][(byte >> 4) as usize]);
        }
        if odd {
            let byte = block[array * FS_BLOCK + lane];
            array += 1;
            acc = acc.saturating_add(small[c - 1][(byte & 0x0F) as usize]);
        }
        for j in c..FS_M {
            let byte = block[array * FS_BLOCK + lane];
            array += 1;
            acc = acc.saturating_add(small[j][(byte >> 4) as usize]);
        }
        if acc <= threshold {
            mask |= 1 << lane;
        }
    }
    mask
}

/// Scans the whole grouped partition with the portable kernel; returns the
/// number of candidates surfaced to `visit`.
pub(crate) fn scan_all_portable<F: Visit>(
    grouped: &GroupedCodes,
    tables: &mut ScanTables,
    mut threshold: u8,
    visit: &mut F,
) -> u64 {
    let c = grouped.layout().c();
    let bpb = grouped.layout().bytes_per_block();
    let mut candidates = 0u64;
    for (gi, g) in grouped.groups().iter().enumerate() {
        for j in 0..c {
            let portion = g.key[j] as usize * PORTION;
            tables.small[j].copy_from_slice(&tables.grouped[j][portion..portion + PORTION]);
        }
        let blocks = grouped.group_blocks(g);
        for b in 0..g.num_blocks() {
            let valid = (g.len - b * FS_BLOCK).min(FS_BLOCK);
            let valid_mask = if valid == FS_BLOCK {
                u16::MAX
            } else {
                (1u16 << valid) - 1
            };
            let block = &blocks[b * bpb..(b + 1) * bpb];
            let mut mask = block_mask_portable(c, block, &tables.small, threshold) & valid_mask;
            candidates += mask.count_ones() as u64;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                threshold = visit(gi, b * FS_BLOCK + lane);
            }
        }
    }
    candidates
}

#[cfg(all(target_arch = "x86_64", feature = "avx2"))]
pub(crate) mod x86 {
    //! The SSSE3 implementation (the paper's actual kernel), monomorphized
    //! on the grouping-component count `C`.

    use super::*;
    use std::arch::x86_64::*;

    /// Bytes per block for grouping on `c` components (const-folded).
    const fn bytes_per_block(c: usize) -> usize {
        (c / 2 + c % 2 + (FS_M - c)) * FS_BLOCK
    }

    /// Candidate bitmask of one block — SSSE3, unrolled for constant `C`.
    ///
    /// # Safety
    ///
    /// CPU must support SSSE3 and `block` must point at
    /// `bytes_per_block(C)` readable bytes.
    #[target_feature(enable = "ssse3")]
    #[inline]
    unsafe fn block_mask_ssse3<const C: usize>(
        block: *const u8,
        regs: &[__m128i; FS_M],
        threshold_vec: __m128i,
    ) -> u16 {
        let low = _mm_set1_epi8(0x0F);
        let mut acc = _mm_setzero_si128();
        let mut array = 0usize;

        // `array` counts component arrays already consumed; it stays
        // strictly below `C/2 + C%2 + (FS_M - C)`, so every unaligned
        // 16-byte load below reads inside the `bytes_per_block(C)` bytes
        // the caller guarantees.

        // Packed pairs of grouped components (low nibble = even component,
        // high nibble = odd component).
        for p in 0..C / 2 {
            // SAFETY: in-bounds unaligned load, see `array` invariant above.
            let bytes = unsafe { _mm_loadu_si128(block.add(array * FS_BLOCK) as *const __m128i) };
            array += 1;
            let lo = _mm_and_si128(bytes, low);
            acc = _mm_adds_epu8(acc, _mm_shuffle_epi8(regs[2 * p], lo));
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), low);
            acc = _mm_adds_epu8(acc, _mm_shuffle_epi8(regs[2 * p + 1], hi));
        }
        // Unpaired grouped component (odd C).
        if C % 2 == 1 {
            // SAFETY: in-bounds unaligned load, see `array` invariant above.
            let bytes = unsafe { _mm_loadu_si128(block.add(array * FS_BLOCK) as *const __m128i) };
            array += 1;
            let lo = _mm_and_si128(bytes, low);
            acc = _mm_adds_epu8(acc, _mm_shuffle_epi8(regs[C - 1], lo));
        }
        // Ungrouped components: full bytes, high nibble indexes the minimum
        // table.
        for j in C..FS_M {
            // SAFETY: in-bounds unaligned load, see `array` invariant above.
            let bytes = unsafe { _mm_loadu_si128(block.add(array * FS_BLOCK) as *const __m128i) };
            array += 1;
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), low);
            acc = _mm_adds_epu8(acc, _mm_shuffle_epi8(regs[j], hi));
        }

        // Unsigned `acc <= threshold` as min(acc, t) == acc.
        let cand = _mm_cmpeq_epi8(_mm_min_epu8(acc, threshold_vec), acc);
        _mm_movemask_epi8(cand) as u16
    }

    /// # Safety
    ///
    /// CPU must support SSSE3, and `C` must equal `grouped.layout().c()`
    /// (the layout the codes were packed for).
    #[target_feature(enable = "ssse3")]
    unsafe fn scan_all_ssse3_impl<const C: usize, F: Visit>(
        grouped: &GroupedCodes,
        tables: &ScanTables,
        mut threshold: u8,
        visit: &mut F,
    ) -> u64 {
        debug_assert_eq!(C, grouped.layout().c(), "kernel/layout c mismatch");
        // Minimum tables: loaded once, resident for the entire scan.
        let mut regs = [_mm_setzero_si128(); FS_M];
        for j in C..FS_M {
            // SAFETY: `tables.small[j]` is a `[u8; 16]` — exactly one
            // unaligned 128-bit load.
            regs[j] = unsafe { _mm_loadu_si128(tables.small[j].as_ptr() as *const __m128i) };
        }
        let mut tvec = _mm_set1_epi8(threshold as i8);
        let bpb = bytes_per_block(C);
        let mut candidates = 0u64;

        for (gi, g) in grouped.groups().iter().enumerate() {
            // Portion registers for this group (Figure 13, solid arrows).
            for j in 0..C {
                let portion = g.key[j] as usize * PORTION;
                debug_assert!(portion + PORTION <= tables.grouped[j].len());
                // SAFETY: group keys are 4-bit portion indexes, so
                // `portion + 16 <= 256 == tables.grouped[j].len()`; the load
                // reads 16 in-bounds bytes.
                regs[j] = unsafe {
                    _mm_loadu_si128(tables.grouped[j].as_ptr().add(portion) as *const __m128i)
                };
            }
            let blocks = grouped.group_blocks(g);
            let base = blocks.as_ptr();
            let full_blocks = g.len / FS_BLOCK;
            debug_assert!(blocks.len() >= g.num_blocks() * bpb);

            // Hot loop over full blocks.
            for b in 0..full_blocks {
                // SAFETY: SSSE3 is a caller precondition; `group_blocks`
                // yields `num_blocks() * bpb` bytes and `b < full_blocks <=
                // num_blocks()`, so the block pointer covers `bpb` readable
                // bytes.
                let mut mask = unsafe { block_mask_ssse3::<C>(base.add(b * bpb), &regs, tvec) };
                if mask != 0 {
                    candidates += mask.count_ones() as u64;
                    loop {
                        let lane = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let new_threshold = visit(gi, b * FS_BLOCK + lane);
                        if new_threshold != threshold {
                            threshold = new_threshold;
                            tvec = _mm_set1_epi8(threshold as i8);
                        }
                        if mask == 0 {
                            break;
                        }
                    }
                }
            }
            // Ragged tail block.
            let tail = g.len % FS_BLOCK;
            if tail != 0 {
                let b = full_blocks;
                let valid_mask = (1u16 << tail) - 1;
                // SAFETY: as above; a ragged tail means `num_blocks() ==
                // full_blocks + 1`, so block `b == full_blocks` is in range.
                let mut mask =
                    unsafe { block_mask_ssse3::<C>(base.add(b * bpb), &regs, tvec) } & valid_mask;
                candidates += mask.count_ones() as u64;
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let new_threshold = visit(gi, b * FS_BLOCK + lane);
                    if new_threshold != threshold {
                        threshold = new_threshold;
                        tvec = _mm_set1_epi8(threshold as i8);
                    }
                }
            }
        }
        candidates
    }

    /// SSSE3 whole-partition scan; same contract as
    /// [`scan_all_portable`](super::scan_all_portable).
    ///
    /// # Safety
    ///
    /// CPU must support SSSE3.
    pub(crate) unsafe fn scan_all_ssse3<F: Visit>(
        grouped: &GroupedCodes,
        tables: &ScanTables,
        threshold: u8,
        visit: &mut F,
    ) -> u64 {
        // SAFETY: SSSE3 is a caller precondition, and each arm instantiates
        // the kernel with `C` equal to the layout's grouping count.
        unsafe {
            match grouped.layout().c() {
                0 => scan_all_ssse3_impl::<0, F>(grouped, tables, threshold, visit),
                1 => scan_all_ssse3_impl::<1, F>(grouped, tables, threshold, visit),
                2 => scan_all_ssse3_impl::<2, F>(grouped, tables, threshold, visit),
                3 => scan_all_ssse3_impl::<3, F>(grouped, tables, threshold, visit),
                4 => scan_all_ssse3_impl::<4, F>(grouped, tables, threshold, visit),
                c => unreachable!("grouping is defined for c <= 4, got {c}"),
            }
        }
    }

    /// Candidate bitmask of **two adjacent blocks** — AVX2: each small
    /// table is broadcast to both 128-bit lanes, each 256-bit load fetches
    /// the same component array of block `b` (low lane) and block `b+1`
    /// (high lane). Bits 0–15 of the result are block `b`, bits 16–31
    /// block `b+1`.
    ///
    /// # Safety
    ///
    /// CPU must support AVX2 and `block` must point at
    /// `2 × bytes_per_block(C)` readable bytes.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn block_pair_mask_avx2<const C: usize>(
        block: *const u8,
        regs: &[__m256i; FS_M],
        threshold_vec: __m256i,
    ) -> u32 {
        let bpb = bytes_per_block(C);
        let low = _mm256_set1_epi8(0x0F);
        let mut acc = _mm256_setzero_si256();
        let mut array = 0usize;

        // One 256-bit vector = array `k` of block b (low) and b+1 (high).
        // The caller guarantees `block` points at `2 * bytes_per_block(C)`
        // readable bytes and `array` stays below `bpb / FS_BLOCK`, so both
        // unaligned 16-byte loads are in bounds.
        let load_pair = |array: usize| -> __m256i {
            // SAFETY: offset `array * FS_BLOCK` is inside the first block.
            let lo = unsafe { _mm_loadu_si128(block.add(array * FS_BLOCK) as *const __m128i) };
            // SAFETY: offset `bpb + array * FS_BLOCK` is inside the second.
            let hi =
                unsafe { _mm_loadu_si128(block.add(bpb + array * FS_BLOCK) as *const __m128i) };
            _mm256_set_m128i(hi, lo)
        };

        for p in 0..C / 2 {
            let bytes = load_pair(array);
            array += 1;
            let lo = _mm256_and_si256(bytes, low);
            acc = _mm256_adds_epu8(acc, _mm256_shuffle_epi8(regs[2 * p], lo));
            let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(bytes), low);
            acc = _mm256_adds_epu8(acc, _mm256_shuffle_epi8(regs[2 * p + 1], hi));
        }
        if C % 2 == 1 {
            let bytes = load_pair(array);
            array += 1;
            let lo = _mm256_and_si256(bytes, low);
            acc = _mm256_adds_epu8(acc, _mm256_shuffle_epi8(regs[C - 1], lo));
        }
        for j in C..FS_M {
            let bytes = load_pair(array);
            array += 1;
            let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(bytes), low);
            acc = _mm256_adds_epu8(acc, _mm256_shuffle_epi8(regs[j], hi));
        }

        let cand = _mm256_cmpeq_epi8(_mm256_min_epu8(acc, threshold_vec), acc);
        _mm256_movemask_epi8(cand) as u32
    }

    /// # Safety
    ///
    /// CPU must support AVX2, and `C` must equal `grouped.layout().c()`
    /// (the layout the codes were packed for).
    #[target_feature(enable = "avx2")]
    unsafe fn scan_all_avx2_impl<const C: usize, F: Visit>(
        grouped: &GroupedCodes,
        tables: &ScanTables,
        mut threshold: u8,
        visit: &mut F,
    ) -> u64 {
        debug_assert_eq!(C, grouped.layout().c(), "kernel/layout c mismatch");
        // 128-bit registers for the single-block tail path...
        let mut regs128 = [_mm_setzero_si128(); FS_M];
        for j in C..FS_M {
            // SAFETY: `tables.small[j]` is a `[u8; 16]` — exactly one
            // unaligned 128-bit load.
            regs128[j] = unsafe { _mm_loadu_si128(tables.small[j].as_ptr() as *const __m128i) };
        }
        // ...and their 256-bit broadcasts for the pair path.
        let mut regs256 = [_mm256_setzero_si256(); FS_M];
        for j in C..FS_M {
            regs256[j] = _mm256_broadcastsi128_si256(regs128[j]);
        }
        let mut tvec128 = _mm_set1_epi8(threshold as i8);
        let mut tvec256 = _mm256_set1_epi8(threshold as i8);
        let bpb = bytes_per_block(C);
        let mut candidates = 0u64;

        for (gi, g) in grouped.groups().iter().enumerate() {
            for j in 0..C {
                let portion = g.key[j] as usize * PORTION;
                debug_assert!(portion + PORTION <= tables.grouped[j].len());
                // SAFETY: group keys are 4-bit portion indexes, so
                // `portion + 16 <= 256 == tables.grouped[j].len()`.
                regs128[j] = unsafe {
                    _mm_loadu_si128(tables.grouped[j].as_ptr().add(portion) as *const __m128i)
                };
                regs256[j] = _mm256_broadcastsi128_si256(regs128[j]);
            }
            let blocks = grouped.group_blocks(g);
            let base = blocks.as_ptr();
            let full_blocks = g.len / FS_BLOCK;
            let pairs = full_blocks / 2;
            debug_assert!(blocks.len() >= g.num_blocks() * bpb);

            // Two full blocks per iteration.
            for pair in 0..pairs {
                let b = pair * 2;
                // SAFETY: AVX2 is a caller precondition; blocks `b` and
                // `b + 1` are both full (`b + 1 < full_blocks`), so the
                // pointer covers `2 * bpb` readable bytes inside the
                // `num_blocks() * bpb` the group slice provides.
                let mut mask =
                    unsafe { block_pair_mask_avx2::<C>(base.add(b * bpb), &regs256, tvec256) };
                if mask != 0 {
                    candidates += mask.count_ones() as u64;
                    loop {
                        let lane = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let new_threshold = visit(gi, b * FS_BLOCK + lane);
                        if new_threshold != threshold {
                            threshold = new_threshold;
                            tvec128 = _mm_set1_epi8(threshold as i8);
                            tvec256 = _mm256_set1_epi8(threshold as i8);
                        }
                        if mask == 0 {
                            break;
                        }
                    }
                }
            }
            // Odd full block, then the ragged tail: 128-bit path.
            let mut singles: [(usize, u16); 2] = [(0, 0); 2];
            let mut n_singles = 0usize;
            if full_blocks % 2 == 1 {
                singles[n_singles] = (full_blocks - 1, u16::MAX);
                n_singles += 1;
            }
            let tail = g.len % FS_BLOCK;
            if tail != 0 {
                singles[n_singles] = (full_blocks, (1u16 << tail) - 1);
                n_singles += 1;
            }
            for &(b, valid_mask) in &singles[..n_singles] {
                // SAFETY: AVX2 implies SSSE3; `b < num_blocks()`, so the
                // block pointer covers `bpb` readable bytes.
                let mut mask =
                    unsafe { block_mask_ssse3::<C>(base.add(b * bpb), &regs128, tvec128) }
                        & valid_mask;
                candidates += mask.count_ones() as u64;
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let new_threshold = visit(gi, b * FS_BLOCK + lane);
                    if new_threshold != threshold {
                        threshold = new_threshold;
                        tvec128 = _mm_set1_epi8(threshold as i8);
                        tvec256 = _mm256_set1_epi8(threshold as i8);
                    }
                }
            }
        }
        candidates
    }

    /// AVX2 whole-partition scan; returns exactly the same neighbors as the
    /// other kernels (candidate visiting order is identical; only the
    /// pruning statistics may differ marginally, because a block pair is
    /// masked against a single threshold snapshot).
    ///
    /// # Safety
    ///
    /// CPU must support AVX2.
    pub(crate) unsafe fn scan_all_avx2<F: Visit>(
        grouped: &GroupedCodes,
        tables: &ScanTables,
        threshold: u8,
        visit: &mut F,
    ) -> u64 {
        // SAFETY: AVX2 is a caller precondition, and each arm instantiates
        // the kernel with `C` equal to the layout's grouping count.
        unsafe {
            match grouped.layout().c() {
                0 => scan_all_avx2_impl::<0, F>(grouped, tables, threshold, visit),
                1 => scan_all_avx2_impl::<1, F>(grouped, tables, threshold, visit),
                2 => scan_all_avx2_impl::<2, F>(grouped, tables, threshold, visit),
                3 => scan_all_avx2_impl::<3, F>(grouped, tables, threshold, visit),
                4 => scan_all_avx2_impl::<4, F>(grouped, tables, threshold, visit),
                c => unreachable!("grouping is defined for c <= 4, got {c}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqfs_core::RowMajorCodes;

    fn sample_tables(c: usize, seed: u8) -> ScanTables {
        let mut small = [[0u8; PORTION]; FS_M];
        for (j, table) in small.iter_mut().enumerate() {
            for (i, slot) in table.iter_mut().enumerate() {
                *slot = ((i * 17 + j * 31 + seed as usize * 7) % 93) as u8;
            }
        }
        let grouped = (0..c)
            .map(|j| {
                (0..256)
                    .map(|i| ((i * 13 + j * 59 + seed as usize * 3) % 97) as u8)
                    .collect::<Vec<u8>>()
            })
            .collect();
        ScanTables { grouped, small }
    }

    fn sample_grouped(n: usize, c: usize) -> GroupedCodes {
        let bytes: Vec<u8> = (0..n * FS_M).map(|i| ((i * 41 + 5) % 256) as u8).collect();
        GroupedCodes::build(&RowMajorCodes::new(bytes, FS_M), c)
    }

    /// Oracle: lower bound of one vector from its reconstructed code and
    /// the logical small tables (portions + minimum tables).
    fn oracle_bound(grouped: &GroupedCodes, tables: &ScanTables, g: usize, idx: usize) -> u8 {
        let c = grouped.layout().c();
        let meta = grouped.groups()[g];
        let code = grouped.read_code(&meta, idx);
        let mut acc = 0u8;
        for (j, &byte) in code.iter().enumerate() {
            let v = if j < c {
                tables.grouped[j][byte as usize]
            } else {
                tables.small[j][(byte >> 4) as usize]
            };
            acc = acc.saturating_add(v);
        }
        acc
    }

    fn collect_candidates(
        grouped: &GroupedCodes,
        tables: &ScanTables,
        t: u8,
        ssse3: bool,
    ) -> (Vec<(usize, usize)>, u64) {
        let mut tables = tables.clone();
        let mut visited = Vec::new();
        let count = if ssse3 {
            #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
            {
                assert!(std::arch::is_x86_feature_detected!("ssse3"));
                // SAFETY: SSSE3 support asserted above.
                unsafe {
                    x86::scan_all_ssse3(grouped, &tables, t, &mut |g, idx| {
                        visited.push((g, idx));
                        t
                    })
                }
            }
            #[cfg(not(all(target_arch = "x86_64", feature = "avx2")))]
            unreachable!()
        } else {
            scan_all_portable(grouped, &mut tables, t, &mut |g, idx| {
                visited.push((g, idx));
                t
            })
        };
        (visited, count)
    }

    #[test]
    fn portable_scan_matches_per_vector_oracle() {
        for c in [0usize, 1, 2, 3, 4] {
            let grouped = sample_grouped(600, c);
            let tables = sample_tables(c, c as u8);
            for t in [0u8, 40, 90, 200, 255] {
                let (visited, count) = collect_candidates(&grouped, &tables, t, false);
                assert_eq!(visited.len() as u64, count);
                let set: std::collections::HashSet<(usize, usize)> = visited.into_iter().collect();
                for (gi, g) in grouped.groups().iter().enumerate() {
                    for idx in 0..g.len {
                        // The oracle uses the *exact* quantized entry for
                        // grouped components, which equals the portion value
                        // the kernel looks up.
                        let bound = oracle_bound(&grouped, &tables, gi, idx);
                        assert_eq!(
                            set.contains(&(gi, idx)),
                            bound <= t,
                            "c={c} t={t} g={gi} idx={idx} bound={bound}"
                        );
                    }
                }
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    #[test]
    fn ssse3_scan_is_bit_identical_to_portable() {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            eprintln!("skipping: no SSSE3");
            return;
        }
        for c in [0usize, 1, 2, 3, 4] {
            for n in [40usize, 700] {
                let grouped = sample_grouped(n, c);
                let tables = sample_tables(c, c as u8 + 3);
                for t in [0u8, 1, 63, 128, 254, 255] {
                    let (vp, cp) = collect_candidates(&grouped, &tables, t, false);
                    let (vs, cs) = collect_candidates(&grouped, &tables, t, true);
                    assert_eq!(vp, vs, "c={c} n={n} t={t}");
                    assert_eq!(cp, cs, "c={c} n={n} t={t}");
                }
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    #[test]
    fn avx2_scan_matches_portable_under_static_threshold() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("skipping: no AVX2");
            return;
        }
        // With a static threshold the pair kernel's masks decompose into
        // exactly the per-block masks: full equality of visit sequences.
        for c in [0usize, 1, 2, 3, 4] {
            for n in [15usize, 16, 31, 32, 33, 700] {
                let grouped = sample_grouped(n, c);
                let tables = sample_tables(c, c as u8 + 11);
                for t in [0u8, 63, 128, 254, 255] {
                    let (vp, cp) = collect_candidates(&grouped, &tables, t, false);
                    let mut visited = Vec::new();
                    // SAFETY: AVX2 detected above.
                    let ca = unsafe {
                        x86::scan_all_avx2(&grouped, &tables, t, &mut |g, idx| {
                            visited.push((g, idx));
                            t
                        })
                    };
                    assert_eq!(vp, visited, "c={c} n={n} t={t}");
                    assert_eq!(cp, ca, "c={c} n={n} t={t}");
                }
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    #[test]
    fn kernels_agree_under_dynamic_thresholds() {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            return;
        }
        let grouped = sample_grouped(900, 4);
        let tables = sample_tables(4, 5);
        let run = |ssse3: bool| -> Vec<(usize, usize)> {
            let mut t = 255u8;
            let mut visited = Vec::new();
            let mut visit = |g: usize, idx: usize| {
                visited.push((g, idx));
                t = t.saturating_sub(16);
                t
            };
            if ssse3 {
                // SAFETY: SSSE3 support checked at the top of the test.
                unsafe {
                    x86::scan_all_ssse3(&grouped, &tables, 255, &mut visit);
                }
            } else {
                let mut tables = tables.clone();
                scan_all_portable(&grouped, &mut tables, 255, &mut visit);
            }
            visited
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn threshold_zero_with_nonzero_tables_prunes_everything() {
        let grouped = sample_grouped(200, 4);
        let mut tables = sample_tables(4, 2);
        for table in &mut tables.grouped {
            for v in table.iter_mut() {
                *v = (*v).max(1);
            }
        }
        for table in &mut tables.small {
            for v in table.iter_mut() {
                *v = (*v).max(1);
            }
        }
        let count = scan_all_portable(&grouped, &mut tables, 0, &mut |_, _| 0);
        assert_eq!(count, 0);
    }

    #[test]
    fn kernel_resolution() {
        assert!(Kernel::Auto.resolve().is_ok());
        assert_eq!(
            Kernel::Portable.resolve().unwrap(),
            ResolvedKernel::Portable
        );
        #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
        {
            if std::arch::is_x86_feature_detected!("ssse3") {
                assert_eq!(Kernel::Ssse3.resolve().unwrap(), ResolvedKernel::Ssse3);
            }
        }
    }
}

//! Ablation study (not in the paper; DESIGN.md §4): contribution of each
//! Fast Scan ingredient on a fixed partition.
//!
//! * grouping components `c ∈ {0, 2, 3, 4}`;
//! * §4.3 optimized centroid-index assignment on/off;
//! * quantization bins 254 (full unsigned range) vs 126 (paper's signed
//!   scheme);
//! * kernel back-end portable vs SSSE3.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin ablation
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scale, Fixture};
use pqfs_metrics::{fmt_f, mvecs_per_sec, time_ms, Summary, TextTable};
use pqfs_scan::{FastScanIndex, FastScanOptions, Kernel, ScanParams};

fn measure(fx: &mut Fixture, index: &FastScanIndex, queries: usize) -> (f64, f64) {
    let params = ScanParams::new(100).with_keep(0.005);
    let mut pruned = Vec::new();
    let mut speeds = Vec::new();
    for _ in 0..queries {
        let q = fx.queries(1);
        let tables = fx.tables(&q);
        let (r, ms) = time_ms(|| index.scan(&tables, &params).unwrap());
        pruned.push(100.0 * r.stats.pruned_fraction());
        speeds.push(mvecs_per_sec(index.len(), ms));
    }
    (
        Summary::from_values(&pruned).median(),
        Summary::from_values(&speeds).median(),
    )
}

fn main() {
    let n = (1_000_000.0 * scale()) as usize;
    let queries = env_usize("PQFS_QUERIES", 5);
    header(
        "ablation",
        "DESIGN.md §4 (extension)",
        &format!("partition {n}, topk 100, keep 0.5%"),
    );

    // --- grouping components --------------------------------------------
    let mut fx = Fixture::train(99);
    let codes = fx.partition(n);
    println!("grouping components (c):");
    let mut t = TextTable::new(vec![
        "c",
        "groups",
        "bytes/vec",
        "pruned [%]",
        "speed [Mv/s]",
    ]);
    for c in [0usize, 2, 3, 4] {
        let index =
            FastScanIndex::build(&codes, &FastScanOptions::default().with_group_components(c))
                .expect("index");
        let (pruned, speed) = measure(&mut fx, &index, queries);
        t.row(vec![
            c.to_string(),
            index.num_groups().to_string(),
            fmt_f(index.code_memory_bytes() as f64 / index.len() as f64, 2),
            fmt_f(pruned, 2),
            fmt_f(speed, 0),
        ]);
    }
    println!("{t}");

    // --- optimized assignment -------------------------------------------
    println!("optimized centroid-index assignment (§4.3):");
    let mut t = TextTable::new(vec!["assignment", "pruned [%]", "speed [Mv/s]"]);
    for (name, optimized) in [("arbitrary", false), ("optimized", true)] {
        let mut fx2 = if optimized {
            Fixture::train(99)
        } else {
            Fixture::train_unoptimized(99)
        };
        let codes2 = fx2.partition(n);
        let index = FastScanIndex::build(&codes2, &FastScanOptions::default()).expect("index");
        let (pruned, speed) = measure(&mut fx2, &index, queries);
        t.row(vec![name.to_string(), fmt_f(pruned, 2), fmt_f(speed, 0)]);
    }
    println!("{t}");

    // --- quantization bins ----------------------------------------------
    println!("distance-quantization bins (§4.4):");
    let mut t = TextTable::new(vec!["bins", "pruned [%]", "speed [Mv/s]"]);
    for bins in [126u16, 254] {
        let index = FastScanIndex::build(&codes, &FastScanOptions::default().with_bins(bins))
            .expect("index");
        let (pruned, speed) = measure(&mut fx, &index, queries);
        t.row(vec![bins.to_string(), fmt_f(pruned, 2), fmt_f(speed, 0)]);
    }
    println!("{t}");

    // --- kernel back-end --------------------------------------------------
    println!("kernel back-end:");
    let mut t = TextTable::new(vec!["kernel", "pruned [%]", "speed [Mv/s]"]);
    for (name, kernel) in [
        ("portable", Kernel::Portable),
        ("ssse3", Kernel::Ssse3),
        ("avx2", Kernel::Avx2),
    ] {
        match FastScanIndex::build(&codes, &FastScanOptions::default().with_kernel(kernel)) {
            Ok(index) => {
                // An unavailable kernel fails at scan time; probe first.
                let q = fx.queries(1);
                let tables = fx.tables(&q);
                if index.scan(&tables, &ScanParams::new(10)).is_err() {
                    t.row(vec![
                        name.to_string(),
                        "unavailable".to_string(),
                        String::new(),
                    ]);
                    continue;
                }
                let (pruned, speed) = measure(&mut fx, &index, queries);
                t.row(vec![name.to_string(), fmt_f(pruned, 2), fmt_f(speed, 0)]);
            }
            Err(_) => {
                t.row(vec![
                    name.to_string(),
                    "unavailable".to_string(),
                    String::new(),
                ]);
            }
        }
    }
    println!("{t}");
    println!(
        "expected: c=4 maximizes speed at scale (fewer bytes/vector) with a \
         mild pruning cost vs c=0 (exact portions everywhere); the optimized \
         assignment adds pruning power for free; 254 bins prune at least as \
         well as the paper's 126; SSSE3 is several times the portable speed \
         with identical pruning."
    );
}

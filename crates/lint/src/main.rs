//! CLI entry point: `cargo run -p pqfs_lint [-- --root <dir>]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: pqfs_lint [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pqfs_lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match pqfs_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "pqfs_lint: no pqfs_lint.toml found walking up from {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match pqfs_lint::run(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("pqfs_lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                eprintln!("{d}");
            }
            let summary: Vec<String> = pqfs_lint::summarize(&diags)
                .into_iter()
                .map(|(check, n)| format!("{check}: {n}"))
                .collect();
            eprintln!(
                "pqfs_lint: {} error(s) ({})",
                diags.len(),
                summary.join(", ")
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("pqfs_lint: {e}");
            ExitCode::from(2)
        }
    }
}

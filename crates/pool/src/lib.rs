//! Work-stealing thread pool: the shared parallel executor of the workspace.
//!
//! The paper's §3.1 observes that PQ Scan "parallelizes naturally over
//! multiple queries by running each query on a different core". Before this
//! crate, every parallel site in the workspace (`search_batch`, batch
//! encoding, k-means assignment) spawned fresh OS threads per call and
//! carved the work into one static chunk per thread — so a single skewed
//! partition or slow query stalled its whole chunk while sibling threads sat
//! idle, and thread spawn/join costs were paid on every batch.
//!
//! [`ThreadPool`] replaces all of that with one **persistent** pool:
//!
//! * **Per-worker deques with stealing** — submitted tasks are distributed
//!   round-robin over per-worker deques; a worker pops its own deque from
//!   the back (LIFO, cache-warm) and, when empty, steals from the front of
//!   a sibling's deque (FIFO, oldest first). Work is split into many more
//!   tasks than workers, so skew load-balances dynamically instead of
//!   stalling a static chunk.
//! * **Scoped borrowing** — [`ThreadPool::parallel_map`] and friends accept
//!   closures borrowing the caller's stack (no `'static` bound, no `Arc`
//!   plumbing); the call does not return until every task has finished.
//! * **Panic propagation** — a panicking task poisons the scope; the first
//!   panic payload is re-raised on the submitting thread after all tasks
//!   settle, never on a worker.
//! * **First-error short-circuiting** — [`ThreadPool::try_parallel_map`]
//!   aborts remaining work as soon as any task fails and returns the error
//!   with the lowest input index among those observed.
//! * **Nested submission** — a task may itself call `parallel_map` on the
//!   same pool. The submitting thread always participates in execution
//!   (it drains queued tasks while waiting), so nesting cannot deadlock
//!   even when every worker is busy.
//!
//! The process-wide pool is reached through [`ThreadPool::global`]; it is
//! created lazily, sized from [`std::thread::available_parallelism`], and
//! overridable with the `PQFS_THREADS` environment variable (read once, at
//! first use). A pool of size 1 spawns no threads at all and runs every
//! task inline on the caller — the deterministic serial baseline.
//!
//! Determinism: all combinators preserve input order in their outputs, and
//! task *decomposition* never depends on which thread executes what — so a
//! deterministic `f` yields bit-identical results for any pool size.
//!
//! ```
//! use pqfs_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

mod pool;

pub use pool::ThreadPool;

use std::sync::OnceLock;

/// Parses a thread-count override; `None` for absent/invalid/zero values.
fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The pool size the global pool uses: `PQFS_THREADS` when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_threads() -> usize {
    std::env::var("PQFS_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_threads)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

static POOL_THREADS: pqfs_obs::LazyGauge = pqfs_obs::LazyGauge::new(
    "pqfs_pool_threads",
    "Participating threads of the global pool (workers plus submitter)",
);

impl ThreadPool {
    /// The process-wide shared pool, created on first use with
    /// [`default_threads`] workers. Long-lived: its threads persist for the
    /// life of the process and are shared by every caller in the workspace.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| {
            let pool = ThreadPool::new(default_threads());
            POOL_THREADS.set(pool.threads() as u64);
            pool
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("eight"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn global_pool_is_shared_and_usable() {
        let a = ThreadPool::global() as *const ThreadPool;
        let b = ThreadPool::global() as *const ThreadPool;
        assert_eq!(a, b, "global pool must be a singleton");
        let sums = ThreadPool::global().parallel_map(&[1u32, 2, 3], |i, &x| x + i as u32);
        assert_eq!(sums, vec![1, 3, 5]);
    }
}

//! Analytic per-vector operation counts (paper Figures 3 and 15).
//!
//! The paper instruments its implementations with hardware performance
//! counters. Those are not available here, so we *count* the operations
//! each implementation performs per scanned vector — these are exact
//! algorithm facts, derived from the code structure (and, for Fast Scan,
//! from the measured pruning statistics) — and pair them with measured
//! wall-clock times in the harness binaries.
//!
//! Reference points from the paper (PQ 8×8, Figures 3/15):
//!
//! | impl | L1 loads/vec | instructions/vec |
//! |---|---|---|
//! | naive  | 16  | ~36 |
//! | libpq  | 9   | 34  |
//! | fastpq | 1.3 | 3.7 |

/// Per-scanned-vector operation counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerVectorOps {
    /// L1 data-cache loads (mem1 + mem2 + table (re)loads).
    pub l1_loads: f64,
    /// Retired instructions (scalar + SIMD).
    pub instructions: f64,
    /// Micro-operations (differs from instructions mainly through gather's
    /// 34 µops).
    pub uops: f64,
}

/// The four PQ Scan baselines of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqScanImpl {
    /// Algorithm 1 as written.
    Naive,
    /// One 64-bit `mem1` load + shifts (§3.1).
    Libpq,
    /// Vertical SIMD adds, scalar lookups (§3.2, Figure 4).
    Avx,
    /// AVX2 gather lookups (§3.2, Figure 5).
    Gather,
}

/// Operation counts of one PQ Scan baseline for `m`-component codes.
///
/// Derivation per vector (comments give the `m = 8` value):
/// * naive — `m` mem1 loads + `m` mem2 loads (16); per component a load,
///   an address computation, a load and an add, plus ~4 loop/compare
///   overhead (36).
/// * libpq — 1 mem1 + `m` mem2 loads (9); the word load, then per
///   component a shift, a mask, a lookup load and an add (34, the paper's
///   measured value).
/// * avx — same loads as libpq per vector; per 8 vectors and per component
///   there are 8 scalar lookups + ~2 insertion ops each, amortizing to ~3
///   instructions per vector per component plus one SIMD add per component
///   per 8 vectors.
/// * gather — 1 mem1 load + `m` gathered element accesses per vector
///   (the gather touches memory once per element); instructions collapse
///   (≈ m/8 gathers + m/8 widen/load + m/8 SIMD adds per vector) but µops
///   explode (34 per gather).
pub fn pqscan_ops(imp: PqScanImpl, m: usize) -> PerVectorOps {
    let m = m as f64;
    match imp {
        PqScanImpl::Naive => PerVectorOps {
            l1_loads: 2.0 * m,
            instructions: 4.0 * m + 4.0,
            uops: 4.0 * m + 4.0,
        },
        PqScanImpl::Libpq => PerVectorOps {
            l1_loads: 1.0 + m,
            instructions: 2.0 + 4.0 * m,
            uops: 2.0 + 4.0 * m,
        },
        PqScanImpl::Avx => PerVectorOps {
            l1_loads: 1.0 + m,
            // Per vector: m lookups with ~2 insertion instructions each,
            // plus m/8 SIMD adds and ~1 store/compare amortized.
            instructions: 3.0 * m + m / 8.0 + 1.0,
            uops: 3.0 * m + m / 8.0 + 1.0,
        },
        PqScanImpl::Gather => PerVectorOps {
            // The gather performs one memory access per looked-up element.
            l1_loads: 1.0 + m,
            // Per 8 vectors: m gathers, m index loads/widens, m SIMD adds,
            // ~2 bookkeeping.
            instructions: (3.0 * m + 2.0) / 8.0,
            // Each gather is 34 µops (Table 2).
            uops: (m * 34.0 + 2.0 * m + 2.0) / 8.0,
        },
    }
}

/// Measured quantities a Fast Scan run feeds into the model.
#[derive(Debug, Clone, Copy)]
pub struct FastScanProfile {
    /// Number of grouping components (`c`).
    pub group_components: usize,
    /// Fraction of fast-path vectors that needed exact verification
    /// (1 − pruning power).
    pub verified_fraction: f64,
    /// Groups visited divided by vectors scanned (table-reload amortization;
    /// `num_groups / n` for a full scan).
    pub groups_per_vector: f64,
}

/// Operation counts of PQ Fast Scan per scanned vector.
///
/// Derivation (c = 4): per 16-vector block the kernel issues 6 SIMD loads
/// (2 packed pairs + 4 component arrays = 6 × 16 bytes, the paper's
/// "6 bytes per vector"), 10 `pshufb` lookups, 10 saturating adds, 6
/// nibble-extraction ops and 3 compare/movemask ops ≈ 35 instructions →
/// ≈ 2.2 instructions and 0.375 L1 loads per vector. Each *verified* vector
/// adds a scalar `pqdistance` (1 packed-code read + 8 table loads ≈ 9 L1
/// loads, ~34 instructions). Each *group* adds `c` small-table loads plus
/// `8 − c` register copies. These combine with the measured
/// `verified_fraction` to the paper's ≈ 1.3 L1 loads / 3.7 instructions per
/// vector at ~95 % pruning.
pub fn fastscan_ops(profile: &FastScanProfile) -> PerVectorOps {
    let c = profile.group_components as f64;
    let pairs = (profile.group_components / 2) as f64;
    let odd = (profile.group_components % 2) as f64;
    let ungrouped = 8.0 - c;
    let arrays = pairs + odd + ungrouped;

    // Kernel work per block of 16 vectors.
    let loads_per_block = arrays;
    // pair: load+and+shuf+add + srl+and+shuf+add = 8; odd: 4; ungrouped: 5.
    let instr_per_block = 8.0 * pairs + 4.0 * odd + 5.0 * ungrouped + 3.0;

    let kernel_loads = loads_per_block / 16.0;
    let kernel_instr = instr_per_block / 16.0;

    // Exact verification of surviving candidates (scalar pqdistance over
    // the reconstructed code).
    let verify_loads = profile.verified_fraction * (1.0 + 8.0);
    let verify_instr = profile.verified_fraction * 34.0;

    // Small-table (re)loads at each group boundary.
    let group_loads = profile.groups_per_vector * c;
    let group_instr = profile.groups_per_vector * (c + 2.0);

    PerVectorOps {
        l1_loads: kernel_loads + verify_loads + group_loads,
        instructions: kernel_instr + verify_instr + group_instr,
        uops: kernel_instr + verify_instr + group_instr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_performs_16_l1_loads_like_the_paper() {
        let ops = pqscan_ops(PqScanImpl::Naive, 8);
        assert_eq!(ops.l1_loads, 16.0);
    }

    #[test]
    fn libpq_performs_9_l1_loads_and_34_instructions() {
        let ops = pqscan_ops(PqScanImpl::Libpq, 8);
        assert_eq!(ops.l1_loads, 9.0);
        assert_eq!(ops.instructions, 34.0);
    }

    #[test]
    fn gather_has_low_instructions_but_high_uops() {
        let ops = pqscan_ops(PqScanImpl::Gather, 8);
        assert!(ops.instructions < 4.0, "gather collapses instruction count");
        assert!(ops.uops > 30.0, "µops explode: {}", ops.uops);
        assert!(ops.uops / ops.instructions > 8.0);
    }

    #[test]
    fn avx_saves_few_instructions_relative_to_naive() {
        let naive = pqscan_ops(PqScanImpl::Naive, 8);
        let avx = pqscan_ops(PqScanImpl::Avx, 8);
        assert!(avx.instructions < naive.instructions);
        assert!(
            avx.instructions > 0.5 * naive.instructions,
            "only a marginal saving"
        );
    }

    #[test]
    fn fastscan_matches_paper_magnitudes_at_95_percent_pruning() {
        // Partition-0-like profile: c=4, 5 % verified, 16^4 groups over 25 M
        // vectors ~ 0.0026 groups/vector.
        let profile = FastScanProfile {
            group_components: 4,
            verified_fraction: 0.05,
            groups_per_vector: 65536.0 / 25_000_000.0,
        };
        let ops = fastscan_ops(&profile);
        // Paper: 1.3 L1 loads, 3.7 instructions per vector.
        assert!((0.5..=2.0).contains(&ops.l1_loads), "l1={}", ops.l1_loads);
        assert!(
            (2.0..=6.0).contains(&ops.instructions),
            "instr={}",
            ops.instructions
        );
        // And the headline ratios vs libpq hold.
        let libpq = pqscan_ops(PqScanImpl::Libpq, 8);
        assert!(libpq.l1_loads / ops.l1_loads > 4.0);
        assert!(libpq.instructions / ops.instructions > 5.0);
    }

    #[test]
    fn fastscan_degrades_gracefully_with_low_pruning() {
        let good = fastscan_ops(&FastScanProfile {
            group_components: 4,
            verified_fraction: 0.02,
            groups_per_vector: 0.001,
        });
        let bad = fastscan_ops(&FastScanProfile {
            group_components: 4,
            verified_fraction: 0.5,
            groups_per_vector: 0.001,
        });
        assert!(bad.l1_loads > good.l1_loads);
        assert!(bad.instructions > good.instructions);
    }
}

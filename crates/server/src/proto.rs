//! The wire protocol: versioned, length-prefixed, CRC-checked frames.
//!
//! Every message on a connection is one *frame*:
//!
//! ```text
//! magic       4 bytes   "PQSV"
//! version     u8        currently 1
//! kind        u8        frame type (see [`FrameKind`])
//! reserved    u16 LE    must be 0
//! payload_len u32 LE    payload byte count (capped, see [`MAX_PAYLOAD`])
//! payload     payload_len bytes
//! crc         u32 LE    CRC-32 (IEEE) of the payload bytes
//! ```
//!
//! The header is fixed at [`HEADER_LEN`] bytes; the CRC trails the payload
//! so a writer can stream it. The CRC reuses the persist-format digest
//! ([`pqfs_core::crc32`]), so a single flipped bit anywhere in the payload
//! fails the frame with a typed [`ProtoError::Crc`] instead of silently
//! corrupting a query. The `payload_len` cap is enforced *before* any
//! allocation, and payload bytes are read through
//! [`pqfs_core::persist::read_exact_vec`], so a lying length on a short
//! stream errors out instead of OOM-aborting.
//!
//! All multi-byte integers are little-endian. Floats are IEEE-754 bit
//! patterns (`f32::to_le_bytes` / `f64::to_le_bytes`), so NaN payloads
//! round-trip bit-exactly.
//!
//! Decoding never panics: every length is validated against both the
//! remaining payload and a hard cap before use, and a payload with
//! trailing garbage is rejected ([`ProtoError::TrailingBytes`]).

use pqfs_core::persist::read_exact_vec;
use pqfs_core::{crc32, Neighbor};
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PQSV";
/// Current protocol version; readers reject anything else.
pub const VERSION: u8 = 1;
/// Fixed frame-header length (magic + version + kind + reserved + len).
pub const HEADER_LEN: usize = 12;
/// Hard cap on `payload_len`: frames above this are rejected before any
/// allocation (64 MiB fits ~130k 128-dim f32 queries in one batch).
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Caps on decoded quantities, enforced before allocation.
const MAX_DIM: u32 = 1 << 16;
const MAX_BATCH: u32 = 1 << 20;
const MAX_TOPK: u32 = 1 << 20;
const MAX_BACKEND_LEN: u8 = 64;
const MAX_MESSAGE_LEN: u32 = 1 << 16;

/// Frame types. Requests have the high bit clear, responses set; error
/// responses live at `0xE0..`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Request: one query vector.
    Query = 0x01,
    /// Request: a batch of query vectors sharing one parameter set.
    BatchQuery = 0x02,
    /// Request: liveness + index shape.
    Health = 0x03,
    /// Request: the server's telemetry snapshot.
    Stats = 0x04,
    /// Response to [`FrameKind::Query`].
    QueryResult = 0x81,
    /// Response to [`FrameKind::BatchQuery`].
    BatchResult = 0x82,
    /// Response to [`FrameKind::Health`].
    HealthInfo = 0x83,
    /// Response to [`FrameKind::Stats`] (JSON text payload).
    StatsJson = 0x84,
    /// Typed failure (bad frame, bad request, search failure, shutdown).
    Error = 0xE0,
    /// Admission control shed this request: the queue was full.
    Overloaded = 0xE1,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Query,
            0x02 => FrameKind::BatchQuery,
            0x03 => FrameKind::Health,
            0x04 => FrameKind::Stats,
            0x81 => FrameKind::QueryResult,
            0x82 => FrameKind::BatchResult,
            0x83 => FrameKind::HealthInfo,
            0x84 => FrameKind::StatsJson,
            0xE0 => FrameKind::Error,
            0xE1 => FrameKind::Overloaded,
            _ => return None,
        })
    }
}

/// Why a request failed, carried in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad magic/CRC/layout); the server
    /// closes the connection after sending this, since the stream cannot
    /// be resynchronized.
    BadFrame = 1,
    /// The frame decoded but its contents were invalid (wrong dimension,
    /// unknown backend, zero topk, …). The connection stays usable.
    BadRequest = 2,
    /// The search itself failed (every probe failed, backend error).
    SearchFailed = 3,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown = 4,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::SearchFailed,
            4 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::SearchFailed => "search-failed",
            ErrorCode::ShuttingDown => "shutting-down",
        };
        f.write_str(s)
    }
}

/// Protocol-level failures (framing and payload decoding).
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The frame does not start with [`MAGIC`].
    Magic([u8; 4]),
    /// Unsupported protocol version.
    Version(u8),
    /// Unknown frame type byte.
    Kind(u8),
    /// The reserved header field was nonzero.
    Reserved(u16),
    /// `payload_len` exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The enforced cap.
        max: u32,
    },
    /// The payload CRC does not match its contents.
    Crc {
        /// CRC stored in the frame trailer.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// The stream ended inside a frame.
    Truncated(&'static str),
    /// The payload layout is invalid (bad length, cap exceeded, trailing
    /// garbage, invalid enum value).
    Malformed(String),
    /// The payload was shorter than its own declared contents.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io error: {e}"),
            ProtoError::Magic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::Version(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Kind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::Reserved(r) => write!(f, "nonzero reserved header field {r:#06x}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            ProtoError::Crc { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ProtoError::Truncated(what) => write!(f, "stream truncated inside {what}"),
            ProtoError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            ProtoError::TrailingBytes(n) => {
                write!(f, "{n} trailing payload bytes after the last field")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated("frame")
        } else {
            ProtoError::Io(e)
        }
    }
}

/// One raw frame: its type and undecoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The payload bytes (CRC already verified on read).
    pub payload: Vec<u8>,
}

/// Writes one frame (header, payload, CRC trailer). The writer is not
/// flushed; callers flush once per response.
///
/// # Errors
///
/// [`ProtoError::Oversized`] when the payload exceeds [`MAX_PAYLOAD`], or
/// the underlying IO error.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_PAYLOAD || payload.len() > MAX_PAYLOAD as usize {
        return Err(ProtoError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = kind as u8;
    // header[6..8] reserved, already 0.
    header[8..12].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header).map_err(ProtoError::Io)?;
    w.write_all(payload).map_err(ProtoError::Io)?;
    w.write_all(&crc32(payload).to_le_bytes())
        .map_err(ProtoError::Io)?;
    Ok(())
}

/// Reads one frame, verifying magic, version, the payload cap and the CRC.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer hung
/// up between requests); EOF anywhere inside a frame is
/// [`ProtoError::Truncated`].
///
/// # Errors
///
/// Any [`ProtoError`] variant; the stream position is unspecified after an
/// error, so callers must close the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte by hand, to tell "no next frame" from "torn frame".
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..])
        .map_err(|e| truncated(e, "frame header"))?;
    if header[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[..4]);
        return Err(ProtoError::Magic(m));
    }
    if header[4] != VERSION {
        return Err(ProtoError::Version(header[4]));
    }
    let kind = FrameKind::from_u8(header[5]).ok_or(ProtoError::Kind(header[5]))?;
    let reserved = u16::from_le_bytes([header[6], header[7]]);
    if reserved != 0 {
        return Err(ProtoError::Reserved(reserved));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let payload = read_exact_vec(r, u64::from(len), "frame payload")
        .map_err(|e| ProtoError::Malformed(e.to_string()))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|e| truncated(e, "frame checksum"))?;
    let stored = u32::from_le_bytes(crc_bytes);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(ProtoError::Crc { stored, computed });
    }
    Ok(Some(Frame { kind, payload }))
}

fn truncated(e: io::Error, what: &'static str) -> ProtoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ProtoError::Truncated(what)
    } else {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------------

/// Search parameters shared by single and batch queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryParams {
    /// Neighbors to return per query (must be positive).
    pub topk: u32,
    /// Partitions to probe per query (must be positive).
    pub nprobe: u32,
    /// Fast Scan keep fraction (candidate ratio kept exact).
    pub keep: f64,
    /// Per-request deadline in microseconds, measured from *arrival at the
    /// server*; `0` means no deadline. Queue wait counts against it, and
    /// the remainder flows into the budgeted multi-probe search (the
    /// nearest probe always runs).
    pub deadline_us: u64,
    /// Scan backend name (empty = the server's default backend).
    pub backend: String,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            topk: 10,
            nprobe: 1,
            keep: 0.005,
            deadline_us: 0,
            backend: String::new(),
        }
    }
}

/// A query request: parameters plus one or more row-major query vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Shared search parameters.
    pub params: QueryParams,
    /// Vector dimensionality.
    pub dim: u32,
    /// `count × dim` row-major components.
    pub queries: Vec<f32>,
}

impl QueryRequest {
    /// Number of query vectors carried.
    pub fn count(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.queries.len() / self.dim as usize
        }
    }
}

/// One query's answer: probe coverage plus the neighbor list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryAnswer {
    /// Probes that completed and contributed candidates.
    pub probes_ok: u32,
    /// Probes that failed (result set may be incomplete).
    pub probes_failed: u32,
    /// Probes skipped by the deadline budget.
    pub probes_skipped: u32,
    /// Nearest neighbors, ascending by `(distance, id)`.
    pub neighbors: Vec<Neighbor>,
}

impl QueryAnswer {
    /// True when some probe failed or was skipped: the neighbor list may
    /// be missing candidates (deadline shed or partition failure).
    pub fn degraded(&self) -> bool {
        self.probes_failed > 0 || self.probes_skipped > 0
    }
}

/// The health response: liveness plus index shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Total indexed vectors.
    pub vectors: u64,
    /// Coarse partition count.
    pub partitions: u32,
    /// Vector dimensionality the index serves.
    pub dim: u32,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One query vector.
    Query(QueryRequest),
    /// A batch sharing one parameter set.
    Batch(QueryRequest),
    /// Liveness probe.
    Health,
    /// Telemetry snapshot request.
    Stats,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query(QueryAnswer),
    /// Answers to [`Request::Batch`], in query order.
    Batch(Vec<QueryAnswer>),
    /// Answer to [`Request::Health`].
    Health(HealthInfo),
    /// Answer to [`Request::Stats`]: the JSON snapshot text.
    Stats(String),
    /// Typed failure.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Shed by admission control: the bounded queue was full.
    Overloaded {
        /// Configured queue capacity.
        capacity: u32,
        /// Queue depth observed at rejection.
        depth: u32,
    },
}

// --- encoding helpers ------------------------------------------------------

fn put_params(out: &mut Vec<u8>, p: &QueryParams) {
    out.extend_from_slice(&p.topk.to_le_bytes());
    out.extend_from_slice(&p.nprobe.to_le_bytes());
    out.extend_from_slice(&p.keep.to_le_bytes());
    out.extend_from_slice(&p.deadline_us.to_le_bytes());
    let name = p.backend.as_bytes();
    let len = name.len().min(MAX_BACKEND_LEN as usize);
    out.push(len as u8);
    out.extend_from_slice(&name[..len]);
}

fn put_answer(out: &mut Vec<u8>, a: &QueryAnswer) {
    out.extend_from_slice(&a.probes_ok.to_le_bytes());
    out.extend_from_slice(&a.probes_failed.to_le_bytes());
    out.extend_from_slice(&a.probes_skipped.to_le_bytes());
    let n = u32::try_from(a.neighbors.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&n.to_le_bytes());
    for nb in &a.neighbors {
        out.extend_from_slice(&nb.id.to_le_bytes());
        out.extend_from_slice(&nb.dist.to_le_bytes());
    }
}

fn put_queries(out: &mut Vec<u8>, req: &QueryRequest, with_count: bool) {
    put_params(out, &req.params);
    out.extend_from_slice(&req.dim.to_le_bytes());
    if with_count {
        let count = u32::try_from(req.count()).unwrap_or(u32::MAX);
        out.extend_from_slice(&count.to_le_bytes());
    }
    for x in &req.queries {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl Request {
    /// Serializes into a frame.
    pub fn to_frame(&self) -> Frame {
        let (kind, payload) = match self {
            Request::Query(req) => {
                let mut out = Vec::with_capacity(64 + req.queries.len() * 4);
                put_queries(&mut out, req, false);
                (FrameKind::Query, out)
            }
            Request::Batch(req) => {
                let mut out = Vec::with_capacity(64 + req.queries.len() * 4);
                put_queries(&mut out, req, true);
                (FrameKind::BatchQuery, out)
            }
            Request::Health => (FrameKind::Health, Vec::new()),
            Request::Stats => (FrameKind::Stats, Vec::new()),
        };
        Frame { kind, payload }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Kind`] for response-typed frames,
    /// [`ProtoError::Malformed`]/[`ProtoError::TrailingBytes`] for invalid
    /// payload layouts.
    pub fn from_frame(frame: &Frame) -> Result<Request, ProtoError> {
        let mut rd = Rd::new(&frame.payload);
        let req = match frame.kind {
            FrameKind::Query => {
                let r = rd.queries(false)?;
                Request::Query(r)
            }
            FrameKind::BatchQuery => {
                let r = rd.queries(true)?;
                Request::Batch(r)
            }
            FrameKind::Health => Request::Health,
            FrameKind::Stats => Request::Stats,
            other => return Err(ProtoError::Kind(other as u8)),
        };
        rd.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a frame.
    pub fn to_frame(&self) -> Frame {
        let (kind, payload) = match self {
            Response::Query(a) => {
                let mut out = Vec::with_capacity(16 + a.neighbors.len() * 12);
                put_answer(&mut out, a);
                (FrameKind::QueryResult, out)
            }
            Response::Batch(answers) => {
                let mut out = Vec::new();
                let n = u32::try_from(answers.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&n.to_le_bytes());
                for a in answers {
                    put_answer(&mut out, a);
                }
                (FrameKind::BatchResult, out)
            }
            Response::Health(h) => {
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&h.vectors.to_le_bytes());
                out.extend_from_slice(&h.partitions.to_le_bytes());
                out.extend_from_slice(&h.dim.to_le_bytes());
                (FrameKind::HealthInfo, out)
            }
            Response::Stats(json) => (FrameKind::StatsJson, json.as_bytes().to_vec()),
            Response::Error { code, message } => {
                let msg = message.as_bytes();
                let len = msg.len().min(MAX_MESSAGE_LEN as usize);
                let mut out = Vec::with_capacity(5 + len);
                out.push(*code as u8);
                out.extend_from_slice(&(len as u32).to_le_bytes());
                out.extend_from_slice(&msg[..len]);
                (FrameKind::Error, out)
            }
            Response::Overloaded { capacity, depth } => {
                let mut out = Vec::with_capacity(8);
                out.extend_from_slice(&capacity.to_le_bytes());
                out.extend_from_slice(&depth.to_le_bytes());
                (FrameKind::Overloaded, out)
            }
        };
        Frame { kind, payload }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Kind`] for request-typed frames,
    /// [`ProtoError::Malformed`]/[`ProtoError::TrailingBytes`] for invalid
    /// payload layouts.
    pub fn from_frame(frame: &Frame) -> Result<Response, ProtoError> {
        let mut rd = Rd::new(&frame.payload);
        let resp = match frame.kind {
            FrameKind::QueryResult => Response::Query(rd.answer()?),
            FrameKind::BatchResult => {
                let n = rd.u32()?;
                if n > MAX_BATCH {
                    return Err(malformed(format!("batch result count {n} exceeds cap")));
                }
                let mut answers = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    answers.push(rd.answer()?);
                }
                Response::Batch(answers)
            }
            FrameKind::HealthInfo => Response::Health(HealthInfo {
                vectors: rd.u64()?,
                partitions: rd.u32()?,
                dim: rd.u32()?,
            }),
            FrameKind::StatsJson => {
                let bytes = rd.rest();
                let json = String::from_utf8(bytes.to_vec())
                    .map_err(|_| malformed("stats payload is not UTF-8".into()))?;
                Response::Stats(json)
            }
            FrameKind::Error => {
                let raw = rd.u8()?;
                let code = ErrorCode::from_u8(raw)
                    .ok_or_else(|| malformed(format!("error code {raw}")))?;
                let len = rd.u32()?;
                if len > MAX_MESSAGE_LEN {
                    return Err(malformed(format!("error message length {len} exceeds cap")));
                }
                let bytes = rd.bytes(len as usize)?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| malformed("error message is not UTF-8".into()))?;
                Response::Error { code, message }
            }
            FrameKind::Overloaded => Response::Overloaded {
                capacity: rd.u32()?,
                depth: rd.u32()?,
            },
            other => return Err(ProtoError::Kind(other as u8)),
        };
        rd.finish()?;
        Ok(resp)
    }
}

fn malformed(msg: String) -> ProtoError {
    ProtoError::Malformed(msg)
}

/// A bounds-checked payload cursor. Every read validates the remaining
/// length first, so decoding cannot panic on any byte sequence.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Truncated("payload field"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Rejects trailing bytes after the last decoded field.
    fn finish(&self) -> Result<(), ProtoError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(ProtoError::TrailingBytes(left));
        }
        Ok(())
    }

    fn params(&mut self) -> Result<QueryParams, ProtoError> {
        let topk = self.u32()?;
        let nprobe = self.u32()?;
        let keep = self.f64()?;
        let deadline_us = self.u64()?;
        if topk == 0 || topk > MAX_TOPK {
            return Err(malformed(format!(
                "topk {topk} out of range 1..={MAX_TOPK}"
            )));
        }
        if nprobe == 0 {
            return Err(malformed("nprobe must be positive".into()));
        }
        let name_len = self.u8()?;
        if name_len > MAX_BACKEND_LEN {
            return Err(malformed(format!("backend name length {name_len}")));
        }
        let backend = std::str::from_utf8(self.bytes(name_len as usize)?)
            .map_err(|_| malformed("backend name is not UTF-8".into()))?
            .to_string();
        Ok(QueryParams {
            topk,
            nprobe,
            keep,
            deadline_us,
            backend,
        })
    }

    fn queries(&mut self, with_count: bool) -> Result<QueryRequest, ProtoError> {
        let params = self.params()?;
        let dim = self.u32()?;
        if dim == 0 || dim > MAX_DIM {
            return Err(malformed(format!("dim {dim} out of range 1..={MAX_DIM}")));
        }
        let count = if with_count {
            let c = self.u32()?;
            if c == 0 || c > MAX_BATCH {
                return Err(malformed(format!("batch count {c} out of range")));
            }
            c
        } else {
            1
        };
        // The component count must exactly match what the payload holds;
        // both factors were just range-checked so the product cannot wrap.
        let floats = count as usize * dim as usize;
        let want = floats
            .checked_mul(4)
            .ok_or(ProtoError::Truncated("query"))?;
        let left = self.buf.len() - self.pos;
        if left != want {
            return Err(malformed(format!(
                "query payload holds {left} bytes but {count}x{dim} vectors need {want}"
            )));
        }
        let mut queries = Vec::with_capacity(floats);
        for _ in 0..floats {
            queries.push(self.f32()?);
        }
        Ok(QueryRequest {
            params,
            dim,
            queries,
        })
    }

    fn answer(&mut self) -> Result<QueryAnswer, ProtoError> {
        let probes_ok = self.u32()?;
        let probes_failed = self.u32()?;
        let probes_skipped = self.u32()?;
        let n = self.u32()?;
        if n > MAX_TOPK {
            return Err(malformed(format!("neighbor count {n} exceeds cap")));
        }
        // 12 bytes per neighbor must fit in the remaining payload before
        // the vector is allocated.
        let need = n as usize * 12;
        if self.buf.len() - self.pos < need {
            return Err(ProtoError::Truncated("neighbor list"));
        }
        let mut neighbors = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = self.u64()?;
            let dist = self.f32()?;
            neighbors.push(Neighbor { id, dist });
        }
        Ok(QueryAnswer {
            probes_ok,
            probes_failed,
            probes_skipped,
            neighbors,
        })
    }
}

/// Serializes a frame into an owned byte buffer (tests and clients that
/// want the raw encoding).
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len() + 4);
    // Writing into a Vec cannot fail and the payload was built by this
    // module, so the only possible error is the oversize guard.
    if write_frame(&mut out, frame.kind, &frame.payload).is_err() {
        out.clear();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = Frame {
            kind: FrameKind::Query,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = frame_bytes(&frame);
        assert_eq!(bytes.len(), HEADER_LEN + 5 + 4);
        let got = read_frame(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = frame_bytes(&Frame {
            kind: FrameKind::Health,
            payload: Vec::new(),
        });
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ProtoError::Magic(_))
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_crc() {
        let mut bytes = frame_bytes(&Frame {
            kind: FrameKind::StatsJson,
            payload: b"{\"a\":1}".to_vec(),
        });
        bytes[HEADER_LEN + 2] ^= 1;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ProtoError::Crc { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = frame_bytes(&Frame {
            kind: FrameKind::Health,
            payload: Vec::new(),
        });
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ProtoError::Oversized { .. })
        ));
    }
}

//! Deterministic fault injection for the PQ Fast Scan workspace.
//!
//! A production ANN service must survive torn writes, truncated downloads,
//! bit flips and slow disks without crashing or silently serving wrong
//! neighbors. Proving that requires *injecting* those faults on demand.
//! This crate provides **named failpoints**: sites in the IO and query
//! paths (`core.persist.read`, `ivf.persist.fsync`, `ivf.search.scan`, …)
//! where a configured fault fires deterministically.
//!
//! # Arming failpoints
//!
//! Programmatically:
//!
//! ```
//! use pqfs_fault::{self as fault, FaultAction};
//!
//! let _lock = fault::exclusive(); // serialize registry use across tests
//! let _guard = fault::scoped("demo.site", FaultAction::Error);
//! if fault::armed() {
//!     // With the default `failpoints` feature the armed site fires ...
//!     assert!(fault::check("demo.site").is_err());
//! }
//! drop(_guard);
//! // ... and a disarmed site (or a no-failpoints build) always passes.
//! assert!(fault::check("demo.site").is_ok());
//! ```
//!
//! Or from the environment, read once at first use:
//!
//! ```text
//! PQFS_FAILPOINTS="core.persist.read=bitflip(100);ivf.persist.fsync=err"
//! ```
//!
//! Spec grammar: `site=action` entries separated by `;`. Actions:
//!
//! | action          | effect                                                |
//! |-----------------|-------------------------------------------------------|
//! | `err` / `io`    | the site fails with an injected [`std::io::Error`]    |
//! | `short_read(N)` | the wrapped reader yields EOF after `N` bytes         |
//! | `short_write(N)`| the wrapped writer errors after `N` bytes             |
//! | `bitflip(K)`    | the byte at stream offset `K` has its low bit flipped |
//! | `delay(MS)`     | the site sleeps `MS` milliseconds, then succeeds      |
//! | `off`           | disarms the site                                      |
//!
//! A `COUNT*` prefix (`3*err`) limits how many triggers fire; afterwards
//! the site is disarmed. Triggers are consumed in program order, so a test
//! that arms `1*err` knows exactly which operation fails.
//!
//! # Cost when disarmed
//!
//! Probing a site when **nothing at all** is armed is a single relaxed
//! atomic load ([`armed`] is checked first at every site). Compiling with
//! `--no-default-features` removes even that: every probe becomes a const
//! `false` and the [`FaultRead`]/[`FaultWrite`] wrappers are transparent.
//!
//! # Determinism
//!
//! Faults fire based on stream byte offsets and trigger counts — never on
//! wall-clock time or thread scheduling — so an armed test fails the same
//! way on every run and pool size.

#![forbid(unsafe_code)]

mod io_wrap;
mod spec;

pub use io_wrap::{FaultRead, FaultWrite};
pub use spec::FaultSpecError;

use std::fmt;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Fail with an injected [`std::io::Error`] (payload [`InjectedFault`]).
    Error,
    /// Wrapped readers report EOF after this many bytes (truncation).
    ShortRead(u64),
    /// Wrapped writers error after this many bytes (torn write / disk full).
    ShortWrite(u64),
    /// Flip the low bit of the byte at this stream offset (corruption).
    BitFlip(u64),
    /// Sleep this many milliseconds, then succeed (slow device).
    Delay(u64),
}

/// The payload of every injected [`std::io::Error`]; downcast to tell an
/// injected failure from a real one.
#[derive(Debug)]
pub struct InjectedFault {
    /// The failpoint site that fired.
    pub site: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint '{}'", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// Builds the injected error for `site`.
pub fn injected_error(site: &str) -> std::io::Error {
    std::io::Error::other(InjectedFault { site: site.into() })
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{injected_error, FaultAction, FaultSpecError};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    struct Failpoint {
        action: FaultAction,
        /// Triggers left before auto-disarm; `None` = unlimited.
        remaining: Option<u64>,
    }

    struct Registry {
        sites: Mutex<HashMap<String, Failpoint>>,
        /// Number of armed sites — the disarmed fast path reads only this.
        count: AtomicUsize,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let reg = Registry {
                sites: Mutex::new(HashMap::new()),
                count: AtomicUsize::new(0),
            };
            if let Ok(spec) = std::env::var("PQFS_FAILPOINTS") {
                if let Err(e) = arm_spec_into(&reg, &spec) {
                    eprintln!("pqfs_fault: ignoring invalid PQFS_FAILPOINTS entry: {e}");
                }
            }
            reg
        })
    }

    fn arm_spec_into(reg: &Registry, spec: &str) -> Result<(), FaultSpecError> {
        let mut first_err = None;
        for entry in spec.split(';').filter(|s| !s.trim().is_empty()) {
            match super::spec::parse_entry(entry) {
                Ok((site, None)) => disarm_in(reg, &site),
                Ok((site, Some((action, count)))) => arm_in(reg, site, action, count),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn arm_in(reg: &Registry, site: String, action: FaultAction, remaining: Option<u64>) {
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        if sites
            .insert(site, Failpoint { action, remaining })
            .is_none()
        {
            reg.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn disarm_in(reg: &Registry, site: &str) {
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        if sites.remove(site).is_some() {
            reg.count.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// True when at least one failpoint is armed (one relaxed load).
    pub fn armed() -> bool {
        registry().count.load(Ordering::Relaxed) != 0
    }

    /// Arms `site` with `action`, firing on every trigger until disarmed.
    pub fn arm(site: impl Into<String>, action: FaultAction) {
        arm_in(registry(), site.into(), action, None);
    }

    /// Arms `site` with `action` for at most `count` triggers.
    pub fn arm_limited(site: impl Into<String>, action: FaultAction, count: u64) {
        arm_in(registry(), site.into(), action, Some(count));
    }

    /// Applies a `PQFS_FAILPOINTS`-syntax spec string.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] for the first malformed entry; well-formed
    /// entries before and after it are still applied.
    pub fn arm_spec(spec: &str) -> Result<(), FaultSpecError> {
        arm_spec_into(registry(), spec)
    }

    /// Disarms `site` (a no-op when it was not armed).
    pub fn disarm(site: &str) {
        disarm_in(registry(), site);
    }

    /// Disarms every site.
    pub fn disarm_all() {
        let reg = registry();
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        let n = sites.len();
        sites.clear();
        reg.count.fetch_sub(n, Ordering::Relaxed);
    }

    /// Injected faults by failpoint site, so operators can see which sites
    /// are firing without parsing logs.
    static INJECTED: pqfs_obs::CounterFamily = pqfs_obs::CounterFamily::new(
        "pqfs_fault_injected_total",
        "Faults injected, by failpoint site",
        "site",
    );

    /// Consumes one trigger of `site`: the armed action, or `None` when the
    /// site is disarmed (or its trigger budget is spent).
    pub fn take(site: &str) -> Option<FaultAction> {
        if !armed() {
            return None;
        }
        let reg = registry();
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        let fp = sites.get_mut(site)?;
        let action = fp.action;
        if let Some(remaining) = &mut fp.remaining {
            *remaining -= 1;
            if *remaining == 0 {
                sites.remove(site);
                reg.count.fetch_sub(1, Ordering::Relaxed);
            }
        }
        drop(sites);
        INJECTED.inc(site);
        Some(action)
    }

    /// Evaluates `site` as a simple go/no-go point: [`FaultAction::Delay`]
    /// sleeps then succeeds; every other armed action fails with the
    /// injected error. Stream-shaped actions (`ShortRead`, …) armed on a
    /// non-stream site fail loudly rather than silently doing nothing.
    ///
    /// # Errors
    ///
    /// The injected [`std::io::Error`] when the site fires.
    pub fn check(site: &str) -> std::io::Result<()> {
        match take(site) {
            None => Ok(()),
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Some(_) => Err(injected_error(site)),
        }
    }

    /// Serializes tests that touch the (global) registry. Hold the guard
    /// for the whole test; the mutex recovers from panicked holders.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(not(feature = "failpoints"))]
mod registry {
    //! Compiled-out stubs: every probe is a const `false`.
    use super::{FaultAction, FaultSpecError};
    use std::sync::{Mutex, MutexGuard};

    /// Always `false` without the `failpoints` feature.
    pub fn armed() -> bool {
        false
    }

    /// No-op without the `failpoints` feature.
    pub fn arm(_site: impl Into<String>, _action: FaultAction) {}

    /// No-op without the `failpoints` feature.
    pub fn arm_limited(_site: impl Into<String>, _action: FaultAction, _count: u64) {}

    /// Validates the spec but arms nothing without the `failpoints` feature.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] for the first malformed entry.
    pub fn arm_spec(spec: &str) -> Result<(), FaultSpecError> {
        for entry in spec.split(';').filter(|s| !s.trim().is_empty()) {
            super::spec::parse_entry(entry)?;
        }
        Ok(())
    }

    /// No-op without the `failpoints` feature.
    pub fn disarm(_site: &str) {}

    /// No-op without the `failpoints` feature.
    pub fn disarm_all() {}

    /// Always `None` without the `failpoints` feature.
    pub fn take(_site: &str) -> Option<FaultAction> {
        None
    }

    /// Always `Ok` without the `failpoints` feature.
    ///
    /// # Errors
    ///
    /// Never fails.
    pub fn check(_site: &str) -> std::io::Result<()> {
        Ok(())
    }

    /// Serializes tests that touch the registry (still real, so mixed
    /// feature sets keep the same locking discipline).
    pub fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

pub use registry::{arm, arm_limited, arm_spec, armed, check, disarm, disarm_all, exclusive, take};

/// Arms `site` for the guard's lifetime; dropping the guard disarms it.
pub fn scoped(site: impl Into<String>, action: FaultAction) -> FaultScope {
    let site = site.into();
    arm(site.clone(), action);
    FaultScope { site }
}

/// RAII guard from [`scoped`]: disarms its site on drop.
#[derive(Debug)]
pub struct FaultScope {
    site: String,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        disarm(&self.site);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_pass() {
        let _lock = exclusive();
        assert!(!armed() || take("never.armed").is_none());
        assert!(check("never.armed").is_ok());
    }

    #[test]
    fn armed_site_fires_and_disarms() {
        let _lock = exclusive();
        arm("t.fire", FaultAction::Error);
        assert!(armed());
        let err = check("t.fire").unwrap_err();
        assert!(err
            .get_ref()
            .unwrap()
            .downcast_ref::<InjectedFault>()
            .is_some());
        disarm("t.fire");
        assert!(check("t.fire").is_ok());
    }

    #[test]
    fn limited_count_is_consumed_in_order() {
        let _lock = exclusive();
        arm_limited("t.twice", FaultAction::Error, 2);
        assert!(check("t.twice").is_err());
        assert!(check("t.twice").is_err());
        assert!(check("t.twice").is_ok(), "budget spent, site auto-disarmed");
    }

    #[test]
    fn scoped_guard_disarms_on_drop() {
        let _lock = exclusive();
        {
            let _g = scoped("t.scope", FaultAction::Error);
            assert!(check("t.scope").is_err());
        }
        assert!(check("t.scope").is_ok());
    }

    #[test]
    fn spec_round_trips_through_arm_spec() {
        let _lock = exclusive();
        arm_spec("t.a=err; t.b = 2*bitflip(7) ;t.c=delay(0)").unwrap();
        assert_eq!(take("t.a"), Some(FaultAction::Error));
        assert_eq!(take("t.b"), Some(FaultAction::BitFlip(7)));
        assert_eq!(take("t.b"), Some(FaultAction::BitFlip(7)));
        assert_eq!(take("t.b"), None);
        assert!(check("t.c").is_ok(), "delay(0) succeeds after sleeping");
        arm_spec("t.a=off").unwrap();
        assert_eq!(take("t.a"), None);
        disarm_all();
        assert!(!armed());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn injected_faults_are_counted_per_site() {
        let _lock = exclusive();
        let site = "t.metrics.site";
        let before = pqfs_obs::counter_value("pqfs_fault_injected_total", Some(("site", site)));
        arm_limited(site, FaultAction::Error, 2);
        assert!(check(site).is_err());
        assert!(check(site).is_err());
        assert!(check(site).is_ok(), "budget spent");
        let after = pqfs_obs::counter_value("pqfs_fault_injected_total", Some(("site", site)));
        assert_eq!(after - before, 2, "exactly the fired triggers are counted");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _lock = exclusive();
        assert!(arm_spec("missing-equals").is_err());
        assert!(arm_spec("s=unknown_action").is_err());
        assert!(arm_spec("s=short_read(x)").is_err());
        assert!(arm_spec("s=bitflip").is_err());
        assert!(arm_spec("=err").is_err());
        assert!(arm_spec("s=0*err").is_err());
        disarm_all();
    }
}

//! Property-based verification of the paper's §4 guarantee: **PQ Fast Scan
//! returns exactly the same results as PQ Scan**, for arbitrary distance
//! tables, code sets, `topk`, `keep`, grouping components, quantization bin
//! counts and kernel back-ends.

use pqfs_core::{DistanceTables, RowMajorCodes, TransposedCodes};
use pqfs_scan::{
    scan_avx, scan_gather, scan_libpq, scan_naive, scan_quantize_only, FastScanIndex,
    FastScanOptions, Kernel, ScanParams,
};
use proptest::prelude::*;

const M: usize = 8;
const KSUB: usize = 256;

fn arb_tables() -> impl Strategy<Value = DistanceTables> {
    prop::collection::vec(0.0f32..1000.0, M * KSUB)
        .prop_map(|data| DistanceTables::from_raw(data, M, KSUB))
}

fn arb_codes(max_n: usize) -> impl Strategy<Value = RowMajorCodes> {
    prop::collection::vec(any::<u8>(), 0..=max_n * M).prop_map(|mut bytes| {
        bytes.truncate(bytes.len() / M * M);
        RowMajorCodes::new(bytes, M)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast Scan == naive PQ Scan for every configuration.
    #[test]
    fn fastscan_equals_pqscan(
        tables in arb_tables(),
        codes in arb_codes(400),
        topk in 1usize..32,
        keep in 0.0f64..0.2,
        c in 0usize..=4,
        bins in prop::sample::select(vec![126u16, 200, 254]),
        use_portable in any::<bool>(),
    ) {
        let kernel = if use_portable { Kernel::Portable } else { Kernel::Auto };
        let opts = FastScanOptions::default()
            .with_group_components(c)
            .with_bins(bins)
            .with_kernel(kernel);
        let index = FastScanIndex::build(&codes, &opts).unwrap();
        let fast = index.scan(&tables, &ScanParams::new(topk).with_keep(keep)).unwrap();
        let slow = scan_naive(&tables, &codes, topk);

        prop_assert_eq!(fast.ids(), slow.ids());
        prop_assert_eq!(fast.distances(), slow.distances());
        // Accounting: every non-warm-up vector is either pruned or verified.
        prop_assert_eq!(
            fast.stats.warmup + fast.stats.pruned + fast.stats.verified,
            fast.stats.scanned
        );
    }

    /// Every kernel back-end returns the identical result set; the SSSE3
    /// kernel additionally matches the portable kernel's pruning
    /// statistics bit-for-bit (the AVX2 pair kernel may verify a handful
    /// more candidates because a block pair shares one threshold
    /// snapshot — results are still exact).
    #[test]
    fn kernels_agree_exactly(
        tables in arb_tables(),
        codes in arb_codes(300),
        topk in 1usize..16,
        c in 0usize..=4,
    ) {
        let base = FastScanOptions::default().with_group_components(c);
        let portable = FastScanIndex::build(&codes, &base.clone().with_kernel(Kernel::Portable))
            .unwrap()
            .scan(&tables, &ScanParams::new(topk))
            .unwrap();
        for kernel in [Kernel::Auto, Kernel::Ssse3, Kernel::Avx2] {
            let index =
                FastScanIndex::build(&codes, &base.clone().with_kernel(kernel)).unwrap();
            match index.scan(&tables, &ScanParams::new(topk)) {
                Ok(result) => {
                    prop_assert_eq!(portable.ids(), result.ids());
                    prop_assert_eq!(portable.distances(), result.distances());
                    if kernel == Kernel::Ssse3 {
                        prop_assert_eq!(portable.stats.pruned, result.stats.pruned);
                        prop_assert_eq!(portable.stats.verified, result.stats.verified);
                    }
                }
                Err(pqfs_scan::ScanError::KernelUnavailable { .. }) => {} // non-x86 host
                Err(e) => return Err(TestCaseError::fail(format!("scan failed: {e}"))),
            }
        }
    }

    /// All four PQ Scan baselines return the identical result set.
    #[test]
    fn baselines_agree(
        tables in arb_tables(),
        codes in arb_codes(200),
        topk in 1usize..16,
    ) {
        prop_assume!(!codes.is_empty());
        let transposed = TransposedCodes::from_row_major(&codes);
        let a = scan_naive(&tables, &codes, topk);
        let b = scan_libpq(&tables, &codes, topk);
        let c = scan_avx(&tables, &transposed, topk);
        let d = scan_gather(&tables, &transposed, topk);
        prop_assert_eq!(a.ids(), b.ids());
        prop_assert_eq!(&a.ids(), &c.ids());
        prop_assert_eq!(&a.ids(), &d.ids());
    }

    /// The quantization-only variant (§5.5) is exact as well.
    #[test]
    fn quantize_only_is_exact(
        tables in arb_tables(),
        codes in arb_codes(300),
        topk in 1usize..16,
        keep in 0.0f64..0.3,
    ) {
        let a = scan_naive(&tables, &codes, topk);
        let b = scan_quantize_only(&tables, &codes, topk, keep, 254);
        prop_assert_eq!(a.ids(), b.ids());
    }

    /// Degenerate tables (all entries identical) disable pruning but stay
    /// exact.
    #[test]
    fn degenerate_tables_stay_exact(
        value in 0.0f32..100.0,
        codes in arb_codes(100),
        topk in 1usize..8,
    ) {
        let tables = DistanceTables::from_raw(vec![value; M * KSUB], M, KSUB);
        let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
        let fast = index.scan(&tables, &ScanParams::new(topk)).unwrap();
        let slow = scan_naive(&tables, &codes, topk);
        prop_assert_eq!(fast.ids(), slow.ids());
    }
}

/// End-to-end check with a *real* trained product quantizer on clustered
/// data, with the §4.3 optimized assignment applied — the realistic
/// configuration of the paper's evaluation.
#[test]
fn end_to_end_with_trained_pq() {
    use pqfs_core::{PqConfig, ProductQuantizer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let dim = 32;
    let mut rng = StdRng::seed_from_u64(99);
    // Clustered data: 20 cluster centers with noise.
    let centers: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0f32..255.0)).collect())
        .collect();
    let sample = |rng: &mut StdRng| -> Vec<f32> {
        let c = &centers[rng.gen_range(0..centers.len())];
        c.iter()
            .map(|&x| (x + rng.gen_range(-15.0f32..15.0)).clamp(0.0, 255.0))
            .collect()
    };

    let train: Vec<f32> = (0..2000).flat_map(|_| sample(&mut rng)).collect();
    let config = PqConfig::pq8x8(dim);
    let mut pq = ProductQuantizer::train(&train, &config, 5).unwrap();
    pq.optimize_assignment(16, 7).unwrap();

    let base: Vec<f32> = (0..4000).flat_map(|_| sample(&mut rng)).collect();
    let codes = pq.encode_batch(&base).unwrap();
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();

    let mut total_pruned = 0.0;
    for q in 0..20 {
        let query = sample(&mut rng);
        let tables = DistanceTables::compute(&pq, &query).unwrap();
        let fast = index
            .scan(&tables, &ScanParams::new(10).with_keep(0.01))
            .unwrap();
        let slow = scan_naive(&tables, &codes, 10);
        assert_eq!(fast.ids(), slow.ids(), "query {q}");
        assert_eq!(fast.distances(), slow.distances(), "query {q}");
        total_pruned += fast.stats.pruned_fraction();
    }
    // On clustered data with the optimized assignment, pruning power should
    // be substantial (the paper reports >95 % on SIFT).
    let avg = total_pruned / 20.0;
    assert!(avg > 0.5, "average pruning power {avg:.3} unexpectedly low");
}

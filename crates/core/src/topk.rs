//! Bounded top-k maintenance with deterministic tie-breaking.
//!
//! Every scan implementation in the workspace (naive, libpq, AVX, gather,
//! Fast Scan) reports its `topk` nearest neighbors through this type, so
//! "returns exactly the same results" (the paper's §4 guarantee) is a
//! bit-comparable property: the result set is *defined* as the `k` smallest
//! `(distance, id)` pairs in lexicographic order, which is unique even when
//! distances tie.

use std::collections::BinaryHeap;

/// One scored candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Squared ADC distance to the query.
    pub dist: f32,
    /// Caller-assigned vector identifier.
    pub id: u64,
}

#[inline]
fn cmp_neighbors(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id))
}

/// Max-heap item ordered by `(dist, id)` so the heap root is the current
/// *worst* retained neighbor.
#[derive(Debug, Clone, Copy)]
struct HeapItem(Neighbor);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        cmp_neighbors(&self.0, &other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_neighbors(&self.0, &other.0)
    }
}

/// A bounded collector of the `k` smallest `(distance, id)` pairs.
#[derive(Debug, Clone)]
pub struct TopK {
    heap: BinaryHeap<HeapItem>,
    k: usize,
}

impl TopK {
    /// Creates a collector for the `k` nearest neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "topk must be positive");
        TopK {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `k` neighbors are retained.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The *pruning threshold*: the distance of the current `k`-th nearest
    /// neighbor, or `+∞` while fewer than `k` candidates have been seen.
    /// Fast Scan compares (quantized) lower bounds against this value.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.is_full() {
            self.heap
                .peek()
                .map(|item| item.0.dist)
                .unwrap_or(f32::INFINITY)
        } else {
            f32::INFINITY
        }
    }

    /// The current worst retained neighbor, if full.
    pub fn worst(&self) -> Option<Neighbor> {
        if self.is_full() {
            self.heap.peek().map(|item| item.0)
        } else {
            None
        }
    }

    /// Whether a candidate with distance `dist` and id `id` would enter the
    /// result set right now.
    #[inline]
    pub fn would_accept(&self, dist: f32, id: u64) -> bool {
        if !self.is_full() {
            return true;
        }
        let worst = self
            .heap
            .peek()
            .unwrap_or_else(|| unreachable!("full heap has a root"))
            .0;
        cmp_neighbors(&Neighbor { dist, id }, &worst) == std::cmp::Ordering::Less
    }

    /// Offers a candidate; returns `true` if it was retained.
    #[inline]
    pub fn push(&mut self, dist: f32, id: u64) -> bool {
        let cand = Neighbor { dist, id };
        if self.heap.len() < self.k {
            self.heap.push(HeapItem(cand));
            return true;
        }
        let worst = self
            .heap
            .peek()
            .unwrap_or_else(|| unreachable!("full heap has a root"))
            .0;
        if cmp_neighbors(&cand, &worst) == std::cmp::Ordering::Less {
            self.heap.pop();
            self.heap.push(HeapItem(cand));
            true
        } else {
            false
        }
    }

    /// Consumes the collector and returns neighbors sorted ascending by
    /// `(distance, id)`.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.into_iter().map(|item| item.0).collect();
        v.sort_by(cmp_neighbors);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut topk = TopK::new(3);
        for (i, d) in [5.0f32, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            topk.push(*d, i as u64);
        }
        let result = topk.into_sorted();
        let dists: Vec<f32> = result.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
        assert_eq!(result[0].id, 1);
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), f32::INFINITY);
        topk.push(1.0, 0);
        assert_eq!(topk.threshold(), f32::INFINITY);
        topk.push(2.0, 1);
        assert_eq!(topk.threshold(), 2.0);
        topk.push(1.5, 2);
        assert_eq!(topk.threshold(), 1.5);
    }

    #[test]
    fn ties_break_by_id() {
        let mut topk = TopK::new(2);
        topk.push(1.0, 10);
        topk.push(1.0, 5);
        topk.push(1.0, 7); // ties with worst (1.0, 10): id 7 < 10 -> replaces
        let result = topk.into_sorted();
        assert_eq!(result.iter().map(|n| n.id).collect::<Vec<_>>(), vec![5, 7]);
    }

    #[test]
    fn equal_dist_equal_id_is_rejected_when_full() {
        let mut topk = TopK::new(1);
        assert!(topk.push(1.0, 3));
        assert!(!topk.push(1.0, 3), "identical candidate must not displace");
    }

    #[test]
    fn would_accept_agrees_with_push() {
        let mut topk = TopK::new(2);
        topk.push(1.0, 0);
        topk.push(3.0, 1);
        assert!(topk.would_accept(2.0, 9));
        assert!(!topk.would_accept(3.0, 9), "worse (3.0, 9) > (3.0, 1)");
        assert!(topk.would_accept(3.0, 0), "(3.0, 0) < (3.0, 1)");
        assert!(!topk.would_accept(4.0, 0));
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut topk = TopK::new(10);
        topk.push(2.0, 1);
        topk.push(1.0, 0);
        let result = topk.into_sorted();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].id, 0);
    }

    #[test]
    fn matches_sort_oracle_on_many_candidates() {
        // Deterministic pseudo-random distances incl. duplicates.
        let candidates: Vec<(f32, u64)> =
            (0..500u64).map(|i| (((i * 37) % 101) as f32, i)).collect();
        let mut topk = TopK::new(25);
        for &(d, id) in &candidates {
            topk.push(d, id);
        }
        let got: Vec<(f32, u64)> = topk.into_sorted().iter().map(|n| (n.dist, n.id)).collect();

        let mut oracle = candidates.clone();
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        oracle.truncate(25);
        assert_eq!(got, oracle);
    }

    #[test]
    #[should_panic(expected = "topk must be positive")]
    fn zero_k_is_rejected() {
        TopK::new(0);
    }
}

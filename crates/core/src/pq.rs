//! The product quantizer itself (paper §2.1).
//!
//! A [`ProductQuantizer`] divides a `dim`-dimensional vector into `m`
//! sub-vectors and quantizes each with its own codebook, producing a compact
//! code of `m` centroid indexes. With `PQ 8×8` a 128-d float vector
//! (512 bytes) becomes an 8-byte code while still supporting distance
//! computations through per-query lookup tables.

use crate::codebook::Codebook;
use crate::config::PqConfig;
use crate::layout::RowMajorCodes;
use crate::PqError;
use pqfs_kmeans::{train as kmeans_train, train_same_size, KMeansConfig, SameSizeConfig};

/// A trained product quantizer: `m` codebooks of `k*` centroids each.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    config: PqConfig,
    codebooks: Vec<Codebook>,
}

impl ProductQuantizer {
    /// Trains the `m` sub-quantizers on row-major training vectors
    /// (`n × dim`, flattened). Each sub-quantizer is an independent k-means
    /// codebook over the corresponding sub-vector slice.
    ///
    /// Determinism: sub-quantizer `j` is seeded with `seed + j`, so a fixed
    /// seed reproduces the exact same quantizer.
    ///
    /// # Errors
    ///
    /// * [`PqError::Untrainable`] for `nbits > 8` configurations;
    /// * [`PqError::DimMismatch`] if `data` is not a multiple of `dim`;
    /// * [`PqError::Training`] if k-means rejects the training set (too few
    ///   points, NaNs, …). Training needs at least `k* = 2^nbits` vectors.
    pub fn train(data: &[f32], config: &PqConfig, seed: u64) -> Result<Self, PqError> {
        if !config.trainable() {
            return Err(PqError::Untrainable {
                nbits: config.nbits(),
            });
        }
        let dim = config.dim();
        if data.is_empty() || data.len() % dim != 0 {
            return Err(PqError::DimMismatch {
                expected: dim,
                actual: data.len(),
            });
        }
        let n = data.len() / dim;
        let dsub = config.dsub();
        let m = config.m();

        let mut codebooks = Vec::with_capacity(m);
        let mut sub = vec![0f32; n * dsub];
        for j in 0..m {
            // Gather the j-th sub-vector of every training vector.
            for (i, v) in data.chunks_exact(dim).enumerate() {
                sub[i * dsub..(i + 1) * dsub].copy_from_slice(&v[j * dsub..(j + 1) * dsub]);
            }
            let cfg = KMeansConfig::new(config.ksub()).with_seed(seed.wrapping_add(j as u64));
            let model = kmeans_train(&sub, dsub, &cfg)?;
            codebooks.push(Codebook::new(model.centroids().to_vec(), dsub));
        }
        Ok(ProductQuantizer {
            config: *config,
            codebooks,
        })
    }

    /// Builds a quantizer from pre-existing codebooks (deserialization,
    /// tests, hand-crafted fixtures).
    ///
    /// # Panics
    ///
    /// Panics if the number or shape of codebooks contradicts `config`.
    pub fn from_codebooks(config: PqConfig, codebooks: Vec<Codebook>) -> Self {
        assert_eq!(
            codebooks.len(),
            config.m(),
            "need one codebook per sub-quantizer"
        );
        for cb in &codebooks {
            assert_eq!(cb.ksub(), config.ksub());
            assert_eq!(cb.dsub(), config.dsub());
        }
        ProductQuantizer { config, codebooks }
    }

    /// The configuration this quantizer was trained with.
    pub fn config(&self) -> &PqConfig {
        &self.config
    }

    /// The codebook of sub-quantizer `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= m`.
    pub fn codebook(&self, j: usize) -> &Codebook {
        &self.codebooks[j]
    }

    /// Encodes one vector into `out` (one byte per component).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim` or `out.len() != m` (hot path; the checked
    /// variant is [`encode`](Self::encode)).
    pub fn encode_into(&self, v: &[f32], out: &mut [u8]) {
        assert_eq!(v.len(), self.config.dim());
        assert_eq!(out.len(), self.config.m());
        let dsub = self.config.dsub();
        for (j, slot) in out.iter_mut().enumerate() {
            let (idx, _) = self.codebooks[j].quantize(&v[j * dsub..(j + 1) * dsub]);
            *slot = idx as u8;
        }
    }

    /// Encodes one vector, returning its `pqcode` (paper §2.1).
    ///
    /// # Errors
    ///
    /// [`PqError::DimMismatch`] if `v.len() != dim`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        let mut out = vec![0u8; self.config.m()];
        self.encode_into(v, &mut out);
        out
    }

    /// Encodes a row-major batch into the Figure-1 row-major code layout.
    ///
    /// # Errors
    ///
    /// [`PqError::DimMismatch`] if `data` is not a multiple of `dim`.
    pub fn encode_batch(&self, data: &[f32]) -> Result<RowMajorCodes, PqError> {
        let dim = self.config.dim();
        if data.len() % dim != 0 {
            return Err(PqError::DimMismatch {
                expected: dim,
                actual: data.len(),
            });
        }
        let n = data.len() / dim;
        let m = self.config.m();
        let mut codes = vec![0u8; n * m];
        for (i, v) in data.chunks_exact(dim).enumerate() {
            self.encode_into(v, &mut codes[i * m..(i + 1) * m]);
        }
        Ok(RowMajorCodes::new(codes, m))
    }

    /// Encodes a row-major batch on the global [`pqfs_pool::ThreadPool`]
    /// (encoding is embarrassingly parallel and dominates index-build
    /// time).
    ///
    /// Results are identical to [`encode_batch`](Self::encode_batch): every
    /// row is encoded independently and written to its own output slot, so
    /// neither thread count nor scheduling affects the codes.
    ///
    /// # Errors
    ///
    /// [`PqError::DimMismatch`] if `data` is not a multiple of `dim`.
    pub fn encode_batch_parallel(&self, data: &[f32]) -> Result<RowMajorCodes, PqError> {
        self.encode_batch_parallel_on(data, pqfs_pool::ThreadPool::global())
    }

    /// [`encode_batch_parallel`](Self::encode_batch_parallel) on a specific
    /// pool (tests and callers that manage their own pool sizing).
    ///
    /// # Errors
    ///
    /// [`PqError::DimMismatch`] if `data` is not a multiple of `dim`.
    pub fn encode_batch_parallel_on(
        &self,
        data: &[f32],
        pool: &pqfs_pool::ThreadPool,
    ) -> Result<RowMajorCodes, PqError> {
        let dim = self.config.dim();
        if data.len() % dim != 0 {
            return Err(PqError::DimMismatch {
                expected: dim,
                actual: data.len(),
            });
        }
        let n = data.len() / dim;
        let m = self.config.m();
        if pool.threads() <= 1 || n < 1024 {
            return self.encode_batch(data);
        }
        // Small fixed chunks let the pool's work-stealing balance the load;
        // the chunk size is a multiple of `m`, so every chunk covers whole
        // rows.
        const CHUNK_ROWS: usize = 256;
        let mut codes = vec![0u8; n * m];
        pool.for_each_chunk(&mut codes, CHUNK_ROWS * m, |offset, out| {
            let first_row = offset / m;
            for (k, code) in out.chunks_exact_mut(m).enumerate() {
                let i = first_row + k;
                self.encode_into(&data[i * dim..(i + 1) * dim], code);
            }
        });
        Ok(RowMajorCodes::new(codes, m))
    }

    /// Decodes a code back to its reconstruction `q_p(x)` — the
    /// concatenation of the selected centroids.
    ///
    /// # Errors
    ///
    /// [`PqError::CodeLenMismatch`] if `code.len() != m`.
    pub fn decode(&self, code: &[u8]) -> Result<Vec<f32>, PqError> {
        if code.len() != self.config.m() {
            return Err(PqError::CodeLenMismatch {
                expected: self.config.m(),
                actual: code.len(),
            });
        }
        let mut out = Vec::with_capacity(self.config.dim());
        for (j, &idx) in code.iter().enumerate() {
            debug_assert!((idx as usize) < self.codebooks[j].ksub());
            out.extend_from_slice(self.codebooks[j].centroid(idx as usize));
        }
        Ok(out)
    }

    /// Squared quantization error of one vector, `||x − q_p(x)||²`.
    pub fn quantization_error(&self, v: &[f32]) -> Result<f32, PqError> {
        if v.len() != self.config.dim() {
            return Err(PqError::DimMismatch {
                expected: self.config.dim(),
                actual: v.len(),
            });
        }
        let dsub = self.config.dsub();
        let mut err = 0f32;
        for (j, cb) in self.codebooks.iter().enumerate() {
            let (_, d) = cb.quantize(&v[j * dsub..(j + 1) * dsub]);
            err += d;
        }
        Ok(err)
    }

    /// Applies the §4.3 **optimized assignment of centroid indexes**.
    ///
    /// Each codebook's centroids are clustered with same-size k-means into
    /// `portions` balanced clusters; centroids of a cluster receive
    /// consecutive indexes, so each distance-table *portion* (16 consecutive
    /// entries for Fast Scan) holds mutually close centroids and the §4.3
    /// minimum tables become tight.
    ///
    /// Relabeling is a bijection: geometry, quantization error and ADC
    /// distances are untouched. **Codes produced before the call are
    /// invalidated** — optimize first, then encode the database.
    ///
    /// Returns the permutation applied to each codebook (`perm[j][new] =
    /// old`), which tests and tooling can use to translate codes.
    ///
    /// # Errors
    ///
    /// [`PqError::BadPortioning`] if `k*` is not divisible by `portions`, or
    /// a clustering failure as [`PqError::Training`].
    pub fn optimize_assignment(
        &mut self,
        portions: usize,
        seed: u64,
    ) -> Result<Vec<Vec<usize>>, PqError> {
        let ksub = self.config.ksub();
        if portions == 0 || ksub % portions != 0 {
            return Err(PqError::BadPortioning { ksub, portions });
        }
        let mut perms = Vec::with_capacity(self.codebooks.len());
        for (j, cb) in self.codebooks.iter_mut().enumerate() {
            let cfg = SameSizeConfig::new(portions).with_seed(seed.wrapping_add(j as u64));
            let clustering = train_same_size(cb.centroids(), cb.dsub(), &cfg)?;
            // Consecutive indexes per cluster: concatenate the groups.
            let perm: Vec<usize> = clustering.groups().into_iter().flatten().collect();
            cb.permute(&perm);
            perms.push(perm);
        }
        Ok(perms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqfs_kmeans::distance::l2_sq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(0.0..255.0f32)).collect()
    }

    fn small_pq() -> (ProductQuantizer, Vec<f32>) {
        let config = PqConfig::new(16, 4, 4).unwrap(); // 4 sub-quantizers × 16 centroids
        let data = training_data(200, 16, 7);
        let pq = ProductQuantizer::train(&data, &config, 1).unwrap();
        (pq, data)
    }

    #[test]
    fn encode_decode_roundtrip_reduces_error() {
        let (pq, data) = small_pq();
        for v in data.chunks_exact(16).take(10) {
            let code = pq.encode(v);
            let rec = pq.decode(&code).unwrap();
            assert_eq!(rec.len(), 16);
            let err = l2_sq(v, &rec);
            // Same quantity, different float accumulation order.
            let per_sub = pq.quantization_error(v).unwrap();
            assert!((err - per_sub).abs() <= 1e-3 * err.max(1.0));
            // Reconstruction must beat a random reconstruction by far.
            assert!(err < l2_sq(v, &[0.0; 16]));
        }
    }

    #[test]
    fn encode_is_deterministic_and_in_range() {
        let (pq, data) = small_pq();
        let v = &data[..16];
        let a = pq.encode(v);
        let b = pq.encode(v);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (c as usize) < 16));
    }

    #[test]
    fn encode_batch_matches_single_encodes() {
        let (pq, data) = small_pq();
        let codes = pq.encode_batch(&data[..16 * 20]).unwrap();
        for (i, v) in data[..16 * 20].chunks_exact(16).enumerate() {
            assert_eq!(codes.code(i), pq.encode(v).as_slice());
        }
        assert_eq!(codes.len(), 20);
    }

    #[test]
    fn encode_batch_parallel_is_bit_identical_to_serial() {
        let (pq, _) = small_pq();
        let data = training_data(3000, 16, 9);
        let serial = pq.encode_batch(&data).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = pqfs_pool::ThreadPool::new(threads);
            let parallel = pq.encode_batch_parallel_on(&data, &pool).unwrap();
            assert_eq!(parallel.as_bytes(), serial.as_bytes(), "{threads} threads");
        }
        let global = pq.encode_batch_parallel(&data).unwrap();
        assert_eq!(global.as_bytes(), serial.as_bytes());
    }

    #[test]
    fn training_is_deterministic() {
        let config = PqConfig::new(8, 2, 4).unwrap();
        let data = training_data(100, 8, 3);
        let a = ProductQuantizer::train(&data, &config, 5).unwrap();
        let b = ProductQuantizer::train(&data, &config, 5).unwrap();
        for j in 0..2 {
            assert_eq!(a.codebook(j).centroids(), b.codebook(j).centroids());
        }
    }

    #[test]
    fn train_rejects_untrainable_and_bad_shapes() {
        let cfg16 = PqConfig::pq4x16(128);
        let data = training_data(10, 128, 0);
        assert_eq!(
            ProductQuantizer::train(&data, &cfg16, 0).unwrap_err(),
            PqError::Untrainable { nbits: 16 }
        );
        let cfg = PqConfig::new(16, 4, 4).unwrap();
        assert!(matches!(
            ProductQuantizer::train(&data[..100], &cfg, 0),
            Err(PqError::DimMismatch { .. })
        ));
        // Too few training vectors for 16 centroids.
        let tiny = training_data(4, 16, 0);
        assert!(matches!(
            ProductQuantizer::train(&tiny, &cfg, 0),
            Err(PqError::Training(_))
        ));
    }

    #[test]
    fn decode_rejects_wrong_code_length() {
        let (pq, _) = small_pq();
        assert_eq!(
            pq.decode(&[0, 1]).unwrap_err(),
            PqError::CodeLenMismatch {
                expected: 4,
                actual: 2
            }
        );
    }

    #[test]
    fn optimized_assignment_preserves_geometry() {
        let (mut pq, data) = small_pq();
        let v = &data[..16];
        let before_err = pq.quantization_error(v).unwrap();
        let before_rec = pq.decode(&pq.encode(v)).unwrap();

        let perms = pq.optimize_assignment(4, 11).unwrap(); // 4 portions of 4
        assert_eq!(perms.len(), 4);

        let after_err = pq.quantization_error(v).unwrap();
        let after_rec = pq.decode(&pq.encode(v)).unwrap();
        assert_eq!(
            before_err, after_err,
            "relabeling must not change the error"
        );
        assert_eq!(before_rec, after_rec, "reconstruction must be identical");
    }

    #[test]
    fn optimized_assignment_translates_codes_via_returned_perm() {
        let (mut pq, data) = small_pq();
        let v = &data[16..32];
        let old_code = pq.encode(v);
        let perms = pq.optimize_assignment(4, 2).unwrap();
        let new_code = pq.encode(v);
        // perm[j][new] = old: the new code position must point at the old
        // centroid index.
        for j in 0..4 {
            assert_eq!(perms[j][new_code[j] as usize], old_code[j] as usize);
        }
    }

    #[test]
    fn optimize_assignment_rejects_bad_portions() {
        let (mut pq, _) = small_pq();
        assert_eq!(
            pq.optimize_assignment(0, 0).unwrap_err(),
            PqError::BadPortioning {
                ksub: 16,
                portions: 0
            }
        );
        assert_eq!(
            pq.optimize_assignment(3, 0).unwrap_err(),
            PqError::BadPortioning {
                ksub: 16,
                portions: 3
            }
        );
    }
}

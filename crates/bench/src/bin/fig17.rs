//! Figure 17 — pruning power of the quantization-only variant (§5.5).
//!
//! This variant keeps full 256-entry tables (no grouping, no minimum
//! tables) and only quantizes entries to 8 bits. Its pruning power isolates
//! the loss due to quantization — the paper finds 99.9 %+, i.e. almost all
//! of Fast Scan's pruning loss comes from the minimum tables instead.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig17
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scaled_partition_sizes, Fixture};
use pqfs_core::RowMajorCodes;
use pqfs_metrics::{fmt_f, Summary, TextTable};
use pqfs_scan::{Backend, PreparedScanner, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let sizes = scaled_partition_sizes();
    let queries_per_partition = env_usize("PQFS_QUERIES", 3);
    header(
        "fig17",
        "Figure 17, §5.5",
        &format!("partitions {sizes:?}, {queries_per_partition} queries each"),
    );

    let mut fx = Fixture::train(17);
    let opts = ScanOpts::default();
    let partitions: Vec<Arc<RowMajorCodes>> =
        sizes.iter().map(|&n| Arc::new(fx.partition(n))).collect();
    let prepare = |backend: Backend| -> Vec<Box<dyn PreparedScanner>> {
        partitions
            .iter()
            .map(|codes| {
                backend
                    .scanner(&opts)
                    .prepare(Arc::clone(codes))
                    .expect("prepare")
            })
            .collect()
    };
    let quant_only = prepare(Backend::QuantizeOnly);
    let indexes = prepare(Backend::FastScan);

    let keeps = [0.0001, 0.001, 0.005, 0.01, 0.05, 0.1];
    let mut t = TextTable::new(vec![
        "topk",
        "keep [%]",
        "quant-only pruned [%]",
        "full fastscan pruned [%]",
    ]);

    for topk in [100usize, 1000] {
        for keep in keeps {
            let params = ScanParams::new(topk).with_keep(keep);
            let mut qo = Vec::new();
            let mut full = Vec::new();
            for (qonly, index) in quant_only.iter().zip(&indexes) {
                for _ in 0..queries_per_partition {
                    let q = fx.queries(1);
                    let tables = fx.tables(&q);
                    let r = qonly.scan(&tables, &params).unwrap();
                    qo.push(100.0 * r.stats.pruned_fraction());
                    let r = index.scan(&tables, &params).unwrap();
                    full.push(100.0 * r.stats.pruned_fraction());
                }
            }
            t.row(vec![
                topk.to_string(),
                fmt_f(keep * 100.0, 2),
                fmt_f(Summary::from_values(&qo).median(), 3),
                fmt_f(Summary::from_values(&full).median(), 3),
            ]);
        }
    }
    println!("{t}");
    println!(
        "paper shape: quantization-only pruning is 99.9-99.97 %, clearly above \
         the full Fast Scan's 98-99.7 % — quantization is nearly lossless and \
         the minimum tables account for most of the pruning-power loss."
    );
}

//! The paper's §6 generalization, applied: query execution over a
//! dictionary-compressed database column using in-register small tables.
//!
//! Scenario: a telemetry table stores one sensor reading per row,
//! dictionary-compressed to one byte. Two queries run against it:
//!
//! * **top-k**: "the 10 hottest readings" — pruned by in-register
//!   *maximum tables* (upper bounds), exact results;
//! * **approximate mean** — computed entirely in 8-bit arithmetic via a
//!   *table of means* (`pshufb` + `psadbw`), with a guaranteed error bound.
//!
//! ```sh
//! cargo run --release --example compressed_analytics
//! ```

use pq_fast_scan::columnar::{approximate_mean, topk_max_fast, CompressedColumn};
use pq_fast_scan::metrics::{fmt_count, time_ms};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n_rows = 2_000_000;
    println!("== compressed-column analytics (paper §6) ==");

    // Telemetry-like column: daily cycles plus noise and rare spikes.
    let mut rng = StdRng::seed_from_u64(77);
    let readings: Vec<f32> = (0..n_rows)
        .map(|i| {
            let phase = (i % 86_400) as f32 / 86_400.0 * std::f32::consts::TAU;
            let base = 40.0 + 15.0 * phase.sin() + rng.gen_range(-3.0f32..3.0);
            if rng.gen_ratio(1, 50_000) {
                base + rng.gen_range(30.0f32..60.0) // rare spike
            } else {
                base
            }
        })
        .collect();

    let (column, compress_ms) = time_ms(|| CompressedColumn::compress(&readings, 256));
    println!(
        "column: {} rows compressed 4:1 in {:.0} ms (max reconstruction error {:.3})",
        fmt_count(n_rows as u64),
        compress_ms,
        column.reconstruction_error(&readings)
    );

    // --- Top-k with maximum tables -------------------------------------
    let k = 10;
    let (exact, exact_ms) = time_ms(|| column.topk_max_exact(k));
    let (fast, fast_ms) = time_ms(|| topk_max_fast(&column, k));
    assert_eq!(fast.items, exact, "fast top-k must be exact");

    println!("\ntop-{k} hottest readings (row, value):");
    for (row, value) in fast.items.iter().take(5) {
        println!("  {:>9}  {value:.1}", fmt_count(*row as u64));
    }
    println!("  ...");
    println!(
        "fast top-k: {:.1} % of rows pruned without a dictionary lookup; \
         {fast_ms:.1} ms vs {exact_ms:.1} ms full scan",
        100.0 * fast.pruned as f64 / n_rows as f64,
    );

    // --- Approximate mean with a table of means ------------------------
    let (exact_mean, mean_ms) = time_ms(|| column.exact_mean());
    let (approx, approx_ms) = time_ms(|| approximate_mean(&column));
    println!("\nmean reading:");
    println!("  exact        {exact_mean:.4}  ({mean_ms:.1} ms, 256-entry dictionary lookups)");
    println!(
        "  approximate  {:.4} ± {:.4}  ({approx_ms:.1} ms, 16-entry table of means, 8-bit SIMD)",
        approx.value, approx.error_bound
    );
    assert!(
        (approx.value - exact_mean).abs() <= approx.error_bound,
        "error bound must hold"
    );
    println!(
        "  |error| = {:.4} (within the guaranteed bound)",
        (approx.value - exact_mean).abs()
    );
}

use std::fmt;

/// Errors reported by the IVFADC index.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IvfError {
    /// Invalid build configuration.
    Config(String),
    /// Vector dimensionality mismatch.
    DimMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending length.
        actual: usize,
    },
    /// Coarse-quantizer training failure.
    Coarse(pqfs_kmeans::KMeansError),
    /// Product-quantizer failure.
    Pq(pqfs_core::PqError),
    /// Scan-layer failure.
    Scan(pqfs_scan::ScanError),
    /// A single partition scan failed during multi-probe search (injected
    /// fault, caught panic, or backend failure). Multi-probe search reports
    /// this per-probe through [`crate::SearchHealth`] and only returns it
    /// when *every* probe failed.
    Probe {
        /// The partition whose scan failed.
        partition: usize,
        /// What went wrong (stringified: the error must stay `Clone`).
        message: String,
    },
}

impl fmt::Display for IvfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IvfError::Config(msg) => write!(f, "invalid IVFADC configuration: {msg}"),
            IvfError::DimMismatch { expected, actual } => {
                write!(
                    f,
                    "vector has {actual} values, expected dimensionality {expected}"
                )
            }
            IvfError::Coarse(e) => write!(f, "coarse quantizer training failed: {e}"),
            IvfError::Pq(e) => write!(f, "product quantizer failed: {e}"),
            IvfError::Scan(e) => write!(f, "scan failed: {e}"),
            IvfError::Probe { partition, message } => {
                write!(f, "scan of partition {partition} failed: {message}")
            }
        }
    }
}

impl std::error::Error for IvfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IvfError::Coarse(e) => Some(e),
            IvfError::Pq(e) => Some(e),
            IvfError::Scan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pqfs_kmeans::KMeansError> for IvfError {
    fn from(e: pqfs_kmeans::KMeansError) -> Self {
        IvfError::Coarse(e)
    }
}

impl From<pqfs_core::PqError> for IvfError {
    fn from(e: pqfs_core::PqError) -> Self {
        IvfError::Pq(e)
    }
}

impl From<pqfs_scan::ScanError> for IvfError {
    fn from(e: pqfs_scan::ScanError) -> Self {
        IvfError::Scan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        use std::error::Error;
        let e = IvfError::Coarse(pqfs_kmeans::KMeansError::EmptyInput);
        assert!(e.to_string().contains("coarse"));
        assert!(e.source().is_some());
        assert!(IvfError::Config("bad".into()).source().is_none());
    }
}

//! Fixture: everything in order.
#![deny(unsafe_op_in_unsafe_fn)]

/// # Safety
///
/// `p` must point to a readable byte.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller contract guarantees `p` is readable.
    unsafe { *p }
}

pub fn observe() {
    let _counter = LazyCounter::new("pqfs_good_total");
    let _static_site = check("good.site");
    let _dynamic_site = check("dyn.prefix.part0");
}

pub fn sanctioned() -> i32 {
    // pqfs-lint: allow(forbidden-panic)
    Some(1).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(2).unwrap();
    }
}

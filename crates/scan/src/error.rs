use std::fmt;

/// Errors reported by the scan implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// A scan kernel requires the paper's `PQ 8×8` shape.
    NeedsPq8x8 {
        /// Components per code found.
        m: usize,
        /// Centroids per sub-quantizer found.
        ksub: usize,
    },
    /// `group_components` outside the supported `0..=4` range.
    BadGroupComponents {
        /// Requested number of grouping components.
        c: usize,
    },
    /// Distance tables and code layout disagree on `m`.
    TableCodeMismatch {
        /// `m` of the distance tables.
        table_m: usize,
        /// `m` of the code layout.
        code_m: usize,
    },
    /// The requested SIMD kernel is not supported by the running CPU.
    KernelUnavailable {
        /// Human-readable kernel name.
        kernel: &'static str,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::NeedsPq8x8 { m, ksub } => write!(
                f,
                "this scan requires PQ 8x8 codes (m=8, ksub=256), got m={m}, ksub={ksub}"
            ),
            ScanError::BadGroupComponents { c } => {
                write!(f, "group_components must be in 0..=4, got {c}")
            }
            ScanError::TableCodeMismatch { table_m, code_m } => {
                write!(
                    f,
                    "distance tables have m={table_m} but codes have m={code_m}"
                )
            }
            ScanError::KernelUnavailable { kernel } => {
                write!(f, "SIMD kernel '{kernel}' is not supported by this CPU")
            }
        }
    }
}

impl std::error::Error for ScanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        assert!(ScanError::NeedsPq8x8 { m: 4, ksub: 16 }
            .to_string()
            .contains("m=4"));
        assert!(ScanError::BadGroupComponents { c: 9 }
            .to_string()
            .contains('9'));
        assert!(ScanError::KernelUnavailable { kernel: "ssse3" }
            .to_string()
            .contains("ssse3"));
    }
}

//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the index).
//!
//! All binaries accept two environment variables:
//!
//! * `PQFS_SCALE` — multiplier on the default workload sizes (default `1`,
//!   where partition 0 holds 500 000 vectors = Table 3's 25 M ÷ 50). Raise
//!   it on beefy machines to approach the paper's regime.
//! * `PQFS_QUERIES` — queries per measurement point (default varies per
//!   experiment).
//!
//! Workloads are synthetic SIFT-like mixtures (see `pqfs-data`); DESIGN.md
//! documents why this substitution preserves the paper's effects.

#![forbid(unsafe_code)]

use pqfs_core::{DistanceTables, PqConfig, ProductQuantizer, RowMajorCodes};
use pqfs_data::{SyntheticConfig, SyntheticDataset};
use pqfs_ivf::{IvfadcConfig, IvfadcIndex};

/// SIFT dimensionality used throughout the evaluation.
pub const DIM: usize = 128;

/// Paper Table 3 partition sizes (vectors, millions) for ANN_SIFT100M1.
pub const TABLE3_SIZES_M: [f64; 8] = [25.0, 3.4, 11.0, 11.0, 11.0, 11.0, 4.0, 23.0];

/// Paper Table 3 query routing counts.
pub const TABLE3_QUERIES: [usize; 8] = [2595, 307, 1184, 1032, 1139, 1036, 390, 2317];

/// Reads a float environment variable.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Reads an integer environment variable.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The global workload scale (`PQFS_SCALE`).
pub fn scale() -> f64 {
    env_f64("PQFS_SCALE", 1.0)
}

/// Scaled Table 3 partition sizes: paper sizes ÷ 25 × `PQFS_SCALE`
/// (1 000 000 vectors for partition 0 at scale 1).
pub fn scaled_partition_sizes() -> Vec<usize> {
    TABLE3_SIZES_M
        .iter()
        .map(|&m| ((m * 1e6 / 25.0) * scale()).round().max(1000.0) as usize)
        .collect()
}

/// A trained quantizer plus its data source, shared by the binaries.
pub struct Fixture {
    /// The trained (and index-optimized) `PQ 8×8` quantizer.
    pub pq: ProductQuantizer,
    dataset: SyntheticDataset,
}

impl Fixture {
    /// Trains the standard fixture: `PQ 8×8` over 128-d synthetic SIFT-like
    /// vectors, with the §4.3 optimized assignment applied.
    pub fn train(seed: u64) -> Self {
        let config = SyntheticConfig::sift_like().with_seed(seed);
        let mut dataset = SyntheticDataset::new(&config);
        let train = dataset.sample(12_000);
        let mut pq =
            ProductQuantizer::train(&train, &PqConfig::pq8x8(DIM), seed ^ 0xABCD).expect("train");
        pq.optimize_assignment(16, seed ^ 0x1234)
            .expect("optimize assignment");
        Fixture { pq, dataset }
    }

    /// Trains the fixture *without* the optimized assignment (ablations).
    pub fn train_unoptimized(seed: u64) -> Self {
        let config = SyntheticConfig::sift_like().with_seed(seed);
        let mut dataset = SyntheticDataset::new(&config);
        let train = dataset.sample(12_000);
        let pq =
            ProductQuantizer::train(&train, &PqConfig::pq8x8(DIM), seed ^ 0xABCD).expect("train");
        Fixture { pq, dataset }
    }

    /// Encodes a fresh partition of `n` vectors (parallel on the shared
    /// pool).
    pub fn partition(&mut self, n: usize) -> RowMajorCodes {
        let base = self.dataset.sample(n);
        self.pq.encode_batch_parallel(&base).expect("encode")
    }

    /// Draws `count` fresh queries (row-major).
    pub fn queries(&mut self, count: usize) -> Vec<f32> {
        self.dataset.sample(count)
    }

    /// Distance tables for one query.
    pub fn tables(&self, query: &[f32]) -> DistanceTables {
        DistanceTables::compute(&self.pq, query).expect("tables")
    }
}

/// Builds a self-contained synthetic IVFADC index for the parallel-scaling
/// harnesses (`scaling` bin, `batch_qps` bench): `n` SIFT-like 128-d base
/// vectors over `partitions` cells, plus `queries` query vectors drawn from
/// the same distribution.
pub fn synthetic_index(
    n: usize,
    partitions: usize,
    queries: usize,
    seed: u64,
) -> (IvfadcIndex, Vec<f32>) {
    let config = SyntheticConfig::sift_like().with_seed(seed);
    let mut dataset = SyntheticDataset::new(&config);
    let train = dataset.sample(10_000.min(n.max(2_000)));
    let base = dataset.sample(n);
    let index = IvfadcIndex::build(
        &train,
        &base,
        &IvfadcConfig::new(DIM, partitions).with_seed(seed),
    )
    .expect("synthetic index build");
    let queries = dataset.sample(queries);
    (index, queries)
}

/// Prints the standard experiment header.
pub fn header(id: &str, paper_ref: &str, params: &str) {
    println!("==================================================================");
    println!("experiment {id}  (paper: {paper_ref})");
    println!("params: {params}");
    println!("host: {} | scale: {}", host_description(), scale());
    println!("==================================================================");
}

/// Short description of the running host (the Table 5 substitute).
pub fn host_description() -> String {
    let arch = std::env::consts::ARCH;
    #[cfg(target_arch = "x86_64")]
    {
        let ssse3 = std::arch::is_x86_feature_detected!("ssse3");
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        format!("{arch} (ssse3={ssse3}, avx2={avx2})")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        arch.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sizes_preserve_table3_ratios() {
        let sizes = scaled_partition_sizes();
        assert_eq!(sizes.len(), 8);
        // Partition 0 : partition 1 ratio must match 25 : 3.4.
        let ratio = sizes[0] as f64 / sizes[1] as f64;
        assert!((ratio - 25.0 / 3.4).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn env_readers_fall_back_to_defaults() {
        assert_eq!(env_usize("PQFS_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_f64("PQFS_DOES_NOT_EXIST", 0.25), 0.25);
    }

    #[test]
    fn fixture_produces_consistent_partitions() {
        let mut fx = Fixture::train(100);
        let codes = fx.partition(2_000);
        assert_eq!(codes.len(), 2_000);
        assert_eq!(codes.m(), 8);
        let q = fx.queries(1);
        let tables = fx.tables(&q);
        assert_eq!(tables.m(), 8);
        assert_eq!(tables.ksub(), 256);
    }
}

//! Criterion benchmark of telemetry overhead on the hot query path.
//!
//! Runs the same `search_batch_on` workload as `batch_qps` twice — once
//! with the global metrics registry enabled (the default) and once with
//! recording disabled via [`pqfs_obs::set_enabled`] — so the cost of the
//! sharded counters and histograms on the paper's throughput path is one
//! comparison away. The budget is <2%: the single-probe path records a
//! handful of relaxed atomics per *query* (never per scanned vector), so
//! the two variants should be statistically indistinguishable.
//!
//! A third variant times the traced multi-probe entry point, quantifying
//! what a `query --trace` waterfall costs relative to the untraced path.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqfs_bench::{synthetic_index, DIM};
use pqfs_ivf::SearchBackend;
use pqfs_pool::ThreadPool;

const QUERIES: usize = 64;
const THREADS: usize = 4;

fn bench_obs_overhead(c: &mut Criterion) {
    let (index, queries) = synthetic_index(20_000, 8, QUERIES, 42);
    let pool = ThreadPool::new(THREADS);

    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(QUERIES as u64));
    for (label, enabled) in [("telemetry_on", true), ("telemetry_off", false)] {
        group.bench_function(BenchmarkId::new("search_batch", label), |b| {
            pqfs_obs::set_enabled(enabled);
            b.iter(|| {
                index
                    .search_batch_on(&queries, 100, SearchBackend::FastScan, 0.005, &pool)
                    .unwrap()
            });
            pqfs_obs::set_enabled(true);
        });
    }
    group.bench_function(BenchmarkId::new("search_probes_x4", "traced"), |b| {
        let mut trace = pqfs_obs::QueryTrace::new();
        b.iter(|| {
            queries
                .chunks_exact(DIM)
                .map(|q| {
                    index
                        .search_probes_traced(
                            q,
                            100,
                            SearchBackend::FastScan,
                            0.005,
                            4,
                            None,
                            &pool,
                            &mut trace,
                        )
                        .unwrap()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

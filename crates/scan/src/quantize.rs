//! Quantization of floating-point distances to 8-bit integers (paper §4.4).
//!
//! Fast Scan shrinks 32-bit distance-table entries to 8 bits so that 16 of
//! them fit a SIMD register. The paper quantizes between a `qmin` bound (the
//! smallest table entry) and a `qmax` bound (the distance to a *temporary*
//! nearest neighbor found by scanning the first `keep%` of the database);
//! everything above `qmax` saturates.
//!
//! Our scheme makes the pruning **provably safe** (DESIGN §3): each table
//! `j` is quantized with its own bias `bias_j = min_i D_j[i]` and a shared
//! step `Δ = (qmax − Σ_j bias_j) / bins`, rounding down:
//!
//! ```text
//! q_j(v) = clamp(⌊(v − bias_j) / Δ⌋, 0, 255)
//! T(t)   = clamp(⌊(t − Σ_j bias_j) / Δ⌋, 0, 255)
//! ```
//!
//! For any code `p` with true distance `d = Σ_j D_j[p_j]` and any small
//! table values `v_j ≤ D_j[p_j]`:
//! `Σ_j q_j(v_j) ≤ (d − Σ_j bias_j)/Δ`, so `sat_sum_j q_j(v_j) > T(t)`
//! implies `d > t` — a pruned vector can never belong to the exact top-k.
//! Saturating adds (cap 255) only lower the left side, preserving safety.
//!
//! `bins` defaults to [`DEFAULT_BINS`] = 254, using the full unsigned byte
//! range (the SSE2 `min_epu8`/`cmpeq` trick gives us unsigned comparisons);
//! `bins = 126` reproduces the paper's signed-range variant and is exposed
//! for the ablation study.

use pqfs_core::DistanceTables;

/// Default number of quantization bins (full unsigned-byte range).
pub const DEFAULT_BINS: u16 = 254;

/// The paper's bin count (positive range of a signed byte, §4.4).
pub const PAPER_BINS: u16 = 126;

/// Sentinel threshold meaning "prune nothing": no saturated 8-bit sum can
/// exceed it.
pub const NO_PRUNE: u8 = u8::MAX;

/// Per-query quantizer mapping float distances to bytes.
#[derive(Debug, Clone)]
pub struct DistanceQuantizer {
    biases: Vec<f32>,
    bias_sum: f32,
    inv_delta: f32,
    qmax: f32,
    bins: u16,
}

impl DistanceQuantizer {
    /// Builds a quantizer for one query's distance tables.
    ///
    /// `qmax` is the distance of the temporary nearest neighbor (or
    /// [`DistanceTables::max_sum`] when no warm-up ran). `bins` is clamped
    /// into `1..=254` so an exact-`qmax` threshold is still representable
    /// below the [`NO_PRUNE`] sentinel.
    pub fn new(tables: &DistanceTables, qmax: f32, bins: u16) -> Self {
        let bins = bins.clamp(1, 254);
        let biases = tables.per_table_min();
        let bias_sum: f32 = biases.iter().sum();
        let span = qmax - bias_sum;
        let inv_delta = if qmax.is_finite() && span > 0.0 {
            bins as f32 / span
        } else {
            // Degenerate tables (all entries equal) or an unusable qmax:
            // quantize everything to 0 and never prune.
            0.0
        };
        DistanceQuantizer {
            biases,
            bias_sum,
            inv_delta,
            qmax,
            bins,
        }
    }

    /// Number of distance tables covered.
    pub fn m(&self) -> usize {
        self.biases.len()
    }

    /// The configured bin count.
    pub fn bins(&self) -> u16 {
        self.bins
    }

    /// The `qmax` bound this quantizer was built with.
    pub fn qmax(&self) -> f32 {
        self.qmax
    }

    /// Quantizes one entry of table `j` (rounding down — the lower-bound
    /// direction).
    #[inline]
    pub fn quantize_value(&self, j: usize, v: f32) -> u8 {
        let scaled = (v - self.biases[j]) * self.inv_delta;
        // NaN-free by construction (tables are finite); clamp handles the
        // negative case defensively.
        scaled.floor().clamp(0.0, 255.0) as u8
    }

    /// Quantizes a full 256-entry table row (used by the grouped small
    /// tables and by the §5.5 quantization-only variant).
    pub fn quantize_table(&self, j: usize, table: &[f32]) -> Vec<u8> {
        let mut out = Vec::new();
        self.quantize_table_into(j, table, &mut out);
        out
    }

    /// [`quantize_table`](Self::quantize_table) into an existing buffer,
    /// so per-query scratch can be reused without reallocating.
    pub fn quantize_table_into(&self, j: usize, table: &[f32], out: &mut Vec<u8>) {
        out.clear();
        out.extend(table.iter().map(|&v| self.quantize_value(j, v)));
    }

    /// Quantizes the pruning threshold `t` (the current top-k distance).
    /// Returns [`NO_PRUNE`] for an infinite `t` or when quantization is
    /// degenerate.
    #[inline]
    pub fn quantize_threshold(&self, t: f32) -> u8 {
        if !t.is_finite() || self.inv_delta == 0.0 {
            return NO_PRUNE;
        }
        let scaled = ((t - self.bias_sum) * self.inv_delta).floor();
        scaled.clamp(0.0, NO_PRUNE as f32) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables_2x4() -> DistanceTables {
        DistanceTables::from_raw(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], 2, 4)
    }

    #[test]
    fn values_round_down_and_saturate() {
        let t = tables_2x4();
        // bias_sum = 11, qmax = 44, bins = 11 -> delta = 3.
        let q = DistanceQuantizer::new(&t, 44.0, 11);
        assert_eq!(q.quantize_value(0, 1.0), 0); // (1-1)/3 = 0
        assert_eq!(q.quantize_value(0, 3.9), 0); // floor(2.9/3) = 0
        assert_eq!(q.quantize_value(0, 4.0), 1);
        assert_eq!(q.quantize_value(1, 40.0), 10);
        assert_eq!(q.quantize_value(1, 10_000.0), 255, "saturates at byte max");
    }

    #[test]
    fn threshold_of_qmax_is_bins() {
        let t = tables_2x4();
        let q = DistanceQuantizer::new(&t, 44.0, 11);
        assert_eq!(q.quantize_threshold(44.0), 11);
        assert_eq!(q.quantize_threshold(f32::INFINITY), NO_PRUNE);
        assert_eq!(q.quantize_threshold(0.0), 0, "below-minimum clamps to 0");
    }

    #[test]
    fn degenerate_tables_disable_pruning() {
        let flat = DistanceTables::from_raw(vec![5.0; 8], 2, 4);
        let q = DistanceQuantizer::new(&flat, 10.0, DEFAULT_BINS);
        assert_eq!(q.quantize_value(0, 5.0), 0);
        assert_eq!(q.quantize_threshold(10.0), NO_PRUNE);
        let nan_qmax = DistanceQuantizer::new(&flat, f32::INFINITY, DEFAULT_BINS);
        assert_eq!(nan_qmax.quantize_threshold(7.0), NO_PRUNE);
    }

    #[test]
    fn bins_are_clamped() {
        let t = tables_2x4();
        assert_eq!(DistanceQuantizer::new(&t, 44.0, 0).bins(), 1);
        assert_eq!(DistanceQuantizer::new(&t, 44.0, 1000).bins(), 254);
    }

    /// The safety theorem, tested directly: pruning implies the true
    /// distance exceeds the threshold.
    #[test]
    fn pruning_is_safe_for_exhaustive_small_case() {
        let t = tables_2x4();
        for bins in [1u16, 5, 126, 254] {
            for qmax_i in 1..60 {
                let qmax = qmax_i as f32;
                let q = DistanceQuantizer::new(&t, qmax, bins);
                for c0 in 0..4u8 {
                    for c1 in 0..4u8 {
                        let d = t.distance(&[c0, c1]);
                        let sum = q
                            .quantize_value(0, t.table(0)[c0 as usize])
                            .saturating_add(q.quantize_value(1, t.table(1)[c1 as usize]));
                        for t10 in 0..50 {
                            let thresh = t10 as f32;
                            let tq = q.quantize_threshold(thresh);
                            if sum > tq {
                                assert!(
                                    d > thresh,
                                    "unsafe prune: d={d} t={thresh} sum={sum} tq={tq} \
                                     bins={bins} qmax={qmax}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Lower bounds built from per-portion minima are also safe.
    #[test]
    fn pruning_with_minimum_values_is_safe() {
        let t = tables_2x4();
        let q = DistanceQuantizer::new(&t, 44.0, DEFAULT_BINS);
        // Use the table minimum as the small-table value (v_j <= D_j[p_j]).
        let v0 = t.per_table_min()[0];
        let v1 = t.per_table_min()[1];
        let sum = q
            .quantize_value(0, v0)
            .saturating_add(q.quantize_value(1, v1));
        for c0 in 0..4u8 {
            for c1 in 0..4u8 {
                let d = t.distance(&[c0, c1]);
                let thresh = 25.0f32;
                if sum > q.quantize_threshold(thresh) {
                    assert!(d > thresh);
                }
            }
        }
    }
}

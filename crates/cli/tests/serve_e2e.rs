//! End-to-end serving test through the real binary: `pqfs serve` starts
//! on a fixture index, `pqfs bench-client` drives load with zero errors,
//! SIGTERM drains and exits 0, and `--metrics-out` captures the server
//! counters on shutdown.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

/// Scratch directory for one test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pqfs-serve-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pqfs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pqfs"))
        .args(args)
        .output()
        .expect("pqfs binary runs")
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn build_fixture(tag: &str) -> (TempDir, String) {
    let dir = TempDir::new(tag);
    let base = dir.path("base.fvecs");
    let index = dir.path("ix.pqiv");
    assert_success(
        &pqfs(&[
            "gen", "--out", &base, "--n", "2000", "--dim", "16", "--seed", "3",
        ]),
        "gen base",
    );
    assert_success(
        &pqfs(&[
            "build",
            "--base",
            &base,
            "--out",
            &index,
            "--partitions",
            "4",
            "--threads",
            "2",
        ]),
        "build",
    );
    (dir, index)
}

/// Spawns `pqfs serve` on an ephemeral port and returns the child plus
/// the address it reported in its readiness line.
fn spawn_serve(index: &str, metrics_out: &str) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pqfs"))
        .args([
            "serve",
            "--index",
            index,
            "--addr",
            "127.0.0.1:0",
            "--metrics-out",
            metrics_out,
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints a readiness line before EOF")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().to_string();
        }
    };
    (child, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "SIGTERM delivered");
}

#[test]
fn serve_answers_load_then_drains_on_sigterm() {
    let (dir, index) = build_fixture("load");
    let metrics = dir.path("metrics.json");
    let (mut child, addr) = spawn_serve(&index, &metrics);

    // Load with zero tolerated failures, mixing single and batch frames.
    let single = pqfs(&[
        "bench-client",
        "--addr",
        &addr,
        "--n",
        "60",
        "--batch",
        "1",
        "--topk",
        "5",
    ]);
    assert_success(&single, "bench-client batch=1");
    let batched = pqfs(&[
        "bench-client",
        "--addr",
        &addr,
        "--n",
        "120",
        "--batch",
        "8",
        "--connections",
        "2",
        "--topk",
        "5",
    ]);
    assert_success(&batched, "bench-client batch=8");
    for (out, what) in [(&single, "single"), (&batched, "batched")] {
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with('{'))
            .unwrap_or_else(|| panic!("{what}: no JSON line in: {stdout}"));
        assert!(
            line.contains("\"errors\": 0"),
            "{what} reports zero errors: {line}"
        );
        assert!(line.contains("\"qps\":"), "{what} reports qps: {line}");
    }

    // SIGTERM must drain and exit 0.
    sigterm(&child);
    let status = child.wait().expect("serve exits");
    assert_eq!(status.code(), Some(0), "clean drain exits 0");

    // --metrics-out was honored on shutdown and carries server metrics.
    let text = std::fs::read_to_string(&metrics).expect("metrics written on shutdown");
    #[cfg(feature = "telemetry")]
    {
        let snapshot = pqfs_obs::jsonv::parse(&text).expect("metrics parse as JSON");
        let counters = snapshot
            .get("counters")
            .and_then(pqfs_obs::jsonv::Value::as_object)
            .expect("counters object");
        let sum_of = |name: &str| -> u64 {
            counters
                .iter()
                .filter(|(k, _)| *k == name || k.starts_with(&format!("{name}{{")))
                .filter_map(|(_, v)| v.as_u64())
                .sum()
        };
        assert!(
            sum_of("pqfs_server_connections_total") >= 3,
            "every bench connection counted"
        );
        // 60 single + 2×(120/8 rounded up per worker) batch frames.
        assert!(sum_of("pqfs_server_requests_total") >= 60);
        assert!(sum_of("pqfs_server_batches_total") > 0);
        assert_eq!(
            sum_of("pqfs_server_shed_total"),
            0,
            "no shed under light load"
        );
    }
    #[cfg(not(feature = "telemetry"))]
    assert!(!text.is_empty());
    drop(dir);
}

#[test]
fn serve_rejects_bad_flags_and_missing_index() {
    let out = pqfs(&["serve", "--addr", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(1), "--index is required");
    let out = pqfs(&["serve", "--index", "/nonexistent/ix.pqiv"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing artifact is a load error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn help_documents_the_serving_commands_and_exit_codes() {
    let out = pqfs(&["help"]);
    assert_success(&out, "help");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "pqfs serve",
        "pqfs bench-client",
        "--max-batch",
        "--linger-us",
        "--queue",
        "Overloaded",
        "EXIT CODES",
        "artifact load failure",
    ] {
        assert!(
            text.contains(needle),
            "help must mention '{needle}':\n{text}"
        );
    }
}

#[test]
fn bench_client_fails_fast_when_nothing_listens() {
    // A port from the ephemeral range with (almost certainly) no listener;
    // connect must fail with exit 1, not hang.
    let out = pqfs(&["bench-client", "--addr", "127.0.0.1:1", "--n", "1"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "unreachable server is a plain error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

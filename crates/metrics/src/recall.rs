//! Recall metrics for approximate nearest-neighbor results.
//!
//! The paper does not re-measure PQ accuracy (Fast Scan returns the exact
//! PQ Scan results), but the IVFADC pipeline tests and examples report
//! recall against brute-force ground truth, as \[14\] does.

/// Recall@R for one query: 1 if the true nearest neighbor appears among the
/// first `r` returned ids, else 0.
pub fn recall_at_r(true_nn: u64, returned: &[u64], r: usize) -> f64 {
    if returned.iter().take(r).any(|&id| id == true_nn) {
        1.0
    } else {
        0.0
    }
}

/// Mean Recall@R over a batch: `true_nns[i]` is the exact nearest neighbor
/// of query `i`, `returned[i]` its (ordered) approximate result list.
///
/// # Panics
///
/// Panics if the two batches have different lengths or are empty.
pub fn mean_recall_at_r(true_nns: &[u64], returned: &[Vec<u64>], r: usize) -> f64 {
    assert_eq!(true_nns.len(), returned.len(), "batch length mismatch");
    assert!(!true_nns.is_empty(), "empty batch");
    let hits: f64 = true_nns
        .iter()
        .zip(returned)
        .map(|(&nn, res)| recall_at_r(nn, res, r))
        .sum();
    hits / true_nns.len() as f64
}

/// Set-intersection recall: fraction of the exact top-k present in the
/// approximate top-k (order-insensitive).
///
/// # Panics
///
/// Panics if `exact` is empty.
pub fn intersection_recall(exact: &[u64], approx: &[u64]) -> f64 {
    assert!(!exact.is_empty(), "empty ground truth");
    let set: std::collections::HashSet<u64> = approx.iter().copied().collect();
    let hits = exact.iter().filter(|id| set.contains(id)).count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_at_r_respects_cutoff() {
        let returned = vec![5, 3, 9];
        assert_eq!(recall_at_r(3, &returned, 1), 0.0);
        assert_eq!(recall_at_r(3, &returned, 2), 1.0);
        assert_eq!(recall_at_r(7, &returned, 3), 0.0);
    }

    #[test]
    fn mean_recall_averages() {
        let truth = vec![1u64, 2, 3, 4];
        let results = vec![vec![1, 9], vec![9, 2], vec![9, 9], vec![4, 9]];
        assert_eq!(mean_recall_at_r(&truth, &results, 1), 0.5);
        assert_eq!(mean_recall_at_r(&truth, &results, 2), 0.75);
    }

    #[test]
    fn intersection_recall_is_order_insensitive() {
        assert_eq!(intersection_recall(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(intersection_recall(&[1, 2, 3, 4], &[1, 9, 3, 8]), 0.5);
        assert_eq!(intersection_recall(&[1], &[]), 0.0);
    }
}

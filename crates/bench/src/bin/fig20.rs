//! Figure 20 — the large-scale experiment (scaled ANN_SIFT1B, 128
//! partitions): mean response time, memory use, and scan speed across
//! kernel back-ends (the Table 5 multi-platform substitute, DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig20
//! SCALE: PQFS_SCALE=4 cargo run --release -p pqfs-bench --bin fig20
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, host_description, scale, Fixture, DIM};
use pqfs_data::{SyntheticConfig, SyntheticDataset};
use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
use pqfs_metrics::{fmt_count, fmt_f, mvecs_per_sec, time_ms, Summary, TextTable};
use pqfs_scan::{Backend, Kernel, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let n_base = (2_000_000.0 * scale()) as usize;
    let n_queries = env_usize("PQFS_QUERIES", 50);
    header(
        "fig20",
        "Figure 20 / Table 5, §5.7-5.8",
        &format!("base {n_base}, 128 partitions, keep 1%, topk 100, {n_queries} queries"),
    );

    // ---- SIFT1B-style IVFADC (scaled). ---------------------------------
    let mut dataset = SyntheticDataset::new(&SyntheticConfig::sift_like().with_seed(20));
    let train = dataset.sample(20_000);
    let base = dataset.sample(n_base);
    let queries = dataset.sample(n_queries);
    let index = IvfadcIndex::build(&train, &base, &IvfadcConfig::new(DIM, 128).with_seed(11))
        .expect("build");

    let run = |backend: SearchBackend, keep: f64| -> Summary {
        let times: Vec<f64> = queries
            .chunks_exact(DIM)
            .map(|q| time_ms(|| index.search(q, 100, backend, keep).expect("search")).1)
            .collect();
        Summary::from_values(&times)
    };
    let slow = run(SearchBackend::Libpq, 0.0);
    let fast = run(SearchBackend::FastScan, 0.01);

    println!("mean response time (scaled SIFT1B):");
    let mut t = TextTable::new(vec!["backend", "mean [ms]", "median [ms]"]);
    t.row(vec![
        "libpq".to_string(),
        fmt_f(slow.mean(), 2),
        fmt_f(slow.median(), 2),
    ]);
    t.row(vec![
        "fastpq".to_string(),
        fmt_f(fast.mean(), 2),
        fmt_f(fast.median(), 2),
    ]);
    t.row(vec![
        "speedup".to_string(),
        fmt_f(slow.mean() / fast.mean(), 1),
        String::new(),
    ]);
    println!("{t}");

    let row_bytes = index.code_memory_bytes(SearchBackend::Libpq);
    let packed_bytes = index.code_memory_bytes(SearchBackend::FastScan);
    println!("memory use (codes):");
    let mut m = TextTable::new(vec!["layout", "bytes", "GiB-equivalent at 1B vectors"]);
    let gib_at_1b = |bytes: usize| bytes as f64 / n_base as f64 * 1e9 / (1u64 << 30) as f64;
    m.row(vec![
        "libpq (row-major)".to_string(),
        fmt_count(row_bytes as u64),
        fmt_f(gib_at_1b(row_bytes), 2),
    ]);
    m.row(vec![
        "fastpq (grouped)".to_string(),
        fmt_count(packed_bytes as u64),
        fmt_f(gib_at_1b(packed_bytes), 2),
    ]);
    println!("{m}");

    // ---- Scan speed across kernel back-ends (platform substitute). -----
    println!("scan speed by kernel back-end on {} :", host_description());
    let mut fx = Fixture::train(20);
    let codes = Arc::new(fx.partition((1_000_000.0 * scale()) as usize));
    let mut k = TextTable::new(vec!["backend", "speed [M vecs/s]", "vs libpq"]);
    let q = fx.queries(5);
    let params = ScanParams::new(100).with_keep(0.005);

    // libpq reference.
    let libpq = Backend::Libpq
        .scanner(&ScanOpts::default())
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    let mut libpq_speeds = Vec::new();
    for q in q.chunks_exact(DIM) {
        let tables = fx.tables(q);
        let (_, ms) = time_ms(|| libpq.scan(&tables, &params).unwrap());
        libpq_speeds.push(mvecs_per_sec(codes.len(), ms));
    }
    let libpq_speed = Summary::from_values(&libpq_speeds).median();
    k.row(vec![
        "libpq (scalar)".to_string(),
        fmt_f(libpq_speed, 0),
        "1.0x".to_string(),
    ]);

    for (name, kernel) in [
        ("fastpq portable", Kernel::Portable),
        ("fastpq ssse3", Kernel::Ssse3),
        ("fastpq avx2", Kernel::Avx2),
    ] {
        let opts = ScanOpts::default().with_kernel(kernel);
        let index = match Backend::FastScan.scanner(&opts).prepare(Arc::clone(&codes)) {
            Ok(i) => i,
            Err(_) => continue,
        };
        let mut speeds = Vec::new();
        let mut ok = true;
        for q in q.chunks_exact(DIM) {
            let tables = fx.tables(q);
            match time_ms(|| index.scan(&tables, &params)) {
                (Ok(_), ms) => speeds.push(mvecs_per_sec(codes.len(), ms)),
                (Err(_), _) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && !speeds.is_empty() {
            let s = Summary::from_values(&speeds).median();
            k.row(vec![
                name.to_string(),
                fmt_f(s, 0),
                format!("{:.1}x", s / libpq_speed),
            ]);
        } else {
            k.row(vec![
                name.to_string(),
                "unavailable".to_string(),
                String::new(),
            ]);
        }
    }
    println!("{k}");
    println!(
        "paper shape: fastpq mean response ~12 ms vs ~58 ms for libpq on SIFT1B \
         (4-6x), memory 8 GiB -> 6 GiB thanks to grouping, and the 4-6x ratio \
         holds across four CPU generations (Table 5) — here across back-ends."
    );
}

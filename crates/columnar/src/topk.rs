//! Fast top-k over compressed columns with in-register **maximum tables**
//! (paper §6: "To compute upper bounds instead of lower bounds, maximum
//! tables can be used instead of minimum tables").
//!
//! The scan mirrors PQ Fast Scan's structure for a single column: a
//! 16-entry small table holds the quantized *maximum* of each dictionary
//! portion; one `pshufb` per 16 rows yields upper bounds on their values;
//! rows whose bound cannot reach the current k-th best are pruned without
//! touching the 256-entry dictionary.

use crate::column::CompressedColumn;
use crate::dict::PORTION;

/// Result of a fast top-k scan.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// `(row, value)` pairs, descending value, ascending-row tie-break.
    pub items: Vec<(u32, f32)>,
    /// Rows pruned by the upper-bound test.
    pub pruned: u64,
    /// Rows whose exact value was computed.
    pub verified: u64,
}

/// Upper-bound quantizer: rounds **up** so bounds stay valid after
/// quantization.
#[derive(Debug, Clone, Copy)]
struct UpQuantizer {
    bias: f32,
    inv_delta: f32,
}

impl UpQuantizer {
    fn new(min: f32, max: f32) -> Self {
        let span = max - min;
        let inv_delta = if span > 0.0 { 254.0 / span } else { 0.0 };
        UpQuantizer {
            bias: min,
            inv_delta,
        }
    }

    /// Quantized upper bound of a value (ceil).
    #[inline]
    fn up(&self, v: f32) -> u8 {
        ((v - self.bias) * self.inv_delta).ceil().clamp(0.0, 255.0) as u8
    }

    /// Quantized threshold (floor): `up(v) < down(t)` implies `v < t`.
    #[inline]
    fn down(&self, t: f32) -> u8 {
        if self.inv_delta == 0.0 {
            return 0; // disables pruning: no bound is < 0
        }
        ((t - self.bias) * self.inv_delta).floor().clamp(0.0, 255.0) as u8
    }
}

/// Bounded "k largest" collector with (value desc, row asc) ordering.
#[derive(Debug)]
struct TopMax {
    // Min-heap over (value, Reverse(row)): the root is the *worst* kept item.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapKey>>,
    k: usize,
}

#[derive(Debug, PartialEq)]
struct HeapKey {
    value: f32,
    row: u32,
}

impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Larger value is better; on ties, the smaller row is better.
        self.value
            .total_cmp(&other.value)
            .then_with(|| other.row.cmp(&self.row))
    }
}

impl TopMax {
    fn new(k: usize) -> Self {
        TopMax {
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Value of the current k-th best (threshold), or `-∞` while filling.
    fn threshold(&self) -> f32 {
        if self.is_full() {
            self.heap
                .peek()
                .map(|e| e.0.value)
                .unwrap_or(f32::NEG_INFINITY)
        } else {
            f32::NEG_INFINITY
        }
    }

    fn push(&mut self, value: f32, row: u32) -> bool {
        let key = HeapKey { value, row };
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(key));
            return true;
        }
        if let Some(worst) = self.heap.peek() {
            if key > worst.0 {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse(key));
                return true;
            }
        }
        false
    }

    fn into_sorted(self) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = self
            .heap
            .into_iter()
            .map(|e| (e.0.row, e.0.value))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Fast top-k-largest scan; returns exactly [`CompressedColumn::topk_max_exact`]
/// while pruning most dictionary lookups.
pub fn topk_max_fast(column: &CompressedColumn, k: usize) -> TopKResult {
    let dict = column.dict();
    let codes = column.codes();
    if k == 0 || codes.is_empty() {
        return TopKResult {
            items: Vec::new(),
            pruned: 0,
            verified: 0,
        };
    }
    let values = dict.values();
    let quant = UpQuantizer::new(
        values[0],
        *values
            .last()
            .unwrap_or_else(|| unreachable!("dictionary is never empty")),
    );

    // The §6 maximum table, quantized upward.
    let maxima = dict.portion_maxima();
    let mut qmax = [0u8; PORTION];
    for (slot, &m) in qmax.iter_mut().zip(maxima.iter()) {
        *slot = quant.up(m);
    }

    let mut heap = TopMax::new(k);
    let mut pruned = 0u64;
    let mut verified = 0u64;
    let mut threshold = quant.down(heap.threshold());

    let mut process = |row: usize, heap: &mut TopMax, threshold: &mut u8| {
        verified += 1;
        if heap.push(dict.decode(codes[row]), row as u32) {
            *threshold = if heap.is_full() {
                quant.down(heap.threshold())
            } else {
                0
            };
        }
    };

    let mut idx = 0usize;
    let chunks = codes.chunks_exact(PORTION);
    let remainder_start = codes.len() - chunks.remainder().len();
    for chunk in chunks {
        let mask = block_candidates(chunk, &qmax, threshold);
        let hits = mask.count_ones() as u64;
        pruned += PORTION as u64 - hits;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            process(idx + lane, &mut heap, &mut threshold);
        }
        idx += PORTION;
    }
    for row in remainder_start..codes.len() {
        let bound = qmax[(codes[row] >> 4) as usize];
        if bound < threshold {
            pruned += 1;
        } else {
            process(row, &mut heap, &mut threshold);
        }
    }

    TopKResult {
        items: heap.into_sorted(),
        pruned,
        verified,
    }
}

/// Candidate mask of 16 codes: bit set when the quantized upper bound is
/// `>= threshold` (dispatches to SSSE3 when available).
#[inline]
fn block_candidates(chunk: &[u8], qmax: &[u8; PORTION], threshold: u8) -> u16 {
    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            // SAFETY: feature detected; chunk has 16 bytes by construction.
            return unsafe { block_candidates_ssse3(chunk, qmax, threshold) };
        }
    }
    block_candidates_portable(chunk, qmax, threshold)
}

fn block_candidates_portable(chunk: &[u8], qmax: &[u8; PORTION], threshold: u8) -> u16 {
    let mut mask = 0u16;
    for (lane, &code) in chunk.iter().enumerate() {
        if qmax[(code >> 4) as usize] >= threshold {
            mask |= 1 << lane;
        }
    }
    mask
}

/// # Safety
///
/// The caller must verify SSSE3 support at runtime
/// (`is_x86_feature_detected!("ssse3")`) and pass a `chunk` of at least 16
/// bytes.
#[cfg(all(target_arch = "x86_64", feature = "avx2"))]
#[target_feature(enable = "ssse3")]
unsafe fn block_candidates_ssse3(chunk: &[u8], qmax: &[u8; PORTION], threshold: u8) -> u16 {
    use std::arch::x86_64::*;
    debug_assert!(chunk.len() >= PORTION, "chunk shorter than one block");
    // SAFETY: `qmax` is a `[u8; 16]` — the unaligned 128-bit load stays in
    // bounds.
    let table = unsafe { _mm_loadu_si128(qmax.as_ptr() as *const __m128i) };
    // SAFETY: `chunk` has at least 16 bytes (caller contract, asserted
    // above) — the unaligned 128-bit load stays in bounds.
    let codes = unsafe { _mm_loadu_si128(chunk.as_ptr() as *const __m128i) };
    let low = _mm_set1_epi8(0x0F);
    let idx = _mm_and_si128(_mm_srli_epi16::<4>(codes), low);
    let bounds = _mm_shuffle_epi8(table, idx);
    // Unsigned bounds >= t as max(bounds, t) == bounds.
    let tvec = _mm_set1_epi8(threshold as i8);
    let cand = _mm_cmpeq_epi8(_mm_max_epu8(bounds, tvec), bounds);
    _mm_movemask_epi8(cand) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;

    fn ramp_column(n: usize) -> CompressedColumn {
        let data: Vec<f32> = (0..n).map(|i| ((i * 131 + 17) % 10_007) as f32).collect();
        CompressedColumn::compress(&data, 256)
    }

    #[test]
    fn fast_topk_equals_exact_topk() {
        let col = ramp_column(5000);
        for k in [1usize, 5, 17, 100] {
            let exact = col.topk_max_exact(k);
            let fast = topk_max_fast(&col, k);
            assert_eq!(fast.items, exact, "k={k}");
        }
    }

    #[test]
    fn fast_topk_prunes_most_rows() {
        let col = ramp_column(20_000);
        let result = topk_max_fast(&col, 10);
        let frac = result.pruned as f64 / col.len() as f64;
        assert!(frac > 0.8, "pruning fraction {frac:.3} too low");
        assert_eq!(result.pruned + result.verified, col.len() as u64);
    }

    #[test]
    fn ragged_tail_is_scanned() {
        // 23 rows: one full block + 7 remainder rows.
        let data: Vec<f32> = (0..23).map(|i| i as f32).collect();
        let col = CompressedColumn::compress(&data, 16);
        let fast = topk_max_fast(&col, 3);
        assert_eq!(fast.items, col.topk_max_exact(3));
    }

    #[test]
    fn constant_column_disables_pruning_but_stays_exact() {
        let dict = Dictionary::new(vec![7.0]);
        let col = CompressedColumn::from_codes(dict, vec![0; 100]);
        let fast = topk_max_fast(&col, 5);
        assert_eq!(fast.items, col.topk_max_exact(5));
        assert_eq!(fast.pruned, 0);
    }

    #[test]
    fn ties_break_toward_smaller_rows() {
        let dict = Dictionary::new(vec![1.0, 9.0]);
        let col = CompressedColumn::from_codes(dict, vec![1, 0, 1, 1, 0]);
        let fast = topk_max_fast(&col, 2);
        assert_eq!(fast.items, vec![(0, 9.0), (2, 9.0)]);
    }

    #[test]
    fn k_zero_and_empty_column() {
        let col = ramp_column(10);
        assert!(topk_max_fast(&col, 0).items.is_empty());
        let empty = CompressedColumn::from_codes(Dictionary::new(vec![1.0]), vec![]);
        assert!(topk_max_fast(&empty, 3).items.is_empty());
    }

    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    #[test]
    fn simd_and_portable_masks_agree() {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            return;
        }
        let mut qmax = [0u8; PORTION];
        for (i, q) in qmax.iter_mut().enumerate() {
            *q = (i * 16 + 3) as u8;
        }
        let chunk: Vec<u8> = (0..16).map(|i| (i * 37 % 256) as u8).collect();
        for t in [0u8, 50, 130, 255] {
            let portable = block_candidates_portable(&chunk, &qmax, t);
            // SAFETY: SSSE3 support checked at the top of the test; the
            // chunk holds 16 bytes.
            let simd = unsafe { block_candidates_ssse3(&chunk, &qmax, t) };
            assert_eq!(portable, simd, "t={t}");
        }
    }
}

//! Criterion microbenchmarks of every scan backend on a fixed partition —
//! the per-vector view of Figures 3 and 14, driven by the backend registry:
//! every `Backend::ALL` entry is measured, so kernels added to the registry
//! show up here automatically.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqfs_bench::Fixture;
use pqfs_scan::{Backend, Kernel, ScanOpts, ScanParams};
use std::sync::Arc;

const N: usize = 131_072;
const TOPK: usize = 100;

fn bench_scans(c: &mut Criterion) {
    let mut fx = Fixture::train(1000);
    let codes = Arc::new(fx.partition(N));
    let opts = ScanOpts::default();
    let query = fx.queries(1);
    let tables = fx.tables(&query);
    let params = ScanParams::new(TOPK).with_keep(0.005);

    let mut group = c.benchmark_group("scan_kernels");
    group.throughput(Throughput::Elements(N as u64));
    for backend in Backend::ALL {
        let scanner = backend
            .scanner(&opts)
            .prepare(Arc::clone(&codes))
            .expect("prepare");
        group.bench_function(BenchmarkId::new(backend.name(), N), |b| {
            b.iter(|| scanner.scan(&tables, &params).unwrap())
        });
    }
    // Fast Scan once more with the portable kernel forced, to expose the
    // SIMD contribution in isolation.
    let portable = Backend::FastScan
        .scanner(&opts.clone().with_kernel(Kernel::Portable))
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    group.bench_function(BenchmarkId::new("fastscan_portable", N), |b| {
        b.iter(|| portable.scan(&tables, &params).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_scans
}
criterion_main!(benches);

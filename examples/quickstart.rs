//! Quickstart: train a product quantizer, build a PQ Fast Scan index, run a
//! query, and verify the result matches plain PQ Scan exactly.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pq_fast_scan::prelude::*;

fn main() {
    let dim = 128;
    println!("== PQ Fast Scan quickstart ==");

    // 1. Synthetic SIFT-like data (ANN_SIFT1B substitute, see DESIGN.md).
    let config = SyntheticConfig::sift_like().with_seed(42);
    let mut dataset = SyntheticDataset::new(&config);
    let train = dataset.sample(5_000);
    let base = dataset.sample(100_000);
    let query = dataset.sample(1);
    println!("dataset: {} base vectors, dim {dim}", base.len() / dim);

    // 2. Train a PQ 8x8 quantizer (the paper's configuration) and apply the
    //    optimized centroid-index assignment (§4.3).
    let mut pq = ProductQuantizer::train(&train, &PqConfig::pq8x8(dim), 7).expect("training");
    pq.optimize_assignment(16, 7).expect("optimized assignment");
    let codes = pq.encode_batch(&base).expect("encoding");
    println!(
        "encoded: {} bytes/vector ({}x compression)",
        pq.config().code_bytes(),
        dim * 4 / pq.config().code_bytes()
    );

    // 3. Build the Fast Scan index: vectors grouped on 4 components,
    //    nibble-packed blocks.
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).expect("index build");
    println!(
        "fast-scan index: {} groups on {} components, {:.2} bytes/vector stored",
        index.num_groups(),
        index.group_components(),
        index.code_memory_bytes() as f64 / index.len() as f64,
    );

    // 4. Query: compute the per-query distance tables (Algorithm 1 step 2),
    //    then scan (step 3).
    let tables = DistanceTables::compute(&pq, &query).expect("tables");
    let params = ScanParams::new(10).with_keep(0.005);

    let (fast, fast_ms) = pq_fast_scan::metrics::time_ms(|| index.scan(&tables, &params));
    let fast = fast.expect("scan");
    // The reference backend comes from the same registry the CLI and the
    // figure binaries use; every `Backend::ALL` entry returns this result.
    let naive = Backend::Naive.scanner(&ScanOpts::default());
    let (slow, slow_ms) =
        pq_fast_scan::metrics::time_ms(|| naive.scan(&tables, &codes, 10).expect("scan"));

    println!("\ntop-10 neighbors (id, squared ADC distance):");
    for n in &fast.neighbors {
        println!("  {:>7}  {:.1}", n.id, n.dist);
    }

    assert_eq!(
        fast.ids(),
        slow.ids(),
        "Fast Scan must equal PQ Scan exactly"
    );
    println!("\nexactness check vs naive PQ Scan: OK");
    println!(
        "pruning power: {:.2}% of distance computations skipped",
        100.0 * fast.stats.pruned_fraction()
    );
    println!(
        "scan time: fast {fast_ms:.2} ms ({:.0} M vecs/s) vs naive {slow_ms:.2} ms ({:.0} M vecs/s)",
        mvecs_per_sec(index.len(), fast_ms),
        mvecs_per_sec(index.len(), slow_ms),
    );
}

//! Binary persistence for a built IVFADC index.
//!
//! Building an index over a large base set costs minutes of training and
//! encoding; serving processes load the finished artifact instead. The
//! format is little-endian and versioned:
//!
//! ```text
//! magic  "PQIV"          4 bytes
//! version u32            currently 1
//! dim     u64
//! partitions u64
//! coarse centroids       partitions × dim × f32
//! embedded quantizer     pqfs-core persist format (length-prefixed, u64)
//! fastscan flag          u8 (1 = rebuild per-partition Fast Scan indexes)
//! per partition:
//!   len   u64
//!   ids   len × u64
//!   codes len × m bytes
//! ```
//!
//! Fast Scan indexes are *rebuilt* on load (grouping is deterministic and
//! costs a small fraction of what decoding the codes from disk does).

use crate::coarse::CoarseQuantizer;
use crate::index::IvfadcIndex;
use pqfs_core::persist::{load_pq, save_pq, PersistError};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PQIV";
const VERSION: u32 = 1;

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl IvfadcIndex {
    /// Writes the index to `w`.
    pub fn save(&self, w: &mut impl Write) -> Result<(), PersistError> {
        let dim = self.coarse().dim();
        let parts = self.num_partitions();
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(dim as u64).to_le_bytes())?;
        w.write_all(&(parts as u64).to_le_bytes())?;
        for p in 0..parts {
            for &v in self.coarse().centroid(p) {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        // Length-prefixed embedded quantizer.
        let mut pq_bytes = Vec::new();
        save_pq(self.pq(), &mut pq_bytes)?;
        w.write_all(&(pq_bytes.len() as u64).to_le_bytes())?;
        w.write_all(&pq_bytes)?;
        w.write_all(&[u8::from(self.has_fastscan())])?;
        for p in 0..parts {
            let (ids, codes) = self.partition_raw(p);
            w.write_all(&(ids.len() as u64).to_le_bytes())?;
            for &id in ids {
                w.write_all(&id.to_le_bytes())?;
            }
            w.write_all(codes.as_bytes())?;
        }
        Ok(())
    }

    /// Reads an index previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// [`PersistError`] on IO failures, bad magic/version, truncation or an
    /// invalid embedded quantizer.
    pub fn load(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format(format!("bad magic {magic:?}")));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(PersistError::Format(format!("unsupported version {version}")));
        }
        let dim = read_u64(r)? as usize;
        let parts = read_u64(r)? as usize;
        if dim == 0 || parts == 0 {
            return Err(PersistError::Format("empty dimension or partition count".into()));
        }
        let mut centroids = vec![0u8; parts * dim * 4];
        r.read_exact(&mut centroids)
            .map_err(|_| PersistError::Format("truncated coarse centroids".into()))?;
        let centroids: Vec<f32> = centroids
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();

        let pq_len = read_u64(r)? as usize;
        let mut pq_bytes = vec![0u8; pq_len];
        r.read_exact(&mut pq_bytes)
            .map_err(|_| PersistError::Format("truncated quantizer".into()))?;
        let pq = load_pq(&mut pq_bytes.as_slice())?;
        if pq.config().dim() != dim {
            return Err(PersistError::Format(format!(
                "quantizer dim {} != index dim {dim}",
                pq.config().dim()
            )));
        }

        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let fastscan = flag[0] != 0;

        let m = pq.config().m();
        let mut partitions = Vec::with_capacity(parts);
        for _ in 0..parts {
            let len = read_u64(r)? as usize;
            let mut ids = Vec::with_capacity(len);
            let mut idbuf = vec![0u8; len * 8];
            r.read_exact(&mut idbuf)
                .map_err(|_| PersistError::Format("truncated partition ids".into()))?;
            ids.extend(
                idbuf
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
            );
            let mut codes = vec![0u8; len * m];
            r.read_exact(&mut codes)
                .map_err(|_| PersistError::Format("truncated partition codes".into()))?;
            partitions.push((ids, codes));
        }

        IvfadcIndex::from_parts(CoarseQuantizer::from_centroids(centroids, dim), pq, partitions, fastscan)
            .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Saves to a file.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Loads from a file.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::load(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IvfadcConfig, SearchBackend};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 16;

    fn build() -> (IvfadcIndex, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(55);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 1000);
        let base = gen(&mut rng, 400);
        let index = IvfadcIndex::build(&train, &base, &IvfadcConfig::new(DIM, 4)).unwrap();
        (index, base)
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let (index, base) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.partition_sizes(), index.partition_sizes());
        for qi in (0..400).step_by(37) {
            let q = &base[qi * DIM..(qi + 1) * DIM];
            for backend in [SearchBackend::Naive, SearchBackend::FastScan] {
                let a = index.search(q, 7, backend, 0.01).unwrap();
                let b = loaded.search(q, 7, backend, 0.01).unwrap();
                let ids = |o: &crate::index::SearchOutcome| {
                    o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
                };
                assert_eq!(ids(&a), ids(&b), "query {qi}");
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let (index, _) = build();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-ivf-{}.pqiv", std::process::id()));
        index.save_file(&path).unwrap();
        let loaded = IvfadcIndex::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), index.len());
    }

    #[test]
    fn rejects_corruption() {
        let (index, _) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'Z';
        assert!(IvfadcIndex::load(&mut bad_magic.as_slice()).is_err());

        let truncated = &buf[..buf.len() / 2];
        assert!(IvfadcIndex::load(&mut &truncated[..]).is_err());
    }
}

//! Scan implementations for PQ nearest-neighbor search: the four PQ Scan
//! baselines the paper analyzes (§3) and **PQ Fast Scan** itself (§4).
//!
//! | Implementation | Paper | Layout | Per-vector work |
//! |---|---|---|---|
//! | [`scan_naive`] | Alg. 1 | row-major | 8 mem1 + 8 mem2 loads, scalar adds |
//! | [`scan_libpq`] | §3.1 | row-major | 1×64-bit mem1 load + shifts, 8 mem2 |
//! | [`scan_avx`] | §3.2 Fig. 4 | transposed | scalar lookups, SIMD vertical adds |
//! | [`scan_gather`] | §3.2 Fig. 5 | transposed | AVX2 `vpgatherdps` lookups |
//! | [`FastScanIndex`] | §4 | grouped+packed | in-register `pshufb` lookups, ~95 % of exact computations pruned |
//! | [`scan_quantize_only`] | §5.5 | row-major | 8-bit bounds from full tables (pruning-power study) |
//!
//! Every implementation returns the **exact same result set** — the `topk`
//! smallest `(distance, id)` pairs — which the test suite verifies pairwise
//! and property-based tests verify against brute force.
//!
//! # The `Scanner` trait and `Backend` registry
//!
//! All implementations are interchangeable behind the [`Scanner`] trait
//! (`scan` / `name` / `stats_supported`), and the [`Backend`] enum is the
//! registry that constructs them: [`Backend::ALL`] enumerates every
//! implementation, [`Backend::scanner`] builds one from [`ScanOpts`], and
//! `Backend: FromStr` parses the names CLI and bench flags use. Consumers
//! (the `ivf` index, the `pqfs` CLI, the figure/table binaries) dispatch
//! exclusively through this registry — there is no per-backend `match` over
//! scan functions anywhere else in the workspace, so a new kernel added
//! here is immediately available everywhere.
//!
//! For repeated queries over one partition, [`Scanner::prepare`] converts
//! the codes into the backend's native layout once (transposition for the
//! SIMD baselines, grouping + packing for Fast Scan) and returns a
//! [`PreparedScanner`] that serves queries without conversion cost.
//!
//! ```
//! use pqfs_core::{DistanceTables, RowMajorCodes};
//! use pqfs_scan::{Backend, ScanOpts};
//!
//! let tables = DistanceTables::from_raw((0..8 * 256).map(|x| x as f32).collect(), 8, 256);
//! let codes = RowMajorCodes::new((0..256 * 8).map(|x| (x * 7 % 256) as u8).collect(), 8);
//! let backend: Backend = "fastscan".parse().unwrap();
//! let result = backend
//!     .scanner(&ScanOpts::default())
//!     .scan(&tables, &codes, 10)
//!     .unwrap();
//! assert_eq!(result.neighbors.len(), 10);
//! ```
//!
//! The x86-64 SIMD paths are compiled under the `avx2` cargo feature
//! (enabled by default) and selected by runtime CPU detection; disabling
//! the feature forces the portable scalar fallbacks on every backend.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod avx;
#[cfg(feature = "checked-kernels")]
pub mod checked;
mod error;
pub mod fastscan;
pub mod gather;
pub mod libpq;
pub mod naive;
pub mod quantize;
pub mod quantize_only;
mod result;
mod scanner;

pub use avx::scan_avx;
pub use error::ScanError;
pub use fastscan::{FastScanIndex, FastScanOptions, Kernel, ScanParams, ScanScratch};
pub use gather::scan_gather;
pub use libpq::scan_libpq;
pub use naive::scan_naive;
pub use quantize::{DistanceQuantizer, DEFAULT_BINS, NO_PRUNE, PAPER_BINS};
pub use quantize_only::scan_quantize_only;
pub use result::{PerBackendStats, ScanResult, ScanStats};
pub use scanner::{Backend, PreparedScanner, ScanOpts, Scanner};

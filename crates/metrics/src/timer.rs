//! Wall-clock measurement helpers for the harness binaries.

use std::time::Instant;

/// Runs `f` once, returning its result and the elapsed milliseconds.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs `f` `reps` times (after one untimed warm-up call) and returns the
/// per-repetition milliseconds, in execution order.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn measure_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> Vec<f64> {
    assert!(reps > 0, "need at least one repetition");
    std::hint::black_box(f());
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// Scan speed in million vectors per second — the unit of the paper's
/// Figures 16–20 — from a per-scan time and partition size.
pub fn mvecs_per_sec(n_vectors: usize, elapsed_ms: f64) -> f64 {
    if elapsed_ms <= 0.0 {
        return f64::INFINITY;
    }
    n_vectors as f64 / (elapsed_ms * 1e-3) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_returns_result_and_positive_time() {
        let (r, ms) = time_ms(|| (0..1000).sum::<u64>());
        assert_eq!(r, 499500);
        assert!(ms >= 0.0);
    }

    #[test]
    fn measure_ms_returns_requested_reps() {
        let times = measure_ms(5, || std::hint::black_box(17u64 * 13));
        assert_eq!(times.len(), 5);
        assert!(times.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn mvecs_per_sec_math() {
        // 25M vectors in 13.7 ms ≈ 1825 M vecs/s (the paper's headline).
        let speed = mvecs_per_sec(25_000_000, 13.7);
        assert!((speed - 1824.8).abs() < 1.0, "{speed}");
        assert!(mvecs_per_sec(100, 0.0).is_infinite());
    }
}

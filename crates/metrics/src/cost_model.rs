//! Cache and instruction cost model (paper Tables 1 and 2).
//!
//! This reproduction runs without access to hardware performance-counter
//! infrastructure, so the paper's microarchitectural constants are encoded
//! here and combined with *exactly counted* algorithm operations (see
//! [`crate::counters`]) to regenerate the counter figures. Wall-clock time
//! is always measured for real; only the counter breakdowns are modeled.

use std::ops::RangeInclusive;

/// A data-cache level of the Nehalem–Haswell generations (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// 32 KiB per core, 4–5 cycle latency.
    L1,
    /// 256 KiB per core, 11–13 cycle latency.
    L2,
    /// 2–3 MiB × cores, 25–40 cycle latency.
    L3,
}

impl CacheLevel {
    /// Load-to-use latency in cycles (Table 1).
    pub fn latency_cycles(&self) -> RangeInclusive<u32> {
        match self {
            CacheLevel::L1 => 4..=5,
            CacheLevel::L2 => 11..=13,
            CacheLevel::L3 => 25..=40,
        }
    }

    /// Capacity in bytes (Table 1; L3 is per-core share of a 2–3 MiB/core
    /// design, we use the 2.5 MiB midpoint).
    pub fn size_bytes(&self) -> usize {
        match self {
            CacheLevel::L1 => 32 << 10,
            CacheLevel::L2 => 256 << 10,
            CacheLevel::L3 => 2560 << 10,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CacheLevel::L1 => "L1",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
        }
    }
}

/// Smallest cache level that holds a distance-table set of `table_bytes`
/// (the Table 1 "PQ Configurations" row: PQ 16×4 and PQ 8×8 fit L1,
/// PQ 4×16 only fits L3).
pub fn table_cache_level(table_bytes: usize) -> CacheLevel {
    if table_bytes <= CacheLevel::L1.size_bytes() {
        CacheLevel::L1
    } else if table_bytes <= CacheLevel::L2.size_bytes() {
        CacheLevel::L2
    } else {
        CacheLevel::L3
    }
}

/// Static properties of an instruction (Table 2, Haswell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrProps {
    /// Mnemonic.
    pub name: &'static str,
    /// Latency in cycles.
    pub latency: u32,
    /// Reciprocal throughput in cycles.
    pub throughput: f64,
    /// Micro-operations the instruction decodes into.
    pub uops: u32,
    /// Elements processed per instruction (`None` = bounded by table size).
    pub elements: Option<u32>,
    /// Element width in bits.
    pub elem_bits: u32,
}

/// `vpgatherdps` on Haswell (Table 2): 18-cycle latency, 10-cycle
/// throughput, 34 µops — the reason the gather implementation loses.
pub const GATHER: InstrProps = InstrProps {
    name: "gather",
    latency: 18,
    throughput: 10.0,
    uops: 34,
    elements: None,
    elem_bits: 32,
};

/// `pshufb` on Haswell (Table 2): 1-cycle latency, 0.5-cycle throughput,
/// 1 µop, 16 8-bit elements — the instruction Fast Scan is built on.
pub const PSHUFB: InstrProps = InstrProps {
    name: "pshufb",
    latency: 1,
    throughput: 0.5,
    uops: 1,
    elements: Some(16),
    elem_bits: 8,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cache_levels() {
        assert_eq!(CacheLevel::L1.latency_cycles(), 4..=5);
        assert_eq!(CacheLevel::L2.latency_cycles(), 11..=13);
        assert_eq!(CacheLevel::L3.latency_cycles(), 25..=40);
        assert_eq!(CacheLevel::L1.size_bytes(), 32 * 1024);
    }

    #[test]
    fn table1_pq_configuration_mapping() {
        // PQ 16x4: 16 × 16 × 4 B = 1 KiB -> L1.
        assert_eq!(table_cache_level(1 << 10), CacheLevel::L1);
        // PQ 8x8: 8 × 256 × 4 B = 8 KiB -> L1.
        assert_eq!(table_cache_level(8 << 10), CacheLevel::L1);
        // PQ 4x16: 4 × 65536 × 4 B = 1 MiB -> L3.
        assert_eq!(table_cache_level(1 << 20), CacheLevel::L3);
        // In-between sizes land in L2.
        assert_eq!(table_cache_level(100 << 10), CacheLevel::L2);
    }

    #[test]
    fn table2_instruction_properties() {
        assert_eq!(GATHER.latency, 18);
        assert_eq!(GATHER.throughput, 10.0);
        assert_eq!(GATHER.uops, 34);
        assert_eq!(PSHUFB.latency, 1);
        assert_eq!(PSHUFB.uops, 1);
        assert_eq!(PSHUFB.elements, Some(16));
        // The paper's headline ratio: pshufb is 34x cheaper in µops.
        assert_eq!(GATHER.uops / PSHUFB.uops, 34);
    }
}

//! Property-based verification of the lower-bound safety theorem
//! (DESIGN.md §3): with per-table biases and floor rounding, a saturated
//! 8-bit sum exceeding the quantized threshold *proves* the true distance
//! exceeds the float threshold — for any tables, any `qmax`, any bin count,
//! any candidate and any threshold. This is the property that makes PQ Fast
//! Scan exact.

use pqfs_core::DistanceTables;
use pqfs_scan::DistanceQuantizer;
use proptest::prelude::*;

const M: usize = 4;
const KSUB: usize = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Safety with *exact* per-component values (the grouped-components
    /// case: `v_j = D_j[p_j]`).
    #[test]
    fn pruning_with_exact_values_is_safe(
        data in prop::collection::vec(0.0f32..10_000.0, M * KSUB),
        code in prop::collection::vec(0u8..KSUB as u8, M),
        qmax in 0.0f32..50_000.0,
        bins in prop::sample::select(vec![1u16, 17, 126, 254]),
        threshold in 0.0f32..50_000.0,
    ) {
        let tables = DistanceTables::from_raw(data, M, KSUB);
        let quant = DistanceQuantizer::new(&tables, qmax, bins);
        let d = tables.distance(&code);
        let mut sum = 0u8;
        for (j, &idx) in code.iter().enumerate() {
            sum = sum.saturating_add(quant.quantize_value(j, tables.table(j)[idx as usize]));
        }
        let t_q = quant.quantize_threshold(threshold);
        if sum > t_q {
            prop_assert!(
                d > threshold,
                "unsafe prune: d={d}, threshold={threshold}, sum={sum}, t_q={t_q}"
            );
        }
    }

    /// Safety with *under-estimating* per-component values (the
    /// minimum-table case: `v_j <= D_j[p_j]`). We shrink each component by
    /// an arbitrary fraction to model any possible minimum table.
    #[test]
    fn pruning_with_lower_bound_values_is_safe(
        data in prop::collection::vec(0.0f32..10_000.0, M * KSUB),
        code in prop::collection::vec(0u8..KSUB as u8, M),
        shrink in prop::collection::vec(0.0f32..=1.0, M),
        qmax in 0.0f32..50_000.0,
        bins in prop::sample::select(vec![5u16, 126, 254]),
        threshold in 0.0f32..50_000.0,
    ) {
        let tables = DistanceTables::from_raw(data, M, KSUB);
        let quant = DistanceQuantizer::new(&tables, qmax, bins);
        let mins = tables.per_table_min();
        let d = tables.distance(&code);
        let mut sum = 0u8;
        for (j, &idx) in code.iter().enumerate() {
            let exact = tables.table(j)[idx as usize];
            // Any value between the table minimum and the exact entry is a
            // legal small-table value for this component.
            let v = mins[j] + (exact - mins[j]) * shrink[j];
            sum = sum.saturating_add(quant.quantize_value(j, v));
        }
        let t_q = quant.quantize_threshold(threshold);
        if sum > t_q {
            prop_assert!(d > threshold, "unsafe prune with min-table values");
        }
    }

    /// The quantized threshold is monotone in the float threshold, so a
    /// shrinking top-k threshold can only increase pruning, never corrupt
    /// it.
    #[test]
    fn threshold_quantization_is_monotone(
        data in prop::collection::vec(0.0f32..10_000.0, M * KSUB),
        qmax in 1.0f32..50_000.0,
        t1 in 0.0f32..50_000.0,
        t2 in 0.0f32..50_000.0,
    ) {
        let tables = DistanceTables::from_raw(data, M, KSUB);
        let quant = DistanceQuantizer::new(&tables, qmax, 254);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(quant.quantize_threshold(lo) <= quant.quantize_threshold(hi));
    }

    /// Value quantization is monotone per table (larger distances never
    /// quantize lower), which minimum tables rely on.
    #[test]
    fn value_quantization_is_monotone(
        data in prop::collection::vec(0.0f32..10_000.0, M * KSUB),
        qmax in 1.0f32..50_000.0,
        j in 0usize..M,
        v1 in 0.0f32..20_000.0,
        v2 in 0.0f32..20_000.0,
    ) {
        let tables = DistanceTables::from_raw(data, M, KSUB);
        let quant = DistanceQuantizer::new(&tables, qmax, 254);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(quant.quantize_value(j, lo) <= quant.quantize_value(j, hi));
    }
}

//! The quantization-only Fast Scan variant (paper §5.5, Figure 17).
//!
//! To separate the pruning-power loss caused by *minimum tables* from the
//! loss caused by *distance quantization*, the paper implements a variant
//! that keeps full 256-entry tables but quantizes their entries to 8 bits.
//! Lower bounds are then exact distances up to quantization, so pruning
//! power is very high (99.9 %+), but the tables no longer fit SIMD registers
//! — this variant "cannot use SIMD and offers no speedup" and is measured
//! for pruning power only.

use crate::quantize::DistanceQuantizer;
use crate::result::{ScanResult, ScanStats};
use pqfs_core::{DistanceTables, RowMajorCodes, TopK};

/// Scans with 256-entry quantized tables, counting pruned distance
/// computations. Returns exactly the same neighbors as
/// [`crate::scan_naive`].
///
/// `keep` is the warm-up fraction (as in Fast Scan) and `bins` the
/// quantization bin count.
///
/// # Panics
///
/// Panics if `topk == 0` or `tables.m() != codes.m()`.
pub fn scan_quantize_only(
    tables: &DistanceTables,
    codes: &RowMajorCodes,
    topk: usize,
    keep: f64,
    bins: u16,
) -> ScanResult {
    assert_eq!(tables.m(), codes.m(), "tables and codes must share m");
    let n = codes.len();
    let m = codes.m();
    let mut heap = TopK::new(topk);
    let mut stats = ScanStats {
        scanned: n as u64,
        ..ScanStats::default()
    };
    if n == 0 {
        return ScanResult {
            neighbors: Vec::new(),
            stats,
        };
    }

    // Warm-up with exact distances.
    let warm = ((keep.clamp(0.0, 1.0) * n as f64).ceil() as usize).min(n);
    for i in 0..warm {
        heap.push(tables.distance(codes.code(i)), i as u64);
    }
    stats.warmup = warm as u64;

    let qmax = if heap.is_full() {
        heap.threshold()
    } else {
        tables.max_sum()
    };
    let quantizer = DistanceQuantizer::new(tables, qmax, bins);

    // Full quantized tables: m rows of ksub bytes.
    let ksub = tables.ksub();
    let mut qtables = Vec::with_capacity(m * ksub);
    for j in 0..m {
        qtables.extend(quantizer.quantize_table(j, tables.table(j)));
    }

    let mut threshold = quantizer.quantize_threshold(heap.threshold());
    for i in warm..n {
        let code = codes.code(i);
        // Saturating 8-bit lower bound from the full quantized tables.
        let mut bound = 0u8;
        for (j, &idx) in code.iter().enumerate() {
            bound = bound.saturating_add(qtables[j * ksub + idx as usize]);
        }
        if bound > threshold {
            stats.pruned += 1;
            continue;
        }
        stats.verified += 1;
        let d = tables.distance(code);
        if heap.push(d, i as u64) {
            threshold = quantizer.quantize_threshold(heap.threshold());
        }
    }

    ScanResult {
        neighbors: heap.into_sorted(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::scan_naive;
    use crate::quantize::DEFAULT_BINS;

    fn fixture(n: usize) -> (DistanceTables, RowMajorCodes) {
        let mut data = Vec::with_capacity(8 * 256);
        for j in 0..8 {
            for i in 0..256 {
                data.push(((i * 29 + j * 113) % 1009) as f32 * 0.75);
            }
        }
        let tables = DistanceTables::from_raw(data, 8, 256);
        let bytes: Vec<u8> = (0..n * 8).map(|i| ((i * 211 + 37) % 256) as u8).collect();
        (tables, RowMajorCodes::new(bytes, 8))
    }

    #[test]
    fn returns_exact_same_results_as_naive() {
        let (tables, codes) = fixture(3000);
        for (topk, keep) in [
            (1usize, 0.01),
            (10, 0.005),
            (100, 0.02),
            (10, 0.0),
            (10, 1.0),
        ] {
            let a = scan_naive(&tables, &codes, topk);
            let b = scan_quantize_only(&tables, &codes, topk, keep, DEFAULT_BINS);
            assert_eq!(a.ids(), b.ids(), "topk={topk} keep={keep}");
            assert_eq!(a.distances(), b.distances(), "topk={topk} keep={keep}");
        }
    }

    #[test]
    fn prunes_most_distance_computations() {
        let (tables, codes) = fixture(5000);
        let result = scan_quantize_only(&tables, &codes, 10, 0.01, DEFAULT_BINS);
        // §5.5: quantization-only pruning power is very high (99.9 % in the
        // paper). Synthetic tables are less favourable; require > 90 %.
        assert!(
            result.stats.pruned_fraction() > 0.9,
            "pruning power {:.4} too low",
            result.stats.pruned_fraction()
        );
    }

    #[test]
    fn accounting_adds_up() {
        let (tables, codes) = fixture(1000);
        let r = scan_quantize_only(&tables, &codes, 5, 0.01, DEFAULT_BINS);
        assert_eq!(
            r.stats.warmup + r.stats.pruned + r.stats.verified,
            r.stats.scanned
        );
    }

    #[test]
    fn paper_bins_mode_is_also_exact() {
        let (tables, codes) = fixture(2000);
        let a = scan_naive(&tables, &codes, 20);
        let b = scan_quantize_only(&tables, &codes, 20, 0.01, crate::quantize::PAPER_BINS);
        assert_eq!(a.ids(), b.ids());
    }

    #[test]
    fn keep_of_one_degenerates_to_naive() {
        let (tables, codes) = fixture(500);
        let r = scan_quantize_only(&tables, &codes, 7, 1.0, DEFAULT_BINS);
        assert_eq!(r.stats.warmup, 500);
        assert_eq!(r.stats.pruned, 0);
        assert_eq!(r.stats.verified, 0);
    }
}

//! # pq-fast-scan
//!
//! A Rust reproduction of *"Cache locality is not enough: High-Performance
//! Nearest Neighbor Search with Product Quantization Fast Scan"* (F. André,
//! A.-M. Kermarrec, N. Le Scouarnec — PVLDB 9(4), 2015).
//!
//! PQ Fast Scan accelerates product-quantization nearest-neighbor search by
//! replacing L1-cache-resident distance lookup tables with **small tables
//! held in SIMD registers**, looked up via `pshufb`. The small tables give
//! lower bounds that prune >95 % of exact distance computations, making the
//! scan 4–6× faster than PQ Scan *while returning exactly the same
//! results*.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`kmeans`] — clustering substrate (Lloyd + same-size k-means);
//! * [`core`] — product quantization, ADC distance tables, layouts, top-k;
//! * [`scan`] — PQ Scan baselines, [`FastScanIndex`], and the
//!   [`Backend`](scan::Backend) registry every implementation sits behind;
//! * [`ivf`] — the IVFADC indexed-search pipeline;
//! * [`pool`] — the shared work-stealing thread pool every parallel path
//!   (batch search, multi-probe fan-out, batch encoding, training) runs on;
//! * [`data`] — synthetic SIFT-like datasets, TEXMEX file IO, ground truth;
//! * [`metrics`] — statistics, recall, counter and cost models;
//! * [`columnar`] — the §6 generalization to compressed column scans;
//! * [`fault`] — deterministic fault injection (failpoints) used to test
//!   the persistence and degraded-search paths; armed via the
//!   `PQFS_FAILPOINTS` environment variable, a no-op when disarmed;
//! * [`server`] — the TCP serving layer: length-prefixed binary protocol,
//!   request batching with admission control, graceful shutdown.
//!
//! ## Quickstart
//!
//! ```
//! use pq_fast_scan::prelude::*;
//! use rand::{Rng, SeedableRng, rngs::StdRng};
//!
//! // Synthetic SIFT-like vectors (128-d, byte-range, clustered).
//! let config = SyntheticConfig::sift_like().with_dim(32).with_seed(1);
//! let mut dataset = SyntheticDataset::new(&config);
//! let train = dataset.sample(2_000);
//! let base = dataset.sample(10_000);
//!
//! // Train a PQ 8x8 product quantizer with the optimized index assignment.
//! let mut pq = ProductQuantizer::train(&train, &PqConfig::pq8x8(32), 42).unwrap();
//! pq.optimize_assignment(16, 42).unwrap();
//! let codes = pq.encode_batch(&base).unwrap();
//!
//! // Pick backends from the registry and run a query: Fast Scan returns
//! // exactly what the naive PQ Scan reference returns.
//! let query = dataset.sample(1);
//! let tables = DistanceTables::compute(&pq, &query).unwrap();
//! let opts = ScanOpts::default();
//! let result = Backend::FastScan.scanner(&opts).scan(&tables, &codes, 10).unwrap();
//! let reference = Backend::Naive.scanner(&opts).scan(&tables, &codes, 10).unwrap();
//!
//! assert_eq!(result.neighbors.len(), 10);
//! assert_eq!(result.ids(), reference.ids());
//! ```

#![forbid(unsafe_code)]

pub use pqfs_columnar as columnar;
pub use pqfs_core as core;
pub use pqfs_data as data;
pub use pqfs_fault as fault;
pub use pqfs_ivf as ivf;
pub use pqfs_kmeans as kmeans;
pub use pqfs_metrics as metrics;
pub use pqfs_pool as pool;
pub use pqfs_scan as scan;
pub use pqfs_server as server;

/// The most common imports in one place.
pub mod prelude {
    pub use pqfs_columnar::{approximate_mean, topk_max_fast, CompressedColumn};
    pub use pqfs_core::{
        DistanceTables, Neighbor, PqConfig, ProductQuantizer, RowMajorCodes, TopK, TransposedCodes,
    };
    pub use pqfs_data::{exact_knn, SyntheticConfig, SyntheticDataset};
    pub use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend, SearchHealth};
    pub use pqfs_kmeans::{KMeans, KMeansConfig};
    pub use pqfs_metrics::{mvecs_per_sec, Summary};
    pub use pqfs_pool::ThreadPool;
    pub use pqfs_scan::{
        scan_avx, scan_gather, scan_libpq, scan_naive, scan_quantize_only, Backend, FastScanIndex,
        FastScanOptions, Kernel, PreparedScanner, ScanOpts, ScanParams, ScanResult, ScanStats,
        Scanner,
    };
}

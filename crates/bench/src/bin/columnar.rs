//! §6 discussion harness — small tables beyond ANN search: top-k and
//! approximate aggregates over a dictionary-compressed column.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin columnar
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scale};
use pqfs_columnar::{approximate_mean, topk_max_fast, CompressedColumn};
use pqfs_metrics::{fmt_count, fmt_f, measure_ms, Summary, TextTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = (4_000_000.0 * scale()) as usize;
    let reps = env_usize("PQFS_QUERIES", 5);
    header(
        "columnar",
        "§6 (Discussion)",
        &format!("column of {n} rows, 256-entry dictionary"),
    );

    let mut rng = StdRng::seed_from_u64(6);
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let trend = (i as f32 / n as f32) * 100.0;
            trend + rng.gen_range(0.0f32..50.0)
        })
        .collect();
    let column = CompressedColumn::compress(&data, 256);
    println!(
        "compressed {} rows; max reconstruction error {:.3}\n",
        fmt_count(n as u64),
        column.reconstruction_error(&data)
    );

    // --- top-k -----------------------------------------------------------
    let mut t = TextTable::new(vec![
        "query",
        "exact [ms]",
        "small-tables [ms]",
        "speedup",
        "pruned [%]",
    ]);
    for k in [1usize, 10, 100] {
        let exact_ms =
            Summary::from_values(&measure_ms(reps, || column.topk_max_exact(k))).median();
        let fast_ms =
            Summary::from_values(&measure_ms(reps, || topk_max_fast(&column, k))).median();
        let result = topk_max_fast(&column, k);
        assert_eq!(
            result.items,
            column.topk_max_exact(k),
            "top-{k} must be exact"
        );
        t.row(vec![
            format!("top-{k}"),
            fmt_f(exact_ms, 1),
            fmt_f(fast_ms, 1),
            fmt_f(exact_ms / fast_ms, 1),
            fmt_f(100.0 * result.pruned as f64 / n as f64, 1),
        ]);
    }
    println!("{t}");

    // --- approximate mean --------------------------------------------------
    let exact_ms = Summary::from_values(&measure_ms(reps, || column.exact_mean())).median();
    let approx_ms = Summary::from_values(&measure_ms(reps, || approximate_mean(&column))).median();
    let exact = column.exact_mean();
    let approx = approximate_mean(&column);
    println!("approximate mean (16-entry table of means, 8-bit SIMD accumulation):");
    let mut t = TextTable::new(vec!["", "value", "time [ms]"]);
    t.row(vec![
        "exact mean".to_string(),
        fmt_f(exact as f64, 4),
        fmt_f(exact_ms, 1),
    ]);
    t.row(vec![
        format!("approx (err bound {:.3})", approx.error_bound),
        fmt_f(approx.value as f64, 4),
        fmt_f(approx_ms, 1),
    ]);
    println!("{t}");
    assert!((approx.value - exact).abs() <= approx.error_bound);
    println!(
        "shape check: top-k prunes the vast majority of dictionary lookups and \
         beats the exact scan; the approximate mean lands within its guaranteed \
         error bound at a fraction of the cost."
    );
}

//! Binary persistence for a built IVFADC index.
//!
//! Building an index over a large base set costs minutes of training and
//! encoding; serving processes load the finished artifact instead. The
//! format is little-endian and versioned:
//!
//! ```text
//! magic  "PQIV"          4 bytes
//! version u32            currently 2
//! dim     u64
//! partitions u64
//! coarse centroids       partitions × dim × f32
//! embedded quantizer     pqfs-core persist format (length-prefixed, u64)
//! backend set            u8 — v2: bitmask over `SearchBackend::ALL` order;
//!                        v1 (still readable): 1 = naive+libpq+fastscan,
//!                        0 = naive+libpq
//! scan options (v2 only) keep f64, bins u16, group_components u8
//!                        (255 = auto), kernel u8 (0 auto, 1 portable,
//!                        2 ssse3, 3 avx2)
//! per partition:
//!   len   u64
//!   ids   len × u64
//!   codes len × m bytes
//! ```
//!
//! Backend scan state (transposed layouts, Fast Scan grouping) is *rebuilt*
//! on load through the scan registry (preparation is deterministic and
//! costs a small fraction of what decoding the codes from disk does).

use crate::coarse::CoarseQuantizer;
use crate::index::{IvfadcConfig, IvfadcIndex, SearchBackend};
use pqfs_core::persist::{load_pq, save_pq, PersistError};
use pqfs_scan::{Kernel, ScanOpts};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PQIV";
const VERSION: u32 = 2;

/// Encodes a backend set as a bitmask over [`SearchBackend::ALL`] order.
fn backends_to_mask(backends: &[SearchBackend]) -> u8 {
    let mut mask = 0u8;
    for (bit, b) in SearchBackend::ALL.iter().enumerate() {
        if backends.contains(b) {
            mask |= 1 << bit;
        }
    }
    mask
}

/// Encodes the scan options as the fixed 12-byte v2 block.
fn write_scan_opts(w: &mut impl Write, opts: &ScanOpts) -> io::Result<()> {
    w.write_all(&opts.keep.to_le_bytes())?;
    w.write_all(&opts.bins.to_le_bytes())?;
    let gc = match opts.group_components {
        Some(c) if c <= 4 => c as u8,
        _ => u8::MAX,
    };
    w.write_all(&[gc])?;
    let kernel = match opts.kernel {
        Kernel::Auto => 0u8,
        Kernel::Portable => 1,
        Kernel::Ssse3 => 2,
        Kernel::Avx2 => 3,
    };
    w.write_all(&[kernel])?;
    Ok(())
}

/// Decodes the fixed 12-byte v2 scan-options block.
fn read_scan_opts(r: &mut impl Read) -> Result<ScanOpts, PersistError> {
    let mut buf = [0u8; 12];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Format("truncated scan options".into()))?;
    let keep = f64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice"));
    if !(0.0..=1.0).contains(&keep) {
        return Err(PersistError::Format(format!("keep {keep} outside [0, 1]")));
    }
    let bins = u16::from_le_bytes(buf[8..10].try_into().expect("2-byte slice"));
    let group_components = match buf[10] {
        u8::MAX => None,
        c if c <= 4 => Some(c as usize),
        c => return Err(PersistError::Format(format!("bad group_components {c}"))),
    };
    let kernel = match buf[11] {
        0 => Kernel::Auto,
        1 => Kernel::Portable,
        2 => Kernel::Ssse3,
        3 => Kernel::Avx2,
        k => return Err(PersistError::Format(format!("bad kernel tag {k}"))),
    };
    Ok(ScanOpts {
        keep,
        bins,
        group_components,
        kernel,
    })
}

/// Decodes a v2 backend bitmask (unknown future bits are ignored).
fn mask_to_backends(mask: u8) -> Vec<SearchBackend> {
    SearchBackend::ALL
        .into_iter()
        .enumerate()
        .filter(|(bit, _)| mask & (1 << bit) != 0)
        .map(|(_, b)| b)
        .collect()
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl IvfadcIndex {
    /// Writes the index to `w`.
    pub fn save(&self, w: &mut impl Write) -> Result<(), PersistError> {
        let dim = self.coarse().dim();
        let parts = self.num_partitions();
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(dim as u64).to_le_bytes())?;
        w.write_all(&(parts as u64).to_le_bytes())?;
        for p in 0..parts {
            for &v in self.coarse().centroid(p) {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        // Length-prefixed embedded quantizer.
        let mut pq_bytes = Vec::new();
        save_pq(self.pq(), &mut pq_bytes)?;
        w.write_all(&(pq_bytes.len() as u64).to_le_bytes())?;
        w.write_all(&pq_bytes)?;
        w.write_all(&[backends_to_mask(&self.prepared_backends())])?;
        write_scan_opts(w, self.scan_opts())?;
        for p in 0..parts {
            let (ids, codes) = self.partition_raw(p);
            w.write_all(&(ids.len() as u64).to_le_bytes())?;
            for &id in ids {
                w.write_all(&id.to_le_bytes())?;
            }
            w.write_all(codes.as_bytes())?;
        }
        Ok(())
    }

    /// Reads an index previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// [`PersistError`] on IO failures, bad magic/version, truncation or an
    /// invalid embedded quantizer.
    pub fn load(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format(format!("bad magic {magic:?}")));
        }
        let version = read_u32(r)?;
        if version == 0 || version > VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let dim = read_u64(r)? as usize;
        let parts = read_u64(r)? as usize;
        if dim == 0 || parts == 0 {
            return Err(PersistError::Format(
                "empty dimension or partition count".into(),
            ));
        }
        let mut centroids = vec![0u8; parts * dim * 4];
        r.read_exact(&mut centroids)
            .map_err(|_| PersistError::Format("truncated coarse centroids".into()))?;
        let centroids: Vec<f32> = centroids
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();

        let pq_len = read_u64(r)? as usize;
        let mut pq_bytes = vec![0u8; pq_len];
        r.read_exact(&mut pq_bytes)
            .map_err(|_| PersistError::Format("truncated quantizer".into()))?;
        let pq = load_pq(&mut pq_bytes.as_slice())?;
        if pq.config().dim() != dim {
            return Err(PersistError::Format(format!(
                "quantizer dim {} != index dim {dim}",
                pq.config().dim()
            )));
        }

        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let (backends, opts) = if version == 1 {
            // v1 stored a single fastscan-enabled flag and no options.
            let backends = if flag[0] != 0 {
                IvfadcConfig::default_backends()
            } else {
                vec![SearchBackend::Naive, SearchBackend::Libpq]
            };
            (backends, ScanOpts::default())
        } else {
            // An empty mask is legal: an index whose configured backends
            // were all shape-skipped roundtrips to one that (faithfully)
            // serves no backend.
            (mask_to_backends(flag[0]), read_scan_opts(r)?)
        };

        let m = pq.config().m();
        let mut partitions = Vec::with_capacity(parts);
        for _ in 0..parts {
            let len = read_u64(r)? as usize;
            let mut ids = Vec::with_capacity(len);
            let mut idbuf = vec![0u8; len * 8];
            r.read_exact(&mut idbuf)
                .map_err(|_| PersistError::Format("truncated partition ids".into()))?;
            ids.extend(
                idbuf
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
            );
            let mut codes = vec![0u8; len * m];
            r.read_exact(&mut codes)
                .map_err(|_| PersistError::Format("truncated partition codes".into()))?;
            partitions.push((ids, codes));
        }

        IvfadcIndex::from_parts(
            CoarseQuantizer::from_centroids(centroids, dim),
            pq,
            partitions,
            &backends,
            opts,
        )
        .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Saves to a file.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Loads from a file.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::load(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IvfadcConfig, SearchBackend};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 16;

    fn build() -> (IvfadcIndex, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(55);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 1000);
        let base = gen(&mut rng, 400);
        let index = IvfadcIndex::build(&train, &base, &IvfadcConfig::new(DIM, 4)).unwrap();
        (index, base)
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let (index, base) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.partition_sizes(), index.partition_sizes());
        for qi in (0..400).step_by(37) {
            let q = &base[qi * DIM..(qi + 1) * DIM];
            for backend in [SearchBackend::Naive, SearchBackend::FastScan] {
                let a = index.search(q, 7, backend, 0.01).unwrap();
                let b = loaded.search(q, 7, backend, 0.01).unwrap();
                let ids = |o: &crate::index::SearchOutcome| {
                    o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
                };
                assert_eq!(ids(&a), ids(&b), "query {qi}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_the_prepared_backend_set() {
        let mut rng = StdRng::seed_from_u64(56);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 1000);
        let base = gen(&mut rng, 300);
        let config = IvfadcConfig::new(DIM, 2).with_backends(SearchBackend::ALL.to_vec());
        let index = IvfadcIndex::build(&train, &base, &config).unwrap();
        assert_eq!(index.prepared_backends(), SearchBackend::ALL.to_vec());

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.prepared_backends(), SearchBackend::ALL.to_vec());
        // Every persisted backend still answers queries after the roundtrip.
        for backend in SearchBackend::ALL {
            assert!(
                loaded.search(&base[..DIM], 3, backend, 0.01).is_ok(),
                "{backend}"
            );
        }
    }

    #[test]
    fn v1_fastscan_flag_still_loads() {
        // A v1 writer stored `1` for naive+libpq+fastscan; synthesize that
        // file from a v2 buffer by patching version and mask bytes.
        let (index, _) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        let mask_pos = backend_mask_position(&buf);
        buf[mask_pos] = 1;
        // v1 had no scan-options block: drop the 12 bytes after the flag.
        buf.drain(mask_pos + 1..mask_pos + 13);
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.prepared_backends(), IvfadcConfig::default_backends());
    }

    /// Byte offset of the backend mask: after magic, version, dim,
    /// partitions, centroids, and the length-prefixed quantizer.
    fn backend_mask_position(buf: &[u8]) -> usize {
        let dim = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let parts = u64::from_le_bytes(buf[16..24].try_into().unwrap()) as usize;
        let pq_len_pos = 24 + parts * dim * 4;
        let pq_len =
            u64::from_le_bytes(buf[pq_len_pos..pq_len_pos + 8].try_into().unwrap()) as usize;
        pq_len_pos + 8 + pq_len
    }

    #[test]
    fn roundtrip_preserves_scan_options() {
        use pqfs_scan::{Kernel, ScanOpts};
        let mut rng = StdRng::seed_from_u64(57);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 800);
        let base = gen(&mut rng, 200);
        let opts = ScanOpts::default()
            .with_keep(0.02)
            .with_bins(126)
            .with_group_components(1)
            .with_kernel(Kernel::Portable);
        let config = IvfadcConfig::new(DIM, 2).with_scan_opts(opts);
        let index = IvfadcIndex::build(&train, &base, &config).unwrap();

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        let roundtripped = loaded.scan_opts();
        assert_eq!(roundtripped.keep, 0.02);
        assert_eq!(roundtripped.bins, 126);
        assert_eq!(roundtripped.group_components, Some(1));
        assert_eq!(roundtripped.kernel, Kernel::Portable);
        // Identical options => identical prepared state => identical memory
        // accounting (the Figure 20 number survives persistence).
        assert_eq!(
            loaded.code_memory_bytes(SearchBackend::FastScan),
            index.code_memory_bytes(SearchBackend::FastScan)
        );
    }

    #[test]
    fn empty_base_index_roundtrips() {
        let mut rng = StdRng::seed_from_u64(58);
        let train: Vec<f32> = (0..1000 * DIM)
            .map(|_| rng.gen_range(0.0f32..255.0))
            .collect();
        let index = IvfadcIndex::build(&train, &[], &IvfadcConfig::new(DIM, 2)).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.prepared_backends(), IvfadcConfig::default_backends());

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.prepared_backends(), IvfadcConfig::default_backends());
    }

    #[test]
    fn file_roundtrip() {
        let (index, _) = build();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-ivf-{}.pqiv", std::process::id()));
        index.save_file(&path).unwrap();
        let loaded = IvfadcIndex::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), index.len());
    }

    #[test]
    fn rejects_corruption() {
        let (index, _) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'Z';
        assert!(IvfadcIndex::load(&mut bad_magic.as_slice()).is_err());

        let truncated = &buf[..buf.len() / 2];
        assert!(IvfadcIndex::load(&mut &truncated[..]).is_err());
    }
}

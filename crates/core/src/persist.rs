//! Binary persistence for trained quantizers.
//!
//! Training a product quantizer over millions of vectors takes minutes;
//! production deployments train once and serve many processes. This module
//! defines a small versioned little-endian format:
//!
//! ```text
//! magic  "PQFS"            4 bytes
//! version u32              currently 1
//! dim     u64
//! m       u64
//! nbits   u8
//! m × (ksub × dsub) f32    codebooks, row-major
//! ```
//!
//! The format stores exactly the information [`ProductQuantizer`] holds; a
//! loaded quantizer is bit-identical to the saved one (encode/decode/ADC
//! all agree).

use crate::codebook::Codebook;
use crate::config::PqConfig;
use crate::pq::ProductQuantizer;
use crate::PqError;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PQFS";
const VERSION: u32 = 1;

/// Errors from quantizer persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structurally invalid or incompatible file.
    Format(String),
    /// The stored configuration is invalid.
    Config(PqError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
            PersistError::Config(e) => write!(f, "stored configuration invalid: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Config(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a trained quantizer to `w`.
pub fn save_pq(pq: &ProductQuantizer, w: &mut impl Write) -> Result<(), PersistError> {
    let cfg = pq.config();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(cfg.dim() as u64).to_le_bytes())?;
    w.write_all(&(cfg.m() as u64).to_le_bytes())?;
    w.write_all(&[cfg.nbits()])?;
    for j in 0..cfg.m() {
        for &v in pq.codebook(j).centroids() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a quantizer previously written by [`save_pq`].
///
/// # Errors
///
/// [`PersistError::Format`] for bad magic/version/truncation;
/// [`PersistError::Config`] if the stored shape is invalid.
pub fn load_pq(r: &mut impl Read) -> Result<ProductQuantizer, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(format!("bad magic {magic:?}")));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let dim = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    let mut nbits = [0u8; 1];
    r.read_exact(&mut nbits)?;
    let config = PqConfig::new(dim, m, nbits[0]).map_err(PersistError::Config)?;
    if !config.trainable() {
        return Err(PersistError::Format(format!(
            "stored nbits {} exceeds the byte-code limit",
            nbits[0]
        )));
    }

    let dsub = config.dsub();
    let ksub = config.ksub();
    let mut codebooks = Vec::with_capacity(m);
    let mut buf = vec![0u8; ksub * dsub * 4];
    for _ in 0..m {
        r.read_exact(&mut buf)
            .map_err(|_| PersistError::Format("truncated codebook data".into()))?;
        let centroids: Vec<f32> = buf
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();
        if centroids.iter().any(|v| !v.is_finite()) {
            return Err(PersistError::Format("non-finite centroid".into()));
        }
        codebooks.push(Codebook::new(centroids, dsub));
    }
    // Reject trailing garbage so corrupted files fail loudly.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(ProductQuantizer::from_codebooks(config, codebooks)),
        _ => Err(PersistError::Format(
            "trailing bytes after codebooks".into(),
        )),
    }
}

/// Saves a quantizer to a file.
pub fn save_pq_file(pq: &ProductQuantizer, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    save_pq(pq, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Loads a quantizer from a file.
pub fn load_pq_file(path: impl AsRef<Path>) -> Result<ProductQuantizer, PersistError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    load_pq(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> ProductQuantizer {
        let mut rng = StdRng::seed_from_u64(77);
        let config = PqConfig::new(16, 4, 4).unwrap();
        let data: Vec<f32> = (0..300 * 16)
            .map(|_| rng.gen_range(0.0f32..255.0))
            .collect();
        ProductQuantizer::train(&data, &config, 3).unwrap()
    }

    #[test]
    fn roundtrip_preserves_quantizer_exactly() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();
        let loaded = load_pq(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), pq.config());
        for j in 0..4 {
            assert_eq!(loaded.codebook(j).centroids(), pq.codebook(j).centroids());
        }
        // Behavioral equality on a probe vector.
        let v = vec![42.5f32; 16];
        assert_eq!(loaded.encode(&v), pq.encode(&v));
    }

    #[test]
    fn file_roundtrip() {
        let pq = trained();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-persist-{}.pqfs", std::process::id()));
        save_pq_file(&pq, &path).unwrap();
        let loaded = load_pq_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.config(), pq.config());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            load_pq(&mut bad_magic.as_slice()),
            Err(PersistError::Format(_))
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(matches!(
            load_pq(&mut bad_version.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();

        let truncated = &buf[..buf.len() - 5];
        assert!(load_pq(&mut &truncated[..]).is_err());

        let mut padded = buf.clone();
        padded.push(0);
        assert!(matches!(
            load_pq(&mut padded.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_invalid_stored_config() {
        // Handcraft a header with dim not divisible by m.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PQFS");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&17u64.to_le_bytes()); // dim 17
        buf.extend_from_slice(&4u64.to_le_bytes()); // m 4
        buf.push(4); // nbits
        assert!(matches!(
            load_pq(&mut buf.as_slice()),
            Err(PersistError::Config(_))
        ));
    }

    #[test]
    fn rejects_non_finite_centroids() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();
        // Overwrite the first centroid float with NaN.
        let header = 4 + 4 + 8 + 8 + 1;
        buf[header..header + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(matches!(
            load_pq(&mut buf.as_slice()),
            Err(PersistError::Format(_))
        ));
    }
}

//! Fixture: exposes a tracked feature.
#![forbid(unsafe_code)]

pub fn nothing() {}

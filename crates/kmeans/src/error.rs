use std::fmt;

/// Errors reported by the clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansError {
    /// The input slice was empty.
    EmptyInput,
    /// `dim` was zero or the data length is not a multiple of `dim`.
    BadShape {
        /// Length of the flattened data slice.
        len: usize,
        /// Claimed dimensionality.
        dim: usize,
    },
    /// Fewer points than requested clusters.
    KExceedsPoints {
        /// Requested number of clusters.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// Same-size k-means requires the number of points to be divisible by
    /// `k` so every cluster can hold exactly `n / k` points.
    NotDivisible {
        /// Requested number of clusters.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// The input contained a non-finite (NaN or infinite) coordinate.
    NonFiniteInput,
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::EmptyInput => write!(f, "input data is empty"),
            KMeansError::BadShape { len, dim } => {
                write!(
                    f,
                    "data length {len} is not a positive multiple of dim {dim}"
                )
            }
            KMeansError::KExceedsPoints { k, n } => {
                write!(f, "cannot build {k} clusters from {n} points")
            }
            KMeansError::ZeroK => write!(f, "k must be positive"),
            KMeansError::NotDivisible { k, n } => {
                write!(f, "same-size k-means needs n divisible by k (n={n}, k={k})")
            }
            KMeansError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for KMeansError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = KMeansError::KExceedsPoints { k: 10, n: 3 }.to_string();
        assert!(msg.contains("10") && msg.contains("3"));
        let msg = KMeansError::NotDivisible { k: 16, n: 100 }.to_string();
        assert!(msg.contains("16") && msg.contains("100"));
    }
}

//! IVFADC — the indexed ANN search system PQ Fast Scan plugs into
//! (paper §2.2, following Jégou et al. [14]).
//!
//! Answering a query takes three steps (Algorithm 1):
//!
//! 1. **partition selection** — the coarse quantizer's Voronoi cell the
//!    query falls into ([`CoarseQuantizer`]);
//! 2. **distance tables** — per-query tables over the *residual*
//!    `y − c(y)`;
//! 3. **scan** — PQ Scan or PQ Fast Scan over the partition's codes
//!    (>99 % of query CPU time for multi-million-vector partitions, which
//!    is why the paper attacks this step).
//!
//! ```
//! use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
//! use rand::{Rng, SeedableRng, rngs::StdRng};
//!
//! let dim = 16;
//! let mut rng = StdRng::seed_from_u64(3);
//! let mut gen = |n: usize| -> Vec<f32> {
//!     (0..n * dim).map(|_| rng.gen_range(0.0f32..255.0)).collect()
//! };
//! let train = gen(1000);
//! let base = gen(500);
//! let index = IvfadcIndex::build(&train, &base, &IvfadcConfig::new(dim, 4)).unwrap();
//!
//! let query = &base[..dim];
//! let found = index.search(query, 5, SearchBackend::FastScan, 0.01).unwrap();
//! assert!(!found.neighbors.is_empty());
//! ```

pub mod coarse;
mod error;
pub mod index;
pub mod persist;

pub use coarse::CoarseQuantizer;
pub use error::IvfError;
pub use index::{IvfadcConfig, IvfadcIndex, SearchBackend, SearchOutcome};

//! Per-query span tracing.
//!
//! A [`QueryTrace`] records the stage breakdown of one search —
//! `coarse_quantize → residual/tables → probe[i] scan → merge` — with one
//! [`ProbeTrace`] per probed partition. Tracing is an explicit per-query
//! opt-in (the caller passes a trace to the traced search entry point), so
//! it is available even when the `telemetry` feature is off and costs
//! nothing on untraced queries.

/// How one probed partition ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Scanned to completion.
    Ok,
    /// The scan failed (e.g. an injected fault) and was dropped.
    Failed,
    /// Skipped before starting (deadline already expired).
    Skipped,
    /// Started but short-circuited by an in-flight deadline expiry.
    Deadline,
}

impl ProbeOutcome {
    /// Lowercase label used in waterfalls and metrics.
    pub fn name(self) -> &'static str {
        match self {
            ProbeOutcome::Ok => "ok",
            ProbeOutcome::Failed => "failed",
            ProbeOutcome::Skipped => "skipped",
            ProbeOutcome::Deadline => "deadline",
        }
    }
}

/// The record of one probed partition inside a [`QueryTrace`].
#[derive(Debug, Clone)]
pub struct ProbeTrace {
    /// Partition (inverted-list) index that was probed.
    pub partition: usize,
    /// Scan backend that ran the probe.
    pub backend: &'static str,
    /// How the probe ended.
    pub outcome: ProbeOutcome,
    /// Vectors scanned.
    pub scanned: u64,
    /// Vectors pruned before exact distance evaluation.
    pub pruned: u64,
    /// Time spent building/recomputing distance tables (ns).
    pub tables_ns: u64,
    /// Time spent scanning (ns).
    pub scan_ns: u64,
}

impl ProbeTrace {
    /// A probe that did no scan work (failed, skipped, or expired): the
    /// outcome carries all the information, every counter is zero.
    pub fn outcome_only(partition: usize, backend: &'static str, outcome: ProbeOutcome) -> Self {
        ProbeTrace {
            partition,
            backend,
            outcome,
            scanned: 0,
            pruned: 0,
            tables_ns: 0,
            scan_ns: 0,
        }
    }

    /// Fraction of scanned vectors that were pruned (0 when nothing was
    /// scanned).
    pub fn pruned_fraction(&self) -> f64 {
        if self.scanned == 0 {
            0.0
        } else {
            self.pruned as f64 / self.scanned as f64
        }
    }
}

/// The stage breakdown of one search, reusable across queries via
/// [`QueryTrace::reset`].
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Coarse quantization (partition selection) time (ns).
    pub coarse_ns: u64,
    /// Result-merge time (ns).
    pub merge_ns: u64,
    /// Whole-query wall time (ns).
    pub total_ns: u64,
    /// Per-probe records, in probe order.
    pub probes: Vec<ProbeTrace>,
}

impl QueryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Clears the trace for reuse, keeping the probe allocation.
    pub fn reset(&mut self) {
        self.coarse_ns = 0;
        self.merge_ns = 0;
        self.total_ns = 0;
        self.probes.clear();
    }

    /// Sum of all recorded stage durations (ns). For a sequentially
    /// executed query this is ≤ [`QueryTrace::total_ns`] and the acceptance
    /// check compares the two.
    pub fn stage_sum_ns(&self) -> u64 {
        self.coarse_ns
            + self.merge_ns
            + self
                .probes
                .iter()
                .map(|p| p.tables_ns + p.scan_ns)
                .sum::<u64>()
    }

    /// Renders the human-readable waterfall the CLI prints to stderr for
    /// `query --trace`:
    ///
    /// ```text
    /// query trace: total 412.3µs, 4 probes
    ///   coarse_quantize      12.3µs   3.0% |##
    ///   probe[0] p=17  avx2        tables  40.1µs scan 210.0µs  scanned=1200 pruned=93.2% ok
    ///   probe[1] p=3   avx2        tables  38.7µs scan 100.5µs  scanned=800 pruned=91.0% ok
    ///   merge                 2.1µs   0.5% |
    ///   stage sum 403.7µs (97.9% of wall)
    /// ```
    pub fn render_waterfall(&self) -> String {
        let total = self.total_ns.max(1);
        let pct = |ns: u64| ns as f64 * 100.0 / total as f64;
        let bar = |ns: u64| "#".repeat(((pct(ns) / 2.5).round() as usize).min(40));
        let mut out = format!(
            "query trace: total {}, {} probes\n",
            fmt_ns(self.total_ns),
            self.probes.len()
        );
        out.push_str(&format!(
            "  {:<18} {:>9} {:>5.1}% |{}\n",
            "coarse_quantize",
            fmt_ns(self.coarse_ns),
            pct(self.coarse_ns),
            bar(self.coarse_ns)
        ));
        for (i, p) in self.probes.iter().enumerate() {
            out.push_str(&format!(
                "  probe[{i}] p={:<4} {:<12} tables {:>9} scan {:>9}  scanned={} pruned={:.1}% {}\n",
                p.partition,
                p.backend,
                fmt_ns(p.tables_ns),
                fmt_ns(p.scan_ns),
                p.scanned,
                p.pruned_fraction() * 100.0,
                p.outcome.name()
            ));
        }
        out.push_str(&format!(
            "  {:<18} {:>9} {:>5.1}% |{}\n",
            "merge",
            fmt_ns(self.merge_ns),
            pct(self.merge_ns),
            bar(self.merge_ns)
        ));
        out.push_str(&format!(
            "  stage sum {} ({:.1}% of wall)\n",
            fmt_ns(self.stage_sum_ns()),
            pct(self.stage_sum_ns())
        ));
        out
    }
}

/// Formats a nanosecond duration with a human unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        QueryTrace {
            coarse_ns: 10_000,
            merge_ns: 5_000,
            total_ns: 120_000,
            probes: vec![
                ProbeTrace {
                    partition: 17,
                    backend: "avx2",
                    outcome: ProbeOutcome::Ok,
                    scanned: 1000,
                    pruned: 900,
                    tables_ns: 30_000,
                    scan_ns: 60_000,
                },
                ProbeTrace {
                    partition: 3,
                    backend: "naive",
                    outcome: ProbeOutcome::Skipped,
                    scanned: 0,
                    pruned: 0,
                    tables_ns: 0,
                    scan_ns: 0,
                },
            ],
        }
    }

    #[test]
    fn stage_sum_adds_all_stages() {
        assert_eq!(sample().stage_sum_ns(), 10_000 + 5_000 + 30_000 + 60_000);
    }

    #[test]
    fn pruned_fraction_handles_zero_scanned() {
        let t = sample();
        assert_eq!(t.probes[0].pruned_fraction(), 0.9);
        assert_eq!(t.probes[1].pruned_fraction(), 0.0);
    }

    #[test]
    fn waterfall_names_every_stage_and_outcome() {
        let text = sample().render_waterfall();
        assert!(text.contains("coarse_quantize"));
        assert!(text.contains("probe[0] p=17"));
        assert!(text.contains("avx2"));
        assert!(text.contains("pruned=90.0% ok"));
        assert!(text.contains("skipped"));
        assert!(text.contains("merge"));
        assert!(text.contains("stage sum"));
        assert!(text.contains("87.5% of wall"));
    }

    #[test]
    fn reset_keeps_allocation_and_clears_data() {
        let mut t = sample();
        t.reset();
        assert_eq!(t.total_ns, 0);
        assert!(t.probes.is_empty());
        assert_eq!(t.stage_sum_ns(), 0);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}

//! Workspace discovery: members, manifests, dependency graph.

use crate::toml_lite::{self, Doc, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One dependency declaration after workspace-inheritance resolution.
#[derive(Debug, Clone, Default)]
pub struct DepDecl {
    /// `default-features = false` was in effect (directly or inherited).
    pub no_default_features: bool,
    /// Features explicitly enabled on the dependency.
    pub features: Vec<String>,
    /// Declared under `[dev-dependencies]`.
    pub dev: bool,
}

/// A parsed workspace member.
#[derive(Debug, Clone)]
pub struct Member {
    /// `[package] name`.
    pub name: String,
    /// Directory containing the manifest, relative to the workspace root.
    pub dir: PathBuf,
    /// `dep name → declaration` (dev-deps included, flagged).
    pub deps: BTreeMap<String, DepDecl>,
    /// `[features]` table: `feature → enabled list`.
    pub features: BTreeMap<String, Vec<String>>,
}

impl Member {
    /// True when the crate exposes `feature` in its `[features]` table.
    pub fn exposes(&self, feature: &str) -> bool {
        self.features.contains_key(feature)
    }
}

/// The workspace: every member, with the root package (if any) included.
#[derive(Debug)]
pub struct Workspace {
    /// Members keyed by package name.
    pub members: BTreeMap<String, Member>,
}

/// Reads the workspace rooted at `root`. `exclude` filters member
/// directories by path prefix (e.g. `vendor`).
pub fn discover(root: &Path, exclude: &[String]) -> Result<Workspace, String> {
    let root_manifest_path = root.join("Cargo.toml");
    let src = std::fs::read_to_string(&root_manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest_path.display()))?;
    let root_doc = toml_lite::parse(&src);

    let mut member_dirs: Vec<PathBuf> = Vec::new();
    if let Some(globs) = root_doc
        .get("workspace", "members")
        .and_then(Value::as_array)
    {
        for glob in globs {
            member_dirs.extend(expand_glob(root, glob));
        }
    }
    // The root manifest may itself define a package (the facade crate).
    let has_root_package = root_doc.get("package", "name").is_some();

    let excluded = |dir: &Path| -> bool {
        let rel = dir.strip_prefix(root).unwrap_or(dir);
        let rel_str = rel.to_string_lossy();
        exclude.iter().any(|p| rel_str.starts_with(p.as_str()))
    };

    let mut members = BTreeMap::new();
    for dir in member_dirs {
        if excluded(&dir) {
            continue;
        }
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        let member = parse_member(root, &dir, &toml_lite::parse(&text), &root_doc)?;
        members.insert(member.name.clone(), member);
    }
    if has_root_package {
        let member = parse_member(root, root, &root_doc, &root_doc)?;
        members.insert(member.name.clone(), member);
    }
    Ok(Workspace { members })
}

fn expand_glob(root: &Path, glob: &str) -> Vec<PathBuf> {
    match glob.strip_suffix("/*") {
        Some(prefix) => {
            let base = root.join(prefix);
            let mut dirs: Vec<PathBuf> = std::fs::read_dir(&base)
                .map(|rd| {
                    rd.filter_map(Result::ok)
                        .map(|e| e.path())
                        .filter(|p| p.is_dir())
                        .collect()
                })
                .unwrap_or_default();
            dirs.sort();
            dirs
        }
        None => vec![root.join(glob)],
    }
}

fn parse_member(root: &Path, dir: &Path, doc: &Doc, root_doc: &Doc) -> Result<Member, String> {
    let name = doc
        .get("package", "name")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{}: missing [package] name", dir.display()))?
        .to_string();

    let mut deps = BTreeMap::new();
    for (section, dev) in [("dependencies", false), ("dev-dependencies", true)] {
        // Inline declarations: `name = { … }` / `name = "1.0"`.
        if let Some(table) = doc.table(section) {
            for (dep_name, value) in table {
                deps.insert(
                    dep_name.clone(),
                    resolve_dep(dep_name, value, root_doc, dev),
                );
            }
        }
        // Dotted / full-section declarations: `name.workspace = true` or
        // `[dependencies.name]`.
        for (dep_name, keys) in doc.tables_under(section) {
            let value = Value::Table(keys.clone());
            deps.insert(
                dep_name.to_string(),
                resolve_dep(dep_name, &value, root_doc, dev),
            );
        }
    }

    let mut features = BTreeMap::new();
    if let Some(table) = doc.table("features") {
        for (feat, value) in table {
            let list = value.as_array().map(<[String]>::to_vec).unwrap_or_default();
            features.insert(feat.clone(), list);
        }
    }

    Ok(Member {
        name,
        dir: dir.strip_prefix(root).unwrap_or(dir).to_path_buf(),
        deps,
        features,
    })
}

/// Resolves one dependency value, merging `workspace = true` inheritance
/// from `[workspace.dependencies]` in the root manifest.
fn resolve_dep(dep_name: &str, value: &Value, root_doc: &Doc, dev: bool) -> DepDecl {
    let mut decl = DepDecl {
        dev,
        ..DepDecl::default()
    };
    let mut apply = |table: &BTreeMap<String, Value>| {
        if table.get("default-features").and_then(Value::as_bool) == Some(false) {
            decl.no_default_features = true;
        }
        if let Some(feats) = table.get("features").and_then(Value::as_array) {
            decl.features.extend(feats.iter().cloned());
        }
    };
    let inherits_workspace = match value {
        Value::Table(t) => {
            apply(t);
            t.get("workspace").and_then(Value::as_bool) == Some(true)
        }
        _ => false,
    };
    if inherits_workspace {
        // `[workspace.dependencies] name = { … }` (inline) or
        // `[workspace.dependencies.name]` (dotted keys land in a subtable).
        if let Some(Value::Table(t)) = root_doc.get("workspace.dependencies", dep_name) {
            apply(t);
        }
        if let Some(t) = root_doc.table(&format!("workspace.dependencies.{dep_name}")) {
            apply(t);
        }
    }
    decl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_inheritance_merges_default_features() {
        let root_doc = toml_lite::parse(
            "[workspace.dependencies]\npqfs_obs = { path = \"crates/obs\", default-features = false }\n",
        );
        let decl = resolve_dep(
            "pqfs_obs",
            &Value::Table(
                [("workspace".to_string(), Value::Bool(true))]
                    .into_iter()
                    .collect(),
            ),
            &root_doc,
            false,
        );
        assert!(decl.no_default_features);
        assert!(!decl.dev);
    }
}

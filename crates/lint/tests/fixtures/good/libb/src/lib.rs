//! Fixture: forwards the tracked feature.
#![forbid(unsafe_code)]

pub fn nothing() {}

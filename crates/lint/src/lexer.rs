//! A minimal Rust lexer, sufficient for invariant checking.
//!
//! The lint does not need a full parser: every invariant it enforces is
//! visible in the token stream — `unsafe` keywords and the comments around
//! them, `.unwrap()` call chains, string-literal failpoint sites and metric
//! names, and crate-root inner attributes. The lexer therefore produces a
//! flat token list with line numbers, keeps comments as tokens (the SAFETY
//! check needs them), and marks the regions under `#[cfg(test)]` so checks
//! can skip test-only code.
//!
//! Handled: line/block comments (nested), doc comments, string / raw-string
//! / byte-string / char literals (with escapes), lifetimes vs. char
//! literals, raw identifiers, and numeric literals. Not handled (and not
//! needed): macro expansion and type resolution.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `unsafe`, `fn`, …).
    Ident,
    /// Single punctuation character.
    Punct,
    /// String literal of any flavor; `text` holds the *unescaped* contents.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// `//` or `/* */` comment; `text` holds the contents without markers.
    Comment,
    /// `///`, `//!`, `/** */` or `/*! */` doc comment.
    DocComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (contents for strings/comments, spelling otherwise).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

impl Tok {
    /// True for non-comment tokens (the ones syntax patterns match on).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::Comment | TokKind::DocComment)
    }
}

/// Lexes `src` into tokens and marks `#[cfg(test)]` regions.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut toks = raw_lex(src);
    mark_test_regions(&mut toks);
    toks
}

fn raw_lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let push = |toks: &mut Vec<Tok>, kind: TokKind, text: String, line: u32| {
        toks.push(Tok {
            kind,
            text,
            line,
            in_test: false,
        });
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let body: String = chars[start..j].iter().collect();
                let doc = body.starts_with('/') && !body.starts_with("//") || body.starts_with('!');
                let text = body.trim_start_matches(['/', '!']).trim_start().to_string();
                push(
                    &mut toks,
                    if doc {
                        TokKind::DocComment
                    } else {
                        TokKind::Comment
                    },
                    text,
                    line,
                );
                i = j;
                continue;
            }
            if chars[i + 1] == '*' {
                let tok_line = line;
                let mut j = i + 2;
                let doc =
                    j < n && (chars[j] == '*' || chars[j] == '!') && chars.get(j + 1) != Some(&'/');
                let mut depth = 1usize;
                let start = j;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                let text: String = chars[start..end].iter().collect();
                push(
                    &mut toks,
                    if doc {
                        TokKind::DocComment
                    } else {
                        TokKind::Comment
                    },
                    text.trim().to_string(),
                    tok_line,
                );
                i = j;
                continue;
            }
        }
        // Identifiers, keywords and prefixed literals (r"", b"", br"", r#id).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let ident: String = chars[start..j].iter().collect();
            // String-literal prefixes.
            let is_raw_start = |k: usize| -> Option<usize> {
                // Returns index of the opening quote after `#`s.
                let mut h = k;
                while h < n && chars[h] == '#' {
                    h += 1;
                }
                (h < n && chars[h] == '"').then_some(h)
            };
            if (ident == "r" || ident == "br" || ident == "b" || ident == "rb")
                && j < n
                && (chars[j] == '"' || (chars[j] == '#' && ident != "b"))
            {
                if ident == "b" && chars[j] == '"' {
                    // Byte string: lex like a normal string.
                    let (text, nj, nl) = lex_string(&chars, j, line);
                    push(&mut toks, TokKind::Str, text, line);
                    i = nj;
                    line = nl;
                    continue;
                }
                if let Some(q) = is_raw_start(j) {
                    let hashes = q - j;
                    let mut closing = String::from('"');
                    for _ in 0..hashes {
                        closing.push('#');
                    }
                    let mut k = q + 1;
                    let content_start = k;
                    let tok_line = line;
                    loop {
                        if k >= n {
                            break;
                        }
                        if chars[k] == '\n' {
                            line += 1;
                        }
                        if chars[k] == '"' {
                            let tail: String =
                                chars[k..(k + closing.len()).min(n)].iter().collect();
                            if tail == closing {
                                break;
                            }
                        }
                        k += 1;
                    }
                    let text: String = chars[content_start..k.min(n)].iter().collect();
                    push(&mut toks, TokKind::Str, text, tok_line);
                    i = (k + closing.len()).min(n);
                    continue;
                }
            }
            if ident == "r"
                && j + 1 < n
                && chars[j] == '#'
                && (chars[j + 1].is_alphabetic() || chars[j + 1] == '_')
            {
                // Raw identifier r#foo.
                let mut k = j + 1;
                while k < n && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                let text: String = chars[j + 1..k].iter().collect();
                push(&mut toks, TokKind::Ident, text, line);
                i = k;
                continue;
            }
            if ident == "b" && j < n && chars[j] == '\'' {
                // Byte literal b'x'.
                let (nj, nl) = skip_char_literal(&chars, j, line);
                push(&mut toks, TokKind::Char, String::new(), line);
                i = nj;
                line = nl;
                continue;
            }
            push(&mut toks, TokKind::Ident, ident, line);
            i = j;
            continue;
        }
        // String literals.
        if c == '"' {
            let tok_line = line;
            let (text, nj, nl) = lex_string(&chars, i, line);
            push(&mut toks, TokKind::Str, text, tok_line);
            i = nj;
            line = nl;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next_alpha = chars
                .get(i + 1)
                .is_some_and(|&c| c.is_alphabetic() || c == '_');
            let closes = chars.get(i + 2) == Some(&'\'');
            if next_alpha && !closes {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i + 1..j].iter().collect();
                push(&mut toks, TokKind::Lifetime, text, line);
                i = j;
                continue;
            }
            let (nj, nl) = skip_char_literal(&chars, i, line);
            push(&mut toks, TokKind::Char, String::new(), line);
            i = nj;
            line = nl;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n
                && (chars[j].is_alphanumeric()
                    || chars[j] == '_'
                    || (chars[j] == '.'
                        && chars.get(j + 1).is_some_and(char::is_ascii_digit)
                        && chars.get(j.wrapping_sub(1)) != Some(&'.')))
            {
                j += 1;
            }
            push(&mut toks, TokKind::Num, chars[i..j].iter().collect(), line);
            i = j;
            continue;
        }
        // Everything else: single punctuation character.
        push(&mut toks, TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    toks
}

/// Lexes a `"…"` string starting at the opening quote; returns the
/// unescaped contents, the index past the closing quote, and the new line.
fn lex_string(chars: &[char], start: usize, mut line: u32) -> (String, usize, u32) {
    let n = chars.len();
    let mut out = String::new();
    let mut i = start + 1;
    while i < n {
        match chars[i] {
            '"' => return (out, i + 1, line),
            '\\' if i + 1 < n => {
                match chars[i + 1] {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    '0' => out.push('\0'),
                    '\n' => line += 1, // line-continuation escape
                    other => out.push(other),
                }
                i += 2;
            }
            '\n' => {
                line += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, n, line)
}

/// Skips a `'…'` char/byte literal starting at the quote; returns the index
/// past the closing quote and the new line.
fn skip_char_literal(chars: &[char], start: usize, mut line: u32) -> (usize, u32) {
    let n = chars.len();
    let mut i = start + 1;
    while i < n {
        match chars[i] {
            '\'' => return (i + 1, line),
            '\\' => i += 2,
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (n, line)
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items as test code.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if is_attr_start(toks, i) {
            let attr_end = attr_group_end(toks, i);
            if attr_is_test(&toks[i..attr_end]) {
                // Skip any further attributes on the same item.
                let mut j = attr_end;
                while is_attr_start(toks, j) {
                    j = attr_group_end(toks, j);
                }
                let item_end = item_end(toks, j);
                for t in &mut toks[i..item_end] {
                    t.in_test = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
}

/// True when `toks[i]` begins an outer attribute `#[…]`.
fn is_attr_start(toks: &[Tok], i: usize) -> bool {
    code_tok(toks, i).is_some_and(|t| t.text == "#")
        && next_code(toks, i).is_some_and(|j| toks[j].text == "[")
}

fn code_tok(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks.get(i).filter(|t| t.is_code())
}

fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, t)| t.is_code())
        .map(|(j, _)| j)
}

/// Index one past the closing `]` of the attribute starting at `i`.
fn attr_group_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_code() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Does this attribute gate the item to test builds?
fn attr_is_test(attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg" | &"cfg_attr") => idents.contains(&"test"),
        _ => false,
    }
}

/// Index one past the end of the item starting at `i` (past its `;`, or
/// past the `}` matching its first top-level `{`).
fn item_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_code() {
            match toks[j].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_lifetimes() {
        let toks =
            lex("// plain\n/// doc\nfn f<'a>(s: &'a str) { let c = 'x'; let s = \"a\\\"b\"; }");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert_eq!(toks[0].text, "plain");
        assert_eq!(toks[1].kind, TokKind::DocComment);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "a\"b");
    }

    #[test]
    fn raw_strings_and_bytes() {
        let toks = lex(r####"let a = r#"raw "x" body"#; let b = b"bytes";"####);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, r#"raw "x" body"#);
        assert_eq!(strs[1].text, "bytes");
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let toks = lex(src);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(unwrap.in_test);
        let live2 = toks.iter().find(|t| t.text == "live2").unwrap();
        assert!(!live2.in_test);
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn real() {}";
        let toks = lex(src);
        assert!(toks.iter().find(|t| t.text == "unwrap").unwrap().in_test);
        assert!(!toks.iter().find(|t| t.text == "real").unwrap().in_test);
    }

    #[test]
    fn line_numbers_survive_block_comments() {
        let toks = lex("/* a\nb */ fn g() {}");
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 2);
    }
}

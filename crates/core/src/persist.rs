//! Binary persistence for trained quantizers.
//!
//! Training a product quantizer over millions of vectors takes minutes;
//! production deployments train once and serve many processes. This module
//! defines a small versioned little-endian format (`docs/FORMAT.md` has the
//! full specification):
//!
//! ```text
//! magic   "PQFS"                      4 bytes
//! version u32                         currently 3
//! header  section                     dim u64, m u64, nbits u8
//! codebooks section                   m × (ksub × dsub) f32, row-major
//! footer  u32                         CRC-32 of every preceding byte
//! ```
//!
//! Each *section* is length-prefixed (`u64`), CRC-32-checksummed, and its
//! length is validated against the expected size **before** any allocation
//! — a corrupt length prefix produces a typed error, never an OOM abort.
//! The trailing footer covers the whole file, so any single-byte flip or
//! truncation anywhere fails the load. Version 1 files (no checksums) are
//! still read back losslessly.
//!
//! [`save_pq_file`] writes **atomically**: the bytes go to a sibling
//! temporary file which is fsynced and then renamed over the destination,
//! so a crash mid-save never leaves a half-written artifact under the
//! published name.
//!
//! The format stores exactly the information [`ProductQuantizer`] holds; a
//! loaded quantizer is bit-identical to the saved one (encode/decode/ADC
//! all agree).
//!
//! Failpoint sites (see `pqfs_fault`): `core.persist.read`,
//! `core.persist.write`, `core.persist.create`, `core.persist.fsync`,
//! `core.persist.rename`.

use crate::checksum::{crc32, CrcRead, CrcWrite};
use crate::codebook::Codebook;
use crate::config::PqConfig;
use crate::pq::ProductQuantizer;
use crate::PqError;
use pqfs_fault::{FaultRead, FaultWrite};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"PQFS";
/// Current write version. Version 2 was never used by this format (the
/// IVFADC container jumped to 2 first); readers accept 1 and 3.
const VERSION: u32 = 3;
/// Oversized-header guard: dimensions above this are rejected before any
/// codebook allocation is attempted.
pub(crate) const MAX_DIM: u64 = 1 << 20;

/// Errors from quantizer persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structurally invalid or incompatible file.
    Format(String),
    /// The stored configuration is invalid.
    Config(PqError),
    /// A stored checksum does not match the data (bit rot, torn write).
    Checksum {
        /// Which checksummed region failed ("header", "codebooks", "file", …).
        section: &'static str,
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed over the data actually read.
        computed: u32,
    },
    /// A stored size exceeds the sanity limit for its field; the load is
    /// rejected before attempting the allocation.
    Limit {
        /// The offending field.
        what: &'static str,
        /// The stored value.
        value: u64,
        /// The maximum this implementation accepts.
        max: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
            PersistError::Config(e) => write!(f, "stored configuration invalid: {e}"),
            PersistError::Checksum {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Limit { what, value, max } => {
                write!(f, "{what} {value} exceeds the sanity limit {max}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Maps an EOF during a structured read to a typed truncation error.
fn truncated(what: &'static str, e: io::Error) -> PersistError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        PersistError::Format(format!("truncated {what}"))
    } else {
        PersistError::Io(e)
    }
}

/// Reads exactly `len` bytes, growing the buffer in bounded increments so
/// a lying length prefix on a short file errors out after at most one
/// chunk of over-allocation instead of OOM-aborting up front.
pub fn read_exact_vec(
    r: &mut impl Read,
    len: u64,
    what: &'static str,
) -> Result<Vec<u8>, PersistError> {
    const CHUNK: u64 = 1 << 22; // 4 MiB
    let mut buf = Vec::new();
    let mut left = len;
    while left > 0 {
        let take = left.min(CHUNK) as usize;
        let old = buf.len();
        buf.resize(old + take, 0);
        r.read_exact(&mut buf[old..])
            .map_err(|e| truncated(what, e))?;
        left -= take as u64;
    }
    Ok(buf)
}

/// Writes one v3 section: `len u64 | bytes | crc32(bytes) u32`.
pub fn write_section(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    w.write_all(&(bytes.len() as u64).to_le_bytes())?;
    w.write_all(bytes)?;
    w.write_all(&crc32(bytes).to_le_bytes())?;
    Ok(())
}

/// Reads one v3 section whose byte length must equal `expected_len`
/// exactly, verifying its checksum.
pub fn read_section(
    r: &mut impl Read,
    what: &'static str,
    expected_len: u64,
) -> Result<Vec<u8>, PersistError> {
    let len = read_u64(r).map_err(|e| truncated(what, e))?;
    if len != expected_len {
        return Err(PersistError::Format(format!(
            "{what} section is {len} bytes, expected {expected_len}"
        )));
    }
    let bytes = read_exact_vec(r, len, what)?;
    let stored = read_u32(r).map_err(|e| truncated(what, e))?;
    let computed = crc32(&bytes);
    if stored != computed {
        return Err(PersistError::Checksum {
            section: what,
            stored,
            computed,
        });
    }
    Ok(bytes)
}

/// Decodes a packed little-endian `f32` buffer, rejecting non-finite
/// values (corruption in a float section that a checksum bypass could
/// otherwise smuggle into distance computations).
pub fn decode_f32s(bytes: &[u8], what: &'static str) -> Result<Vec<f32>, PersistError> {
    let floats: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    if floats.iter().any(|v| !v.is_finite()) {
        return Err(PersistError::Format(format!("non-finite value in {what}")));
    }
    Ok(floats)
}

/// Writes a trained quantizer to `w` in format v3 (checksummed sections
/// plus a whole-file footer checksum).
///
/// # Errors
///
/// [`PersistError::Io`] on write failures.
pub fn save_pq(pq: &ProductQuantizer, w: &mut impl Write) -> Result<(), PersistError> {
    let mut cw = CrcWrite::new(&mut *w);
    cw.write_all(MAGIC)?;
    cw.write_all(&VERSION.to_le_bytes())?;

    let cfg = pq.config();
    let mut header = Vec::with_capacity(17);
    header.extend_from_slice(&(cfg.dim() as u64).to_le_bytes());
    header.extend_from_slice(&(cfg.m() as u64).to_le_bytes());
    header.push(cfg.nbits());
    write_section(&mut cw, &header)?;

    let mut codebooks = Vec::with_capacity(cfg.ksub() * cfg.dim() * 4);
    for j in 0..cfg.m() {
        for &v in pq.codebook(j).centroids() {
            codebooks.extend_from_slice(&v.to_le_bytes());
        }
    }
    write_section(&mut cw, &codebooks)?;

    let footer = cw.crc();
    w.write_all(&footer.to_le_bytes())?;
    Ok(())
}

/// Reads a quantizer previously written by [`save_pq`] (v3) or by the v1
/// writer (no checksums).
///
/// # Errors
///
/// [`PersistError::Format`] for bad magic/version/truncation/trailing
/// bytes, [`PersistError::Checksum`] when stored and computed checksums
/// disagree, [`PersistError::Limit`] for absurd stored sizes, and
/// [`PersistError::Config`] if the stored shape is invalid.
pub fn load_pq(r: &mut impl Read) -> Result<ProductQuantizer, PersistError> {
    let mut cr = CrcRead::new(&mut *r);
    let mut magic = [0u8; 4];
    cr.read_exact(&mut magic)
        .map_err(|e| truncated("magic", e))?;
    if &magic != MAGIC {
        return Err(PersistError::Format(format!("bad magic {magic:?}")));
    }
    let version = read_u32(&mut cr).map_err(|e| truncated("version", e))?;
    match version {
        1 => load_pq_v1(&mut cr),
        3 => load_pq_v3(cr),
        v => Err(PersistError::Format(format!(
            "unsupported version {v} (this build reads 1 and {VERSION})"
        ))),
    }
}

/// Parses the 17-byte header payload (shared by v1 and v3 bodies) into a
/// validated configuration.
fn parse_header(dim: u64, m: u64, nbits: u8) -> Result<PqConfig, PersistError> {
    if dim > MAX_DIM {
        return Err(PersistError::Limit {
            what: "dimension",
            value: dim,
            max: MAX_DIM,
        });
    }
    if m > dim {
        return Err(PersistError::Format(format!(
            "sub-quantizer count {m} exceeds dimension {dim}"
        )));
    }
    let config = PqConfig::new(dim as usize, m as usize, nbits).map_err(PersistError::Config)?;
    if !config.trainable() {
        return Err(PersistError::Format(format!(
            "stored nbits {nbits} exceeds the byte-code limit"
        )));
    }
    Ok(config)
}

/// Splits a decoded codebook float buffer into per-sub-quantizer codebooks.
fn build_codebooks(config: PqConfig, floats: Vec<f32>) -> ProductQuantizer {
    let per = config.ksub() * config.dsub();
    let codebooks = floats
        .chunks_exact(per)
        .map(|c| Codebook::new(c.to_vec(), config.dsub()))
        .collect();
    ProductQuantizer::from_codebooks(config, codebooks)
}

/// Little-endian `u64` from an 8-byte slice (sliced from a checked-length
/// section, so the conversion cannot fail).
fn read_le_u64(bytes: &[u8]) -> u64 {
    let arr: [u8; 8] = bytes
        .try_into()
        .unwrap_or_else(|_| unreachable!("caller slices exactly 8 bytes"));
    u64::from_le_bytes(arr)
}

/// The v3 body: checksummed header and codebook sections plus the
/// whole-file footer.
fn load_pq_v3(mut cr: CrcRead<&mut impl Read>) -> Result<ProductQuantizer, PersistError> {
    let header = read_section(&mut cr, "quantizer header", 17)?;
    let dim = read_le_u64(&header[0..8]);
    let m = read_le_u64(&header[8..16]);
    let config = parse_header(dim, m, header[16])?;

    let expected = config.m() as u64 * config.ksub() as u64 * config.dsub() as u64 * 4;
    let bytes = read_section(&mut cr, "codebooks", expected)?;
    let floats = decode_f32s(&bytes, "codebooks")?;

    let computed = cr.crc();
    let inner = cr.into_inner();
    let stored = read_u32(inner).map_err(|e| truncated("file footer", e))?;
    if stored != computed {
        return Err(PersistError::Checksum {
            section: "file",
            stored,
            computed,
        });
    }
    expect_eof(inner)?;
    Ok(build_codebooks(config, floats))
}

/// The legacy v1 body: raw header fields and codebook floats, no checksums.
fn load_pq_v1(r: &mut impl Read) -> Result<ProductQuantizer, PersistError> {
    let dim = read_u64(r).map_err(|e| truncated("header", e))?;
    let m = read_u64(r).map_err(|e| truncated("header", e))?;
    let mut nbits = [0u8; 1];
    r.read_exact(&mut nbits)
        .map_err(|e| truncated("header", e))?;
    let config = parse_header(dim, m, nbits[0])?;

    let len = config.m() as u64 * config.ksub() as u64 * config.dsub() as u64 * 4;
    let bytes = read_exact_vec(r, len, "codebook data")?;
    let floats = decode_f32s(&bytes, "codebook data")?;
    expect_eof(r)?;
    Ok(build_codebooks(config, floats))
}

/// Rejects trailing garbage so corrupted files fail loudly.
pub fn expect_eof(r: &mut impl Read) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(PersistError::Format("trailing bytes after footer".into())),
    }
}

/// The failpoint site names an [`atomic_write_file`] call probes.
#[derive(Debug, Clone, Copy)]
pub struct AtomicWriteSites {
    /// Probed before creating the temporary file.
    pub create: &'static str,
    /// Wraps every byte written ([`FaultWrite`]).
    pub write: &'static str,
    /// Probed before fsyncing the temporary file.
    pub fsync: &'static str,
    /// Probed before renaming it over the destination.
    pub rename: &'static str,
}

/// Crash-safe file replacement: writes through `write_fn` to a sibling
/// temporary file, fsyncs it, and renames it over `path`. On any failure
/// the temporary file is removed and the previous artifact at `path` is
/// left untouched — a reader never observes a half-written file.
///
/// # Errors
///
/// [`PersistError::Io`] on create/write/fsync/rename failures (including
/// injected ones), or whatever `write_fn` returns.
pub fn atomic_write_file<F>(
    path: impl AsRef<Path>,
    sites: AtomicWriteSites,
    write_fn: F,
) -> Result<(), PersistError>
where
    F: FnOnce(&mut io::BufWriter<FaultWrite<std::fs::File>>) -> Result<(), PersistError>,
{
    let path = path.as_ref();
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp: PathBuf = path.with_file_name(name);

    let result = (|| {
        pqfs_fault::check(sites.create)?;
        let file = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(FaultWrite::new(file, sites.write));
        write_fn(&mut w)?;
        w.flush()?;
        let file = w.into_inner().map_err(|e| e.into_error())?.into_inner();
        pqfs_fault::check(sites.fsync)?;
        file.sync_all()?;
        drop(file);
        pqfs_fault::check(sites.rename)?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable: fsync the containing directory.
        #[cfg(unix)]
        {
            let dir = match path.parent() {
                Some(d) if !d.as_os_str().is_empty() => d,
                _ => Path::new("."),
            };
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Saves a quantizer to a file, atomically (temp file + fsync + rename).
///
/// # Errors
///
/// [`PersistError::Io`] on any IO failure; the destination is left
/// untouched in that case.
pub fn save_pq_file(pq: &ProductQuantizer, path: impl AsRef<Path>) -> Result<(), PersistError> {
    atomic_write_file(
        path,
        AtomicWriteSites {
            create: "core.persist.create",
            write: "core.persist.write",
            fsync: "core.persist.fsync",
            rename: "core.persist.rename",
        },
        |w| save_pq(pq, w),
    )
}

/// Loads a quantizer from a file.
///
/// # Errors
///
/// As [`load_pq`], plus [`PersistError::Io`] for open/read failures.
pub fn load_pq_file(path: impl AsRef<Path>) -> Result<ProductQuantizer, PersistError> {
    let file = std::fs::File::open(path)?;
    let mut r = io::BufReader::new(FaultRead::new(file, "core.persist.read"));
    load_pq(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> ProductQuantizer {
        let mut rng = StdRng::seed_from_u64(77);
        let config = PqConfig::new(16, 4, 4).unwrap();
        let data: Vec<f32> = (0..300 * 16)
            .map(|_| rng.gen_range(0.0f32..255.0))
            .collect();
        ProductQuantizer::train(&data, &config, 3).unwrap()
    }

    #[test]
    fn roundtrip_preserves_quantizer_exactly() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();
        let loaded = load_pq(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), pq.config());
        for j in 0..4 {
            assert_eq!(loaded.codebook(j).centroids(), pq.codebook(j).centroids());
        }
        // Behavioral equality on a probe vector.
        let v = vec![42.5f32; 16];
        assert_eq!(loaded.encode(&v), pq.encode(&v));
    }

    #[test]
    fn file_roundtrip() {
        let pq = trained();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-persist-{}.pqfs", std::process::id()));
        save_pq_file(&pq, &path).unwrap();
        let loaded = load_pq_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.config(), pq.config());
    }

    /// Builds a v1 (checksum-free) image of `pq` with the legacy layout.
    fn v1_bytes(pq: &ProductQuantizer) -> Vec<u8> {
        let cfg = pq.config();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(cfg.dim() as u64).to_le_bytes());
        buf.extend_from_slice(&(cfg.m() as u64).to_le_bytes());
        buf.push(cfg.nbits());
        for j in 0..cfg.m() {
            for &v in pq.codebook(j).centroids() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn v1_files_still_load_losslessly() {
        let pq = trained();
        let loaded = load_pq(&mut v1_bytes(&pq).as_slice()).unwrap();
        assert_eq!(loaded.config(), pq.config());
        for j in 0..4 {
            assert_eq!(loaded.codebook(j).centroids(), pq.codebook(j).centroids());
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            load_pq(&mut bad_magic.as_slice()),
            Err(PersistError::Format(_))
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(matches!(
            load_pq(&mut bad_version.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();

        let truncated = &buf[..buf.len() - 5];
        assert!(load_pq(&mut &truncated[..]).is_err());

        let mut padded = buf.clone();
        padded.push(0);
        assert!(matches!(
            load_pq(&mut padded.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_invalid_stored_config() {
        // Handcraft a v1 header with dim not divisible by m.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PQFS");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&17u64.to_le_bytes()); // dim 17
        buf.extend_from_slice(&4u64.to_le_bytes()); // m 4
        buf.push(4); // nbits
        assert!(matches!(
            load_pq(&mut buf.as_slice()),
            Err(PersistError::Config(_))
        ));
    }

    #[test]
    fn rejects_absurd_dimension_before_allocating() {
        // A v1 header claiming a 2^60 dimension must fail on the Limit
        // check, not OOM trying to allocate codebooks.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PQFS");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        buf.extend_from_slice(&8u64.to_le_bytes());
        buf.push(8);
        assert!(matches!(
            load_pq(&mut buf.as_slice()),
            Err(PersistError::Limit { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_centroids() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();
        // Overwrite the first centroid float with NaN and repair both the
        // section and footer checksums, isolating the finiteness check.
        let sec = 4 + 4 + 8 + 17 + 4 + 8; // magic+ver+hdr section+codebook len
        buf[sec..sec + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let cb_len = buf.len() - sec - 4 - 4; // minus section crc and footer
        let crc = crc32(&buf[sec..sec + cb_len]);
        let crc_pos = sec + cb_len;
        buf[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        let footer = crc32(&buf[..buf.len() - 4]);
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&footer.to_le_bytes());
        assert!(matches!(
            load_pq(&mut buf.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn checksum_mismatch_is_a_typed_error() {
        let pq = trained();
        let mut buf = Vec::new();
        save_pq(&pq, &mut buf).unwrap();
        // Flip one codebook byte: the section checksum catches it first.
        let sec = 4 + 4 + 8 + 17 + 4 + 8;
        buf[sec] ^= 1;
        assert!(matches!(
            load_pq(&mut buf.as_slice()),
            Err(PersistError::Checksum { .. })
        ));
    }

    #[test]
    fn failed_save_leaves_the_previous_artifact_intact() {
        let _lock = pqfs_fault::exclusive();
        let pq = trained();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-atomic-{}.pqfs", std::process::id()));
        save_pq_file(&pq, &path).unwrap();

        for site in [
            "core.persist.create",
            "core.persist.write",
            "core.persist.fsync",
            "core.persist.rename",
        ] {
            let _g = pqfs_fault::scoped(site, pqfs_fault::FaultAction::Error);
            let err = save_pq_file(&pq, &path).unwrap_err();
            assert!(matches!(err, PersistError::Io(_)), "{site}: {err}");
            // The previously published artifact still loads.
            let loaded = load_pq_file(&path).unwrap();
            assert_eq!(loaded.config(), pq.config(), "{site}");
        }
        // A torn write (short_write) must also leave the artifact intact
        // and clean up its temp file.
        {
            let _g = pqfs_fault::scoped(
                "core.persist.write",
                pqfs_fault::FaultAction::ShortWrite(100),
            );
            assert!(save_pq_file(&pq, &path).is_err());
            assert!(load_pq_file(&path).is_ok());
        }
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("pqfs-atomic-{}.pqfs.tmp", std::process::id()))
            })
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

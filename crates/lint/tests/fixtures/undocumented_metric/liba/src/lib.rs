//! Fixture: metric hygiene violations.
#![forbid(unsafe_code)]

pub fn metrics() {
    let _a = LazyCounter::new("pqfs_documented_total");
    let _b = LazyCounter::new("pqfs_missing_total");
    let _c = LazyGauge::new("bad-name");
}

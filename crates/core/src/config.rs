//! `PQ m×b` configurations (paper §2.1).
//!
//! The paper writes `PQ m×log2(k*)` for a product quantizer with `m`
//! sub-quantizers of `k*` centroids each; any configuration with
//! `m × log2(k*) = 64` yields `2^64` product centroids. Table 1 compares
//! `PQ 16×4` (L1-resident tables), `PQ 8×8` (L1) and `PQ 4×16` (L3) and the
//! paper settles on `PQ 8×8`, which is also this crate's default.

use crate::PqError;

/// Shape of a product quantizer: `m` sub-quantizers with `2^nbits` centroids
/// each over `dim`-dimensional vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PqConfig {
    dim: usize,
    m: usize,
    nbits: u8,
}

impl PqConfig {
    /// Builds and validates a configuration.
    ///
    /// # Errors
    ///
    /// * [`PqError::BadConfig`] if `dim`, `m` or `nbits` is zero, `dim` is
    ///   not a multiple of `m`, or `nbits > 16`.
    pub fn new(dim: usize, m: usize, nbits: u8) -> Result<Self, PqError> {
        if dim == 0 || m == 0 || nbits == 0 || nbits > 16 || dim % m != 0 {
            return Err(PqError::BadConfig { dim, m, nbits });
        }
        Ok(PqConfig { dim, m, nbits })
    }

    /// The paper's preferred `PQ 8×8` (8 sub-quantizers × 256 centroids).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a positive multiple of 8.
    pub fn pq8x8(dim: usize) -> Self {
        PqConfig::new(dim, 8, 8)
            // Documented panic: the `# Panics` section is this constructor's
            // contract. pqfs-lint: allow(forbidden-panic)
            .expect("dim must be a positive multiple of 8")
    }

    /// `PQ 16×4` (16 sub-quantizers × 16 centroids), Table 1's first row.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a positive multiple of 16.
    pub fn pq16x4(dim: usize) -> Self {
        PqConfig::new(dim, 16, 4)
            // Documented panic: the `# Panics` section is this constructor's
            // contract. pqfs-lint: allow(forbidden-panic)
            .expect("dim must be a positive multiple of 16")
    }

    /// `PQ 4×16` (4 sub-quantizers × 65536 centroids), Table 1's third row.
    /// Representable for size/cost analysis; training is rejected because a
    /// 65536-centroid sub-quantizer is intractable (as the paper notes).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a positive multiple of 4.
    pub fn pq4x16(dim: usize) -> Self {
        PqConfig::new(dim, 4, 16)
            // Documented panic: the `# Panics` section is this constructor's
            // contract. pqfs-lint: allow(forbidden-panic)
            .expect("dim must be a positive multiple of 4")
    }

    /// Vector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sub-quantizers `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Bits per component index, `log2(k*)`.
    pub fn nbits(&self) -> u8 {
        self.nbits
    }

    /// Centroids per sub-quantizer, `k* = 2^nbits`.
    pub fn ksub(&self) -> usize {
        1usize << self.nbits
    }

    /// Sub-vector dimensionality `d* = d / m`.
    pub fn dsub(&self) -> usize {
        self.dim / self.m
    }

    /// Total number of product centroids, `k = (k*)^m`, as a `log2` so the
    /// paper's `2^64` configurations don't overflow.
    pub fn log2_k(&self) -> u32 {
        self.m as u32 * self.nbits as u32
    }

    /// Bytes of one stored code (`m` indexes of `nbits` bits, rounded up to
    /// whole bytes per the row-major layout of Figure 1).
    pub fn code_bytes(&self) -> usize {
        (self.m * self.nbits as usize).div_ceil(8)
    }

    /// Bytes of the per-query distance tables: `m × k* × sizeof(f32)`
    /// (§3.1: this size decides which cache level holds them — Table 1).
    pub fn table_bytes(&self) -> usize {
        self.m * self.ksub() * std::mem::size_of::<f32>()
    }

    /// Whether this configuration can be trained by this crate (codes are
    /// stored one byte per component, so `nbits ≤ 8`).
    pub fn trainable(&self) -> bool {
        self.nbits <= 8
    }
}

impl std::fmt::Display for PqConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PQ {}x{} (dim {})", self.m, self.nbits, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_have_correct_shapes() {
        let p8 = PqConfig::pq8x8(128);
        assert_eq!((p8.m(), p8.ksub(), p8.dsub()), (8, 256, 16));
        assert_eq!(p8.log2_k(), 64);
        assert_eq!(p8.code_bytes(), 8);
        // Table 1: PQ 8x8 tables are 8 KiB -> L1-resident (32 KiB L1).
        assert_eq!(p8.table_bytes(), 8 * 256 * 4);

        let p16 = PqConfig::pq16x4(128);
        assert_eq!((p16.m(), p16.ksub(), p16.dsub()), (16, 16, 8));
        assert_eq!(p16.log2_k(), 64);
        // 16 × 16 × 4 B = 1 KiB -> L1.
        assert_eq!(p16.table_bytes(), 1024);

        let p4 = PqConfig::pq4x16(128);
        assert_eq!((p4.m(), p4.ksub(), p4.dsub()), (4, 65536, 32));
        assert_eq!(p4.log2_k(), 64);
        // 4 × 65536 × 4 B = 1 MiB -> L3 only.
        assert_eq!(p4.table_bytes(), 1 << 20);
        assert!(!p4.trainable());
    }

    #[test]
    fn rejects_invalid_shapes() {
        assert!(PqConfig::new(0, 8, 8).is_err());
        assert!(PqConfig::new(128, 0, 8).is_err());
        assert!(PqConfig::new(128, 8, 0).is_err());
        assert!(PqConfig::new(128, 8, 17).is_err());
        assert!(PqConfig::new(130, 8, 8).is_err(), "dim must divide by m");
    }

    #[test]
    fn code_bytes_rounds_up_for_sub_byte_indexes() {
        // PQ 16×4: 16 indexes of 4 bits = 8 bytes.
        assert_eq!(PqConfig::pq16x4(128).code_bytes(), 8);
        // 3 sub-quantizers of 4 bits = 12 bits -> 2 bytes.
        assert_eq!(PqConfig::new(12, 3, 4).unwrap().code_bytes(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PqConfig::pq8x8(128).to_string(), "PQ 8x8 (dim 128)");
    }
}

//! Fixture: unsafe-allowlisted crate that forbids unsafe code.
#![forbid(unsafe_code)]

pub fn nothing() {}

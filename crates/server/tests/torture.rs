//! Wire-fault torture: injected short reads, short writes, bit flips,
//! accept failures, and decode faults must always surface as clean
//! protocol errors or closed connections — never a panic, never a hung
//! connection, and never a wedged server.
//!
//! Gated on the `failpoints` feature (default-on); each test holds
//! [`pqfs_fault::exclusive`] because the registry is process-global, and
//! arms with `arm_limited` so exactly one connection absorbs the fault
//! and the follow-up liveness probe sees a healthy server.
#![cfg(feature = "failpoints")]

use pqfs_fault::{arm_limited, disarm_all, FaultAction};
use pqfs_ivf::{IvfadcConfig, IvfadcIndex};
use pqfs_server::proto::{ErrorCode, QueryParams, Response};
use pqfs_server::server::{Server, ServerConfig, ServerHandle};
use pqfs_server::{Client, ClientError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 16;
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn start_server() -> ServerHandle {
    let mut rng = StdRng::seed_from_u64(21);
    let mut gen =
        |n: usize| -> Vec<f32> { (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect() };
    let train = gen(1000);
    let base = gen(300);
    let config = IvfadcConfig::new(DIM, 4);
    let index = Arc::new(IvfadcIndex::build(&train, &base, &config).expect("fixture index"));
    Server::start(index, ServerConfig::default()).expect("bind loopback")
}

fn sample_query() -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
}

/// Sends one query into the faulted connection; the outcome must be a
/// clean typed result — a transport error or a typed error frame, with
/// no panic and no hang past the client timeout.
fn faulted_roundtrip(handle: &ServerHandle) -> Result<Response, ClientError> {
    let mut client =
        Client::connect_with(handle.local_addr(), Some(CLIENT_TIMEOUT)).expect("connect");
    client.query(
        &sample_query(),
        QueryParams {
            topk: 3,
            nprobe: 1,
            keep: 0.05,
            ..QueryParams::default()
        },
    )
}

/// A fresh connection after the fault must see a fully healthy server.
fn assert_server_alive(handle: &ServerHandle) {
    let mut probe =
        Client::connect_with(handle.local_addr(), Some(CLIENT_TIMEOUT)).expect("reconnect");
    let health = probe.health().expect("server still serving after fault");
    assert_eq!(health.dim as usize, DIM);
    let response = probe
        .query(
            &sample_query(),
            QueryParams {
                topk: 3,
                nprobe: 1,
                keep: 0.05,
                ..QueryParams::default()
            },
        )
        .expect("queries still answered after fault");
    assert!(
        matches!(response, Response::Query(_)),
        "healthy answer after fault: {response:?}"
    );
}

/// The acceptable outcomes of a faulted round trip: either the transport
/// broke (typed client error) or the server answered with a typed
/// bad-frame error. Anything else — especially a normal answer — means
/// the fault was silently swallowed.
fn assert_clean_failure(outcome: Result<Response, ClientError>, what: &str) {
    match outcome {
        Err(ClientError::Io(_)) | Err(ClientError::Proto(_)) | Err(ClientError::Disconnected) => {}
        Ok(Response::Error {
            code: ErrorCode::BadFrame,
            ..
        }) => {}
        other => panic!("{what}: expected a clean failure, got {other:?}"),
    }
}

#[test]
fn short_read_on_the_wire_is_a_clean_protocol_error() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    // The server's reader hits EOF 5 bytes into the request header.
    arm_limited("server.conn.read", FaultAction::ShortRead(5), 1);
    assert_clean_failure(faulted_roundtrip(&handle), "short read");
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn bitflip_on_the_wire_fails_the_crc_not_the_server() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    // Flip a payload byte (offset past the 12-byte header) on the read
    // path: the frame CRC must catch it.
    arm_limited("server.conn.read", FaultAction::BitFlip(20), 1);
    let outcome = faulted_roundtrip(&handle);
    assert_clean_failure(outcome, "read bitflip");
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn bitflip_in_the_header_is_rejected() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    // Flip the first magic byte.
    arm_limited("server.conn.read", FaultAction::BitFlip(0), 1);
    assert_clean_failure(faulted_roundtrip(&handle), "header bitflip");
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn short_write_of_the_response_drops_the_connection_cleanly() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    // The server's response write tears after 6 bytes; the client must
    // see a truncated frame or a hangup, never a hang.
    arm_limited("server.conn.write", FaultAction::ShortWrite(6), 1);
    let outcome = faulted_roundtrip(&handle);
    assert!(
        outcome.is_err(),
        "torn response must not parse: {outcome:?}"
    );
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn read_error_mid_frame_is_contained() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    arm_limited("server.conn.read", FaultAction::Error, 1);
    assert_clean_failure(faulted_roundtrip(&handle), "read error");
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn accept_fault_drops_the_connection_but_not_the_acceptor() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    arm_limited("server.accept", FaultAction::Error, 1);
    // The connection is accepted by the kernel then dropped by the
    // server; the round trip must fail cleanly.
    let outcome = faulted_roundtrip(&handle);
    assert!(
        outcome.is_err(),
        "dropped-at-accept connection must error: {outcome:?}"
    );
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn decode_fault_answers_bad_frame_and_closes() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    arm_limited("server.proto.decode", FaultAction::Error, 1);
    assert_clean_failure(faulted_roundtrip(&handle), "decode fault");
    disarm_all();
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

#[test]
fn raw_garbage_bytes_get_a_typed_error_never_a_hang() {
    let _lock = pqfs_fault::exclusive();
    disarm_all();
    let handle = start_server();
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write garbage");
    // The server answers with a typed bad-frame error (or just hangs
    // up); either way the read terminates.
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    if !buf.is_empty() {
        let frame = pqfs_server::read_frame(&mut &buf[..])
            .expect("server speaks its own protocol even on garbage input")
            .expect("one frame");
        let response = Response::from_frame(&frame).expect("typed error frame");
        assert!(
            matches!(
                response,
                Response::Error {
                    code: ErrorCode::BadFrame,
                    ..
                }
            ),
            "garbage answered with bad-frame: {response:?}"
        );
    }
    assert_server_alive(&handle);
    handle.shutdown_and_join();
}

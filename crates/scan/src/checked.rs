//! Differential shadow-execution of SIMD kernels (feature `checked-kernels`).
//!
//! Every SIMD fast-scan, vertical-add and gather kernel in this crate has a
//! portable scalar fallback that is **bit-identical by construction** (same
//! accumulation order, same arithmetic). With `checked-kernels` enabled, a
//! sampled subset of kernel invocations re-runs the portable fallback on the
//! same inputs and asserts the outputs match bit for bit — a cheap, always-on
//! guard against miscompiled intrinsics, broken runtime dispatch, or a kernel
//! change that silently diverges from its oracle.
//!
//! Sampling is controlled by `PQFS_CHECK_RATE`: check every Nth invocation
//! (default 64). `PQFS_CHECK_RATE=1` checks every call; `PQFS_CHECK_RATE=0`
//! disables checking without recompiling. The counter is a single relaxed
//! atomic, so the cost of an unsampled call is one fetch-add.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default sampling period: one shadow execution per 64 kernel invocations.
pub const DEFAULT_CHECK_RATE: u64 = 64;

static CALLS: AtomicU64 = AtomicU64::new(0);
static RATE: OnceLock<u64> = OnceLock::new();

fn rate() -> u64 {
    *RATE.get_or_init(|| match std::env::var("PQFS_CHECK_RATE") {
        Ok(v) => v.trim().parse().unwrap_or(DEFAULT_CHECK_RATE),
        Err(_) => DEFAULT_CHECK_RATE,
    })
}

/// Forces the sampling rate, overriding `PQFS_CHECK_RATE` if neither has
/// been read yet (first writer wins). Lets tests guarantee every kernel
/// invocation is shadow-checked without racing on the process environment.
pub fn force_rate(r: u64) {
    let _ = RATE.set(r);
}

/// True when this kernel invocation is sampled for shadow execution.
#[inline]
pub fn should_check() -> bool {
    let r = rate();
    if r == 0 {
        return false;
    }
    CALLS.fetch_add(1, Ordering::Relaxed) % r == 0
}

/// Asserts two per-lane distance buffers are bit-identical, with a
/// diagnostic naming the kernel and the first diverging lane.
#[track_caller]
pub fn assert_lanes_match(kernel: &str, simd: &[f32], portable: &[f32]) {
    assert_eq!(
        simd.len(),
        portable.len(),
        "checked-kernels[{kernel}]: lane count mismatch"
    );
    for (lane, (s, p)) in simd.iter().zip(portable).enumerate() {
        assert!(
            s.to_bits() == p.to_bits(),
            "checked-kernels[{kernel}]: lane {lane} diverged: simd={s} ({:#010x}) \
             portable={p} ({:#010x})",
            s.to_bits(),
            p.to_bits(),
        );
    }
}

/// Asserts two candidate visit sequences (`(group, index_in_group)` pairs,
/// in visit order) are identical, with a diagnostic naming the kernel and
/// the first divergence.
#[track_caller]
pub fn assert_visits_match(kernel: &str, simd: &[(usize, usize)], portable: &[(usize, usize)]) {
    let n = simd.len().min(portable.len());
    for i in 0..n {
        let (sg, si) = simd[i];
        let (pg, pi) = portable[i];
        assert!(
            sg == pg && si == pi,
            "checked-kernels[{kernel}]: visit {i} diverged: simd=(g{sg}, {si}) \
             portable=(g{pg}, {pi})"
        );
    }
    assert_eq!(
        simd.len(),
        portable.len(),
        "checked-kernels[{kernel}]: visit count diverged (simd={}, portable={})",
        simd.len(),
        portable.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_lanes_pass() {
        assert_lanes_match("test", &[1.0, -0.0], &[1.0, -0.0]);
    }

    #[test]
    #[should_panic(expected = "lane 1 diverged")]
    fn sign_of_zero_is_compared_bitwise() {
        assert_lanes_match("test", &[1.0, 0.0], &[1.0, -0.0]);
    }

    #[test]
    #[should_panic(expected = "visit count diverged")]
    fn missing_visit_is_detected() {
        assert_visits_match("test", &[(1, 2)], &[(1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "visit 0 diverged")]
    fn reordered_visit_is_detected() {
        assert_visits_match("test", &[(1, 2), (2, 3)], &[(2, 3), (1, 2)]);
    }
}

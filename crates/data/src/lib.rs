//! Dataset substrate for the PQ Fast Scan reproduction.
//!
//! The paper evaluates on ANN_SIFT1B, which cannot be shipped with this
//! repository. This crate provides (DESIGN §2):
//!
//! * [`synthetic`] — a seeded SIFT-like mixture-of-Gaussians generator that
//!   reproduces the properties the algorithms care about (byte-range
//!   coordinates, clustered structure, distance contrast);
//! * [`io`] — readers/writers for the TEXMEX `.fvecs`/`.bvecs`/`.ivecs`
//!   formats, so the real corpus can be dropped in when available;
//! * [`groundtruth`] — exact brute-force k-NN for recall measurements.

#![forbid(unsafe_code)]

pub mod groundtruth;
pub mod io;
pub mod synthetic;

pub use groundtruth::{exact_knn, exact_knn_batch, TrueNeighbor};
pub use io::{
    read_bvecs, read_fvecs, read_ivecs, write_bvecs, write_fvecs, write_ivecs, DataError,
    VectorFile,
};
pub use synthetic::{generate, SyntheticConfig, SyntheticDataset};

//! IVFADC — the indexed ANN search system PQ Fast Scan plugs into
//! (paper §2.2, following Jégou et al. [14]).
//!
//! Answering a query takes three steps (Algorithm 1):
//!
//! 1. **partition selection** — the coarse quantizer's Voronoi cell the
//!    query falls into ([`CoarseQuantizer`]);
//! 2. **distance tables** — per-query tables over the *residual*
//!    `y − c(y)`;
//! 3. **scan** — any backend from the `pqfs-scan` registry over the
//!    partition's codes (>99 % of query CPU time for multi-million-vector
//!    partitions, which is why the paper attacks this step).
//!
//! # Backend dispatch
//!
//! [`SearchBackend`] is a re-export of the scan crate's `Backend` registry
//! enum. At build time, [`IvfadcConfig::backends`] lists the backends each
//! partition prepares (via `Scanner::prepare`: row-major baselines share
//! the partition's code storage, the transposed baselines keep a transposed
//! copy, Fast Scan keeps its grouped/packed index); at query time,
//! [`IvfadcIndex::search`] routes to the prepared state for the requested
//! backend. There is **no per-backend `match` in this crate** — adding a
//! kernel to the scan registry makes it available here by listing it in
//! `backends`. Every backend returns the exact same neighbors, which the
//! test suites of both crates verify.
//!
//! ```
//! use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
//! use rand::{Rng, SeedableRng, rngs::StdRng};
//!
//! let dim = 16;
//! let mut rng = StdRng::seed_from_u64(3);
//! let mut gen = |n: usize| -> Vec<f32> {
//!     (0..n * dim).map(|_| rng.gen_range(0.0f32..255.0)).collect()
//! };
//! let train = gen(1000);
//! let base = gen(500);
//! // Prepare every registered backend, not just the default three.
//! let config = IvfadcConfig::new(dim, 4).with_backends(SearchBackend::ALL.to_vec());
//! let index = IvfadcIndex::build(&train, &base, &config).unwrap();
//!
//! let query = &base[..dim];
//! let reference = index.search(query, 5, SearchBackend::Naive, 0.0).unwrap();
//! for backend in SearchBackend::ALL {
//!     let found = index.search(query, 5, backend, 0.01).unwrap();
//!     let ids = |o: &pqfs_ivf::SearchOutcome| {
//!         o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
//!     };
//!     assert_eq!(ids(&found), ids(&reference), "{backend} must be exact");
//! }
//! ```

#![forbid(unsafe_code)]

pub mod coarse;
mod error;
pub mod index;
pub mod persist;

pub use coarse::CoarseQuantizer;
pub use error::IvfError;
pub use index::{IvfadcConfig, IvfadcIndex, SearchBackend, SearchHealth, SearchOutcome};

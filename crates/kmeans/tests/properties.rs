//! Property-based tests of the clustering substrate.

use pqfs_kmeans::{train, train_same_size, KMeansConfig, SameSizeConfig};
use proptest::prelude::*;

fn flat_points(points: &[Vec<f32>]) -> Vec<f32> {
    points.iter().flatten().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every trained model assigns points to their true nearest centroid
    /// and its inertia equals the sum of assignment distances.
    #[test]
    fn assignment_is_nearest_and_inertia_consistent(
        points in prop::collection::vec(prop::collection::vec(0.0f32..100.0, 3), 8..60),
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        prop_assume!(points.len() >= k);
        let data = flat_points(&points);
        let model = train(&data, 3, &KMeansConfig::new(k).with_seed(seed)).unwrap();
        prop_assert_eq!(model.k(), k);

        let mut manual_inertia = 0f64;
        for p in points.iter() {
            let (assigned, d) = model.assign(p);
            manual_inertia += d as f64;
            // Exhaustively verify the argmin.
            for c in 0..k {
                let dc: f32 = p
                    .iter()
                    .zip(model.centroid(c))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                prop_assert!(d <= dc + 1e-3, "assigned {assigned} but {c} is closer");
            }
        }
        // Inertia reported == inertia recomputed (within float slack).
        prop_assert!((model.inertia() - manual_inertia).abs() <= 1e-2 * manual_inertia.max(1.0));
    }

    /// k-means never leaves a centroid "empty": every centroid is the
    /// nearest centroid of at least zero points but remains finite.
    #[test]
    fn centroids_are_always_finite(
        points in prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 2), 5..40),
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        prop_assume!(points.len() >= k);
        let data = flat_points(&points);
        let model = train(&data, 2, &KMeansConfig::new(k).with_seed(seed)).unwrap();
        prop_assert!(model.centroids().iter().all(|v| v.is_finite()));
    }

    /// Same-size k-means always produces exactly equal cluster sizes and a
    /// permutation-complete assignment.
    #[test]
    fn same_size_balance_invariant(
        seed in 0u64..500,
        k in prop::sample::select(vec![1usize, 2, 4, 8]),
        per in 2usize..8,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = k * per;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * 3).map(|_| rng.gen_range(0.0f32..20.0)).collect();
        let result = train_same_size(&data, 3, &SameSizeConfig::new(k).with_seed(seed)).unwrap();
        let mut counts = vec![0usize; k];
        for &a in result.assignment() {
            counts[a as usize] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == per), "unbalanced: {counts:?}");
        // groups() must be a partition of 0..n.
        let mut all: Vec<usize> = result.groups().into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// More Lloyd iterations never increase inertia.
    #[test]
    fn inertia_is_monotone_in_iterations(
        seed in 0u64..200,
        n in 12usize..50,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(0.0f32..10.0)).collect();
        let short = train(&data, 2, &KMeansConfig::new(4).with_seed(seed).with_max_iters(1)).unwrap();
        let long = train(&data, 2, &KMeansConfig::new(4).with_seed(seed).with_max_iters(20)).unwrap();
        prop_assert!(long.inertia() <= short.inertia() + 1e-6);
    }
}

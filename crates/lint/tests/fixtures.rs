//! Fixture-tree tests: each fixture under `tests/fixtures/` is a miniature
//! workspace exercising exactly one violation class (plus `good`, which
//! exercises every check's happy path — SAFETY contracts, waiver comments,
//! registered failpoints, documented metrics, forwarded features). The
//! expected diagnostics are asserted *exactly*, rendered form included, so
//! message or line drift fails loudly. A final self-check runs the lint on
//! the real workspace and requires it to be clean.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the lint on a fixture and renders each diagnostic.
fn lint(name: &str) -> Vec<String> {
    let root = fixture(name);
    pqfs_lint::run(&root)
        .unwrap_or_else(|e| panic!("fixture {name} failed to lint: {e}"))
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn good_fixture_is_clean() {
    assert_eq!(lint("good"), Vec::<String>::new());
}

#[test]
fn missing_safety_fixture() {
    assert_eq!(
        lint("missing_safety"),
        vec![
            "liba/src/lib.rs:4: error[missing-safety]: unsafe fn without a safety \
             contract; add a `# Safety` doc section or a `// SAFETY:` comment stating \
             the contract",
            "liba/src/lib.rs:5: error[missing-safety]: unsafe block without a safety \
             contract; add a `// SAFETY:` comment stating the upheld precondition",
            "liba/src/lib.rs:10: error[missing-safety]: unsafe block without a safety \
             contract; add a `// SAFETY:` comment stating the upheld precondition",
        ]
    );
}

#[test]
fn forbidden_panic_fixture() {
    assert_eq!(
        lint("forbidden_panic"),
        vec![
            "liba/src/lib.rs:5: error[forbidden-panic]: `panic!` in library code; \
             return a typed error instead",
            "liba/src/lib.rs:9: error[forbidden-panic]: `.unwrap()` in library code; \
             propagate the error or prove the invariant with `unreachable!`/poison \
             recovery",
        ]
    );
}

#[test]
fn unforwarded_feature_fixture() {
    assert_eq!(
        lint("unforwarded_feature"),
        vec![
            "libb/Cargo.toml:1: error[unforwarded-feature]: dependency `liba` exposes \
             tracked feature `telemetry` but is not declared with \
             `default-features = false`; the forwarded feature is not \
             caller-controlled",
            "libb/Cargo.toml:1: error[unforwarded-feature]: depends on `liba` which \
             exposes tracked feature `telemetry`, but does not expose `telemetry` \
             itself",
        ]
    );
}

#[test]
fn unregistered_failpoint_fixture() {
    assert_eq!(
        lint("unregistered_failpoint"),
        vec![
            "liba/src/lib.rs:6: error[unregistered-failpoint]: failpoint site \
             \"bad.site\" is not in the site registry",
        ]
    );
}

#[test]
fn undocumented_metric_fixture() {
    assert_eq!(
        lint("undocumented_metric"),
        vec![
            "liba/src/lib.rs:6: error[undocumented-metric]: metric \
             \"pqfs_missing_total\" is not documented in docs/OBSERVABILITY.md",
            "liba/src/lib.rs:7: error[undocumented-metric]: metric name \"bad-name\" \
             violates the Prometheus grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`",
        ]
    );
}

#[test]
fn policy_mismatch_fixture() {
    assert_eq!(
        lint("policy_mismatch"),
        vec![
            "liba/src/lib.rs:1: error[policy-mismatch]: crate root lacks \
             `#![forbid(unsafe_code)]` (crate is not on the unsafe allowlist in \
             pqfs_lint.toml)",
            "libb/src/lib.rs:1: error[policy-mismatch]: crate is on the unsafe \
             allowlist but its root lacks `#![deny(unsafe_op_in_unsafe_fn)]`",
            "libc/src/lib.rs:1: error[policy-mismatch]: crate is on the unsafe \
             allowlist but its root lacks `#![deny(unsafe_op_in_unsafe_fn)]`",
            "libc/src/lib.rs:1: error[policy-mismatch]: crate is on the unsafe \
             allowlist yet forbids unsafe code; remove it from `unsafe_crates` in \
             pqfs_lint.toml",
        ]
    );
}

/// The real workspace must lint clean — the same invariant CI enforces via
/// `cargo run -p pqfs_lint`, kept here so `cargo test` alone catches
/// regressions.
#[test]
fn real_workspace_is_clean() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = pqfs_lint::find_root(start).expect("workspace root with pqfs_lint.toml");
    let diags = pqfs_lint::run(&root).expect("lint run");
    assert!(
        diags.is_empty(),
        "workspace not clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

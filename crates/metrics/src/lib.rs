//! Measurement substrate for the PQ Fast Scan reproduction.
//!
//! * [`stats`] — summary statistics, quartiles and CDFs (Table 4,
//!   Figure 14);
//! * [`recall`] — Recall@R and set-intersection recall for the IVFADC
//!   pipeline;
//! * [`counters`] — exact per-vector operation counts that substitute for
//!   the paper's hardware performance counters (Figures 3, 15; DESIGN §2);
//! * [`cost_model`] — the paper's cache and instruction constants
//!   (Tables 1, 2);
//! * [`table`] — aligned text tables for harness output;
//! * [`timer`] — wall-clock helpers and the M vecs/s unit.

#![forbid(unsafe_code)]

pub mod cost_model;
pub mod counters;
pub mod recall;
pub mod stats;
pub mod table;
pub mod timer;

pub use cost_model::{table_cache_level, CacheLevel, InstrProps, GATHER, PSHUFB};
pub use counters::{fastscan_ops, pqscan_ops, FastScanProfile, PerVectorOps, PqScanImpl};
pub use recall::{intersection_recall, mean_recall_at_r, recall_at_r};
pub use stats::Summary;
pub use table::{fmt_count, fmt_f, TextTable};
pub use timer::{measure_ms, mvecs_per_sec, time_ms};

//! The IVFADC index: inverted lists of residual PQ codes and the three-step
//! query pipeline of the paper's Algorithm 1.

use crate::coarse::CoarseQuantizer;
use crate::IvfError;
use pqfs_core::{DistanceTables, Neighbor, PqConfig, ProductQuantizer, RowMajorCodes};
use pqfs_obs::{LazyCounter, LazyHistogram, ProbeOutcome, ProbeTrace, QueryTrace};
use pqfs_pool::ThreadPool;
use pqfs_scan::{
    PerBackendStats, PreparedScanner, ScanError, ScanOpts, ScanParams, ScanResult, ScanScratch,
    ScanStats,
};
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

static QUERIES: LazyCounter = LazyCounter::new("pqfs_ivf_queries_total", "IVF queries served");
static PROBES_OK: LazyCounter = LazyCounter::labeled(
    "pqfs_ivf_probes_total",
    "Probed partitions by outcome",
    "outcome",
    "ok",
);
static PROBES_FAILED: LazyCounter = LazyCounter::labeled(
    "pqfs_ivf_probes_total",
    "Probed partitions by outcome",
    "outcome",
    "failed",
);
static PROBES_SKIPPED: LazyCounter = LazyCounter::labeled(
    "pqfs_ivf_probes_total",
    "Probed partitions by outcome",
    "outcome",
    "skipped",
);
static PROBES_DEADLINE: LazyCounter = LazyCounter::labeled(
    "pqfs_ivf_probes_total",
    "Probed partitions by outcome",
    "outcome",
    "deadline",
);
static TABLES_BUILT: LazyCounter = LazyCounter::new(
    "pqfs_ivf_tables_built_total",
    "Distance-table computations (Algorithm 1 step 2)",
);
static TABLES_WASTED: LazyCounter = LazyCounter::new(
    "pqfs_ivf_tables_wasted_total",
    "Table computations short-circuited because the query deadline had already expired",
);
static COARSE_NS: LazyHistogram = LazyHistogram::new(
    "pqfs_ivf_coarse_ns",
    "Coarse quantization (partition selection) latency",
);
static TABLES_NS: LazyHistogram = LazyHistogram::new(
    "pqfs_ivf_tables_ns",
    "Per-probe distance-table build latency",
);
static SCAN_NS: LazyHistogram =
    LazyHistogram::new("pqfs_ivf_scan_ns", "Per-probe partition scan latency");
static MERGE_NS: LazyHistogram = LazyHistogram::new("pqfs_ivf_merge_ns", "Result merge latency");
static TOTAL_NS: LazyHistogram = LazyHistogram::new("pqfs_ivf_query_ns", "Whole-query latency");

const SCANNED_HELP: &str = "Vectors scanned, by backend";
const PRUNED_HELP: &str = "Vectors pruned by the lower-bound test, by backend";
/// Per-backend scanned/pruned counters, indexed by the backend's position
/// in [`SearchBackend::ALL`] (see [`backend_slot`]).
static SCANNED_BY_BACKEND: [LazyCounter; 6] = [
    LazyCounter::labeled(
        "pqfs_scan_vectors_scanned_total",
        SCANNED_HELP,
        "backend",
        "naive",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_scanned_total",
        SCANNED_HELP,
        "backend",
        "libpq",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_scanned_total",
        SCANNED_HELP,
        "backend",
        "avx",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_scanned_total",
        SCANNED_HELP,
        "backend",
        "gather",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_scanned_total",
        SCANNED_HELP,
        "backend",
        "quantize-only",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_scanned_total",
        SCANNED_HELP,
        "backend",
        "fastscan",
    ),
];
static PRUNED_BY_BACKEND: [LazyCounter; 6] = [
    LazyCounter::labeled(
        "pqfs_scan_vectors_pruned_total",
        PRUNED_HELP,
        "backend",
        "naive",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_pruned_total",
        PRUNED_HELP,
        "backend",
        "libpq",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_pruned_total",
        PRUNED_HELP,
        "backend",
        "avx",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_pruned_total",
        PRUNED_HELP,
        "backend",
        "gather",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_pruned_total",
        PRUNED_HELP,
        "backend",
        "quantize-only",
    ),
    LazyCounter::labeled(
        "pqfs_scan_vectors_pruned_total",
        PRUNED_HELP,
        "backend",
        "fastscan",
    ),
];
// The counter arrays above are positional over SearchBackend::ALL.
const _: () = assert!(pqfs_scan::Backend::ALL.len() == 6);

/// Index of `backend` in [`SearchBackend::ALL`] (the per-backend counter
/// arrays are positional over it).
fn backend_slot(backend: SearchBackend) -> usize {
    SearchBackend::ALL
        .iter()
        .position(|&b| b == backend)
        .unwrap_or_else(|| unreachable!("SearchBackend::ALL covers every variant"))
}

/// Records one completed scan's counters for `backend`.
fn record_scan_counters(backend: SearchBackend, stats: &ScanStats) {
    let slot = backend_slot(backend);
    SCANNED_BY_BACKEND[slot].add(stats.scanned);
    PRUNED_BY_BACKEND[slot].add(stats.pruned);
}

/// Per-thread query state reused across queries: the residual buffer, the
/// distance tables of Algorithm 1's step 2, and the Fast Scan quantized
/// table buffers. One instance lives in each pool worker (and the caller),
/// so steady-state query execution performs no table/buffer allocation.
struct QueryScratch {
    residual: Vec<f32>,
    tables: DistanceTables,
    scan: ScanScratch,
}

thread_local! {
    static SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch {
        residual: Vec::new(),
        tables: DistanceTables::placeholder(),
        scan: ScanScratch::default(),
    });
}

/// Which scan implementation answers queries: the `pqfs-scan` backend
/// registry, re-exported. Any [`SearchBackend::ALL`] member listed in
/// [`IvfadcConfig::backends`] at build time can serve queries.
pub use pqfs_scan::Backend as SearchBackend;

/// Build configuration.
#[derive(Debug, Clone)]
pub struct IvfadcConfig {
    /// Number of coarse partitions (the paper uses 8 for ANN_SIFT100M1 and
    /// 128 for ANN_SIFT1B).
    pub partitions: usize,
    /// Product-quantizer shape (the scan kernels want [`PqConfig::pq8x8`]).
    pub pq: PqConfig,
    /// Seed for every training stage.
    pub seed: u64,
    /// Apply the §4.3 optimized centroid-index assignment after PQ
    /// training (required for tight Fast Scan minimum tables).
    pub optimize_assignment: bool,
    /// Backends prepared per partition at build time (deduplicated;
    /// backends whose `PQ 8×8` shape requirement the quantizer cannot meet
    /// are skipped). Queries may use exactly these.
    pub backends: Vec<SearchBackend>,
    /// Options handed to [`SearchBackend::scanner`] when preparing
    /// partitions (quantization bins, grouping, kernel choice).
    pub scan: ScanOpts,
}

impl IvfadcConfig {
    /// The paper's configuration: `PQ 8×8`, optimized assignment, and the
    /// naive / libpq / Fast Scan backends prepared.
    pub fn new(dim: usize, partitions: usize) -> Self {
        IvfadcConfig {
            partitions,
            pq: PqConfig::pq8x8(dim),
            seed: 0,
            optimize_assignment: true,
            backends: Self::default_backends(),
            scan: ScanOpts::default(),
        }
    }

    /// The default backend set: the row-major baselines (which share the
    /// partition's code storage) plus Fast Scan.
    pub fn default_backends() -> Vec<SearchBackend> {
        vec![
            SearchBackend::Naive,
            SearchBackend::Libpq,
            SearchBackend::FastScan,
        ]
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the prepared backend set.
    pub fn with_backends(mut self, backends: Vec<SearchBackend>) -> Self {
        self.backends = backends;
        self
    }

    /// Replaces the scanner options.
    pub fn with_scan_opts(mut self, scan: ScanOpts) -> Self {
        self.scan = scan;
        self
    }
}

/// One inverted list: the global ids, residual codes, and per-backend
/// prepared scan state of a partition.
#[derive(Debug, Clone)]
struct Partition {
    ids: Vec<u64>,
    codes: Arc<RowMajorCodes>,
    /// Prepared scan state; each entry self-identifies via
    /// [`PreparedScanner::backend`], so no separate key is stored.
    prepared: Vec<Box<dyn PreparedScanner>>,
}

impl Partition {
    /// Builds a partition, preparing every requested backend through the
    /// scan registry. Backends the quantizer shape cannot support are
    /// skipped; real configuration errors propagate.
    fn build(
        ids: Vec<u64>,
        codes: RowMajorCodes,
        backends: &[SearchBackend],
        opts: &ScanOpts,
    ) -> Result<Self, IvfError> {
        let codes = Arc::new(codes);
        let mut prepared: Vec<Box<dyn PreparedScanner>> = Vec::with_capacity(backends.len());
        for &backend in backends {
            if prepared.iter().any(|s| s.backend() == backend) {
                continue;
            }
            match backend.scanner(opts).prepare(Arc::clone(&codes)) {
                Ok(state) => prepared.push(state),
                // The quantizer is not PQ 8x8: this backend simply stays
                // unavailable (queries asking for it get a Config error).
                Err(ScanError::NeedsPq8x8 { .. }) => {}
                Err(e) => return Err(IvfError::Scan(e)),
            }
        }
        Ok(Partition {
            ids,
            codes,
            prepared,
        })
    }

    /// The prepared state for `backend`, if it was built.
    fn prepared_for(&self, backend: SearchBackend) -> Option<&dyn PreparedScanner> {
        self.prepared
            .iter()
            .find(|s| s.backend() == backend)
            .map(|s| s.as_ref())
    }
}

/// Per-query health report: how many probed partitions contributed to the
/// result set. Multi-probe search degrades gracefully — a failing partition
/// scan (injected fault, caught panic, backend failure) or a probe skipped
/// by the deadline budget reduces coverage instead of failing the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchHealth {
    /// Probes whose scan completed and contributed candidates.
    pub probes_ok: usize,
    /// Probes whose scan failed (the result set misses their candidates).
    pub probes_failed: usize,
    /// Probes skipped because the deadline budget was exhausted.
    pub probes_skipped: usize,
}

impl SearchHealth {
    /// A fully healthy report over `probes` partitions.
    pub(crate) fn healthy(probes: usize) -> Self {
        SearchHealth {
            probes_ok: probes,
            probes_failed: 0,
            probes_skipped: 0,
        }
    }

    /// True when the result set may be missing candidates: some probe
    /// failed or was skipped.
    pub fn degraded(&self) -> bool {
        self.probes_failed > 0 || self.probes_skipped > 0
    }
}

/// Result of one ANN query.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Nearest neighbors with **global** base-set ids, ascending by
    /// `(distance, id)`.
    pub neighbors: Vec<Neighbor>,
    /// Scan statistics of step 3.
    pub stats: ScanStats,
    /// The partition that was scanned.
    pub partition: usize,
    /// Probe coverage (check [`SearchHealth::degraded`] before trusting
    /// the result set to be complete).
    pub health: SearchHealth,
    /// `stats` broken down by scan backend (multi-probe queries may mix
    /// backends; the flat sum alone loses that attribution).
    pub by_backend: PerBackendStats,
}

/// One probe's completed scan, with per-stage timings when requested
/// (`tables_ns`/`scan_ns` stay 0 when timing is off).
#[derive(Default)]
struct ProbeSuccess {
    neighbors: Vec<Neighbor>,
    stats: ScanStats,
    tables_ns: u64,
    scan_ns: u64,
}

/// One probe's contribution to a multi-probe query.
enum ProbeScan {
    Ok(ProbeSuccess),
    Failed(IvfError),
    /// Skipped before starting: the deadline budget was already exhausted.
    Skipped,
    /// Started, but the deadline expired before the table build — the
    /// probe short-circuited instead of computing tables it cannot use.
    Expired,
}

/// Best-effort description of a caught scan panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "partition scan panicked".to_string()
    }
}

/// The IVFADC index (paper §2.2, \[14\]).
#[derive(Debug, Clone)]
pub struct IvfadcIndex {
    coarse: CoarseQuantizer,
    pq: ProductQuantizer,
    partitions: Vec<Partition>,
    dim: usize,
    /// The scanner options the partitions were prepared with (persisted so
    /// a save/load roundtrip rebuilds identical scan state).
    scan: ScanOpts,
}

impl IvfadcIndex {
    /// Builds the index: trains the coarse quantizer and the (residual)
    /// product quantizer on `train`, then encodes and distributes `base`.
    ///
    /// # Errors
    ///
    /// Training/encoding failures ([`IvfError::Coarse`], [`IvfError::Pq`]),
    /// or [`IvfError::Config`]/[`IvfError::DimMismatch`] for shape problems.
    pub fn build(train: &[f32], base: &[f32], config: &IvfadcConfig) -> Result<Self, IvfError> {
        let dim = config.pq.dim();
        if config.partitions == 0 {
            return Err(IvfError::Config("partitions must be positive".into()));
        }
        if train.is_empty() || train.len() % dim != 0 {
            return Err(IvfError::DimMismatch {
                expected: dim,
                actual: train.len(),
            });
        }
        if base.len() % dim != 0 {
            return Err(IvfError::DimMismatch {
                expected: dim,
                actual: base.len(),
            });
        }

        // Stage 1: coarse quantizer over the raw training vectors.
        let coarse = CoarseQuantizer::train(train, dim, config.partitions, config.seed)?;

        // Stage 2: product quantizer over training residuals.
        let mut residuals = vec![0f32; train.len()];
        for (v, r) in train.chunks_exact(dim).zip(residuals.chunks_exact_mut(dim)) {
            let p = coarse.assign(v);
            coarse.residual_into(v, p, r);
        }
        let mut pq = ProductQuantizer::train(&residuals, &config.pq, config.seed ^ 0x9E37)?;
        if config.optimize_assignment {
            pq.optimize_assignment(16, config.seed ^ 0x79B9)?;
        }

        // Stage 3: encode the base set into inverted lists, on the shared
        // pool. Coarse assignment is row-independent; list membership is
        // derived from it serially (cheap) so insertion order — and with it
        // the stored ids — is identical to a sequential build.
        let pool = ThreadPool::global();
        let rows: Vec<&[f32]> = base.chunks_exact(dim).collect();
        let assignment = pool.parallel_map(&rows, |_, v| coarse.assign(v));
        let mut members: Vec<Vec<u64>> = vec![Vec::new(); config.partitions];
        for (i, &p) in assignment.iter().enumerate() {
            members[p].push(i as u64);
        }
        let m = config.pq.m();
        // Each partition encodes its residuals and prepares its backends as
        // one task; partitions are mutually independent.
        let mut member_lists: Vec<(usize, Vec<u64>)> = members.into_iter().enumerate().collect();
        let built = pool.parallel_map_mut(&mut member_lists, |_, entry| {
            let (p, ids) = entry;
            let ids = std::mem::take(ids);
            let mut residual = vec![0f32; dim];
            let mut codes = vec![0u8; ids.len() * m];
            for (slot, &id) in ids.iter().enumerate() {
                let v = &base[id as usize * dim..(id as usize + 1) * dim];
                coarse.residual_into(v, *p, &mut residual);
                pq.encode_into(&residual, &mut codes[slot * m..(slot + 1) * m]);
            }
            Partition::build(
                ids,
                RowMajorCodes::new(codes, m),
                &config.backends,
                &config.scan,
            )
        });
        let mut partitions = Vec::with_capacity(config.partitions);
        for partition in built {
            partitions.push(partition?);
        }

        Ok(IvfadcIndex {
            coarse,
            pq,
            partitions,
            dim,
            scan: config.scan.clone(),
        })
    }

    /// Answers an ANN query: selects the most relevant partition (step 1),
    /// computes the residual distance tables (step 2) and scans (step 3).
    ///
    /// # Errors
    ///
    /// [`IvfError::DimMismatch`] for bad queries, [`IvfError::Config`] when
    /// the requested backend was not built, [`IvfError::Scan`] on kernel
    /// errors.
    pub fn search(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
    ) -> Result<SearchOutcome, IvfError> {
        if query.len() != self.dim {
            return Err(IvfError::DimMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        if topk == 0 {
            return Err(IvfError::Config("topk must be positive".into()));
        }
        // Single-probe search is the batch-QPS hot path: one optional
        // timestamp for the whole-query histogram, no per-stage timing.
        let t0 = pqfs_obs::enabled().then(Instant::now);
        let p = self.coarse.assign(query);
        let (neighbors, stats) = self.scan_partition(query, p, topk, backend, keep)?;
        QUERIES.inc();
        PROBES_OK.inc();
        record_scan_counters(backend, &stats);
        if let Some(t0) = t0 {
            TOTAL_NS.observe(t0.elapsed());
        }
        let mut by_backend = PerBackendStats::new();
        by_backend.record(backend, &stats);
        Ok(SearchOutcome {
            neighbors,
            stats,
            partition: p,
            health: SearchHealth::healthy(1),
            by_backend,
        })
    }

    /// Multi-probe search: scans the `nprobe` partitions nearest to the
    /// query and merges their results — the `w`-cell visiting strategy of
    /// the original IVFADC \[14\], which trades scan time for recall when a
    /// neighbor falls just across a Voronoi boundary.
    ///
    /// The partition scans fan out across the global
    /// [`pqfs_pool::ThreadPool`] (intra-query parallelism); the per-probe
    /// result lists are merged in probe order, so the outcome is
    /// bit-identical to a sequential probe loop for any pool size.
    ///
    /// `SearchOutcome::partition` reports the nearest (first) probed cell;
    /// `stats` accumulates over all probed cells.
    ///
    /// **Graceful degradation:** a probe whose scan fails (injected fault,
    /// caught panic, backend failure) is recorded in
    /// [`SearchOutcome::health`] and its candidates are simply missing from
    /// the merged result. The query only errors when *every* probe failed
    /// (the first failure is returned) or on input validation.
    ///
    /// # Errors
    ///
    /// As [`search`](Self::search), plus [`IvfError::Config`] for
    /// `nprobe == 0`, and the first probe failure when no probe succeeded.
    pub fn search_probes(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        nprobe: usize,
    ) -> Result<SearchOutcome, IvfError> {
        self.search_probes_on(query, topk, backend, keep, nprobe, ThreadPool::global())
    }

    /// [`search_probes`](Self::search_probes) on a specific pool (tests and
    /// callers that manage their own pool sizing).
    ///
    /// # Errors
    ///
    /// As [`search_probes`](Self::search_probes).
    pub fn search_probes_on(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        nprobe: usize,
        pool: &ThreadPool,
    ) -> Result<SearchOutcome, IvfError> {
        self.search_probes_budgeted_on(query, topk, backend, keep, nprobe, None, pool)
    }

    /// [`search_probes`](Self::search_probes) with an optional per-query
    /// deadline budget.
    ///
    /// # Errors
    ///
    /// As [`search_probes`](Self::search_probes).
    pub fn search_probes_budgeted(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        nprobe: usize,
        deadline: Option<Duration>,
    ) -> Result<SearchOutcome, IvfError> {
        self.search_probes_budgeted_on(
            query,
            topk,
            backend,
            keep,
            nprobe,
            deadline,
            ThreadPool::global(),
        )
    }

    /// The full multi-probe entry point: optional deadline budget, explicit
    /// pool, graceful degradation.
    ///
    /// The nearest probe always runs — a query never returns an empty
    /// best-so-far just because the budget was tight. Each further probe
    /// checks the elapsed time before scanning and is *skipped* (recorded
    /// in [`SearchOutcome::health`]) once `deadline` has passed. With
    /// `deadline: None` the schedule is deterministic and the merged result
    /// is bit-identical to a sequential probe loop for any pool size; with
    /// a deadline, which probes get skipped depends on measured time.
    ///
    /// # Errors
    ///
    /// As [`search_probes`](Self::search_probes).
    #[allow(clippy::too_many_arguments)]
    pub fn search_probes_budgeted_on(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        nprobe: usize,
        deadline: Option<Duration>,
        pool: &ThreadPool,
    ) -> Result<SearchOutcome, IvfError> {
        self.search_probes_inner(query, topk, backend, keep, nprobe, deadline, pool, None)
    }

    /// [`search_probes_budgeted_on`](Self::search_probes_budgeted_on) that
    /// additionally fills a per-query [`QueryTrace`]: stage timings
    /// (coarse quantization, per-probe table build and scan, merge) and one
    /// [`ProbeTrace`] per probe with its backend, outcome and pruning
    /// counters. The trace is [reset](QueryTrace::reset) first, so one
    /// trace can be reused across queries without reallocating.
    ///
    /// Tracing forces per-stage timestamps on, so a traced query is
    /// slightly slower than an untraced one; results are unaffected.
    ///
    /// # Errors
    ///
    /// As [`search_probes`](Self::search_probes).
    #[allow(clippy::too_many_arguments)]
    pub fn search_probes_traced(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        nprobe: usize,
        deadline: Option<Duration>,
        pool: &ThreadPool,
        trace: &mut QueryTrace,
    ) -> Result<SearchOutcome, IvfError> {
        self.search_probes_inner(
            query,
            topk,
            backend,
            keep,
            nprobe,
            deadline,
            pool,
            Some(trace),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn search_probes_inner(
        &self,
        query: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        nprobe: usize,
        deadline: Option<Duration>,
        pool: &ThreadPool,
        mut trace: Option<&mut QueryTrace>,
    ) -> Result<SearchOutcome, IvfError> {
        if query.len() != self.dim {
            return Err(IvfError::DimMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        if topk == 0 || nprobe == 0 {
            return Err(IvfError::Config("topk and nprobe must be positive".into()));
        }
        if let Some(t) = trace.as_deref_mut() {
            t.reset();
        }
        let want_timing = trace.is_some() || pqfs_obs::enabled();
        let t_begin = want_timing.then(Instant::now);
        let probes = self.coarse.assign_multi(query, nprobe);
        let coarse_ns = t_begin.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let start = Instant::now();
        // One relaxed load when no failpoint is armed anywhere; the
        // per-probe site string is only built under an armed registry.
        let faults_armed = pqfs_fault::armed();
        let scans = pool.parallel_map(&probes, |i, &p| {
            if i > 0 {
                if let Some(budget) = deadline {
                    if start.elapsed() >= budget {
                        return ProbeScan::Skipped;
                    }
                }
            }
            if faults_armed {
                let site = format!("ivf.search.scan.{p}");
                if let Err(e) =
                    pqfs_fault::check("ivf.search.scan").and_then(|()| pqfs_fault::check(&site))
                {
                    return ProbeScan::Failed(IvfError::Probe {
                        partition: p,
                        message: e.to_string(),
                    });
                }
            }
            // The nearest probe never short-circuits: a query always
            // returns a best-so-far answer even under a zero budget.
            let probe_deadline = if i > 0 {
                deadline.map(|budget| (start, budget))
            } else {
                None
            };
            match panic::catch_unwind(AssertUnwindSafe(|| {
                self.scan_partition_timed(
                    query,
                    p,
                    topk,
                    backend,
                    keep,
                    want_timing,
                    probe_deadline,
                )
            })) {
                Ok(Ok(Some(success))) => ProbeScan::Ok(success),
                Ok(Ok(None)) => ProbeScan::Expired,
                Ok(Err(e)) => ProbeScan::Failed(e),
                Err(payload) => ProbeScan::Failed(IvfError::Probe {
                    partition: p,
                    message: panic_message(payload.as_ref()),
                }),
            }
        });

        // Merge in probe order (determinism), collecting health as we go.
        let merge_t0 = want_timing.then(Instant::now);
        let mut merged = pqfs_core::TopK::new(topk);
        let mut stats = ScanStats::default();
        let mut by_backend = PerBackendStats::new();
        let mut health = SearchHealth::default();
        let mut first_failure: Option<IvfError> = None;
        for (scan, &p) in scans.into_iter().zip(&probes) {
            let probe_trace = match scan {
                ProbeScan::Ok(success) => {
                    let ProbeSuccess {
                        neighbors,
                        stats: s,
                        tables_ns,
                        scan_ns,
                    } = success;
                    health.probes_ok += 1;
                    PROBES_OK.inc();
                    for n in neighbors {
                        merged.push(n.dist, n.id);
                    }
                    stats.merge(&s);
                    by_backend.record(backend, &s);
                    record_scan_counters(backend, &s);
                    TABLES_NS.observe_ns(tables_ns);
                    SCAN_NS.observe_ns(scan_ns);
                    ProbeTrace {
                        partition: p,
                        backend: backend.name(),
                        outcome: ProbeOutcome::Ok,
                        scanned: s.scanned,
                        pruned: s.pruned,
                        tables_ns,
                        scan_ns,
                    }
                }
                ProbeScan::Failed(e) => {
                    health.probes_failed += 1;
                    PROBES_FAILED.inc();
                    first_failure.get_or_insert(e);
                    ProbeTrace::outcome_only(p, backend.name(), ProbeOutcome::Failed)
                }
                ProbeScan::Skipped => {
                    health.probes_skipped += 1;
                    PROBES_SKIPPED.inc();
                    ProbeTrace::outcome_only(p, backend.name(), ProbeOutcome::Skipped)
                }
                // An expired probe contributed nothing, like a skip; the
                // distinct trace outcome records that it *started* and was
                // cut off at the table-build short-circuit.
                ProbeScan::Expired => {
                    health.probes_skipped += 1;
                    PROBES_DEADLINE.inc();
                    ProbeTrace::outcome_only(p, backend.name(), ProbeOutcome::Deadline)
                }
            };
            if let Some(t) = trace.as_deref_mut() {
                t.probes.push(probe_trace);
            }
        }
        if health.probes_ok == 0 {
            if let Some(e) = first_failure {
                return Err(e);
            }
        }
        QUERIES.inc();
        COARSE_NS.observe_ns(coarse_ns);
        let merge_ns = merge_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let total_ns = t_begin.map_or(0, |t| t.elapsed().as_nanos() as u64);
        MERGE_NS.observe_ns(merge_ns);
        TOTAL_NS.observe_ns(total_ns);
        if let Some(t) = trace {
            t.coarse_ns = coarse_ns;
            t.merge_ns = merge_ns;
            t.total_ns = total_ns;
        }
        Ok(SearchOutcome {
            neighbors: merged.into_sorted(),
            stats,
            partition: probes[0],
            health,
            by_backend,
        })
    }

    /// Answers a batch of row-major queries in parallel on the global
    /// [`pqfs_pool::ThreadPool`] (paper §3.1: "PQ Scan parallelizes
    /// naturally over multiple queries by running each query on a different
    /// core"). Queries are dealt out in small tasks so stragglers
    /// load-balance across workers, and each worker reuses its thread-local
    /// tables/buffers between queries. Results and their order are
    /// identical to calling [`search`](Self::search) per query.
    ///
    /// # Errors
    ///
    /// The lowest-indexed error encountered by any query, or
    /// [`IvfError::DimMismatch`] if the batch is not a multiple of `dim`.
    pub fn search_batch(
        &self,
        queries: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
    ) -> Result<Vec<SearchOutcome>, IvfError> {
        self.search_batch_on(queries, topk, backend, keep, ThreadPool::global())
    }

    /// [`search_batch`](Self::search_batch) on a specific pool (tests and
    /// callers that manage their own pool sizing).
    ///
    /// # Errors
    ///
    /// As [`search_batch`](Self::search_batch).
    pub fn search_batch_on(
        &self,
        queries: &[f32],
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        pool: &ThreadPool,
    ) -> Result<Vec<SearchOutcome>, IvfError> {
        if queries.len() % self.dim != 0 {
            return Err(IvfError::DimMismatch {
                expected: self.dim,
                actual: queries.len(),
            });
        }
        let rows: Vec<&[f32]> = queries.chunks_exact(self.dim).collect();
        pool.try_parallel_map(&rows, |_, q| self.search(q, topk, backend, keep))
    }

    /// Scans one partition for `query` and returns global-id neighbors.
    ///
    /// Runs on the calling thread using its [`QueryScratch`]: the residual
    /// buffer, distance tables and Fast Scan table buffers are reused
    /// across queries, so repeated scans allocate only the result vector.
    fn scan_partition(
        &self,
        query: &[f32],
        p: usize,
        topk: usize,
        backend: SearchBackend,
        keep: f64,
    ) -> Result<(Vec<Neighbor>, ScanStats), IvfError> {
        let success = self
            .scan_partition_timed(query, p, topk, backend, keep, false, None)?
            .unwrap_or_else(|| unreachable!("a scan without a deadline never expires"));
        Ok((success.neighbors, success.stats))
    }

    /// [`scan_partition`](Self::scan_partition) with optional stage timing
    /// and deadline short-circuiting.
    ///
    /// Returns `Ok(None)` when `deadline` had already expired on entry: the
    /// probe gives up *before* computing distance tables (the most
    /// expensive per-probe fixed cost), so a blown budget does not waste
    /// table work whose scan would be skipped anyway. Wasted builds avoided
    /// this way are counted in `pqfs_ivf_tables_wasted_total`.
    #[allow(clippy::too_many_arguments)]
    fn scan_partition_timed(
        &self,
        query: &[f32],
        p: usize,
        topk: usize,
        backend: SearchBackend,
        keep: f64,
        want_timing: bool,
        deadline: Option<(Instant, Duration)>,
    ) -> Result<Option<ProbeSuccess>, IvfError> {
        let partition = &self.partitions[p];
        if partition.ids.is_empty() {
            return Ok(Some(ProbeSuccess::default()));
        }

        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();

            // Re-check the budget at the last moment before the table
            // build: the probe may have queued behind slower siblings since
            // the pre-dispatch check.
            if let Some((start, budget)) = deadline {
                if start.elapsed() >= budget {
                    TABLES_WASTED.inc();
                    return Ok(None);
                }
            }

            // Step 2: distance tables on the query residual.
            let t0 = want_timing.then(Instant::now);
            scratch.residual.resize(self.dim, 0.0);
            self.coarse.residual_into(query, p, &mut scratch.residual);
            scratch.tables.recompute(&self.pq, &scratch.residual)?;
            TABLES_BUILT.inc();
            let t1 = want_timing.then(Instant::now);

            // Step 3: scan, through the backend registry — no per-backend
            // dispatch here; whatever was prepared at build time can serve.
            let scanner = partition.prepared_for(backend).ok_or_else(|| {
                IvfError::Config(format!(
                    "backend '{backend}' was not built into this index (available: {})",
                    partition
                        .prepared
                        .iter()
                        .map(|s| s.backend().name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?;
            let result: ScanResult = scanner.scan_with(
                &scratch.tables,
                &ScanParams::new(topk).with_keep(keep),
                &mut scratch.scan,
            )?;
            let t2 = want_timing.then(Instant::now);

            // Translate partition positions to global ids.
            let neighbors = result
                .neighbors
                .into_iter()
                .map(|n| Neighbor {
                    dist: n.dist,
                    id: partition.ids[n.id as usize],
                })
                .collect();
            let stage_ns = |a: Option<Instant>, b: Option<Instant>| match (a, b) {
                (Some(a), Some(b)) => b.duration_since(a).as_nanos() as u64,
                _ => 0,
            };
            Ok(Some(ProbeSuccess {
                neighbors,
                stats: result.stats,
                tables_ns: stage_ns(t0, t1),
                scan_ns: stage_ns(t1, t2),
            }))
        })
    }

    /// Rebuilds an index from stored parts (used by persistence).
    ///
    /// `partitions` holds `(global ids, row-major code bytes)` per cell;
    /// the listed `backends` are re-prepared through the scan registry
    /// (preparation is deterministic and cheap next to decoding the codes).
    ///
    /// # Errors
    ///
    /// [`IvfError::Config`] when shapes disagree, [`IvfError::Scan`] if a
    /// backend rebuild fails.
    pub(crate) fn from_parts(
        coarse: CoarseQuantizer,
        pq: ProductQuantizer,
        partitions: Vec<(Vec<u64>, Vec<u8>)>,
        backends: &[SearchBackend],
        opts: ScanOpts,
    ) -> Result<Self, IvfError> {
        if coarse.partitions() != partitions.len() {
            return Err(IvfError::Config(format!(
                "coarse quantizer has {} cells but {} partitions were provided",
                coarse.partitions(),
                partitions.len()
            )));
        }
        let dim = pq.config().dim();
        if coarse.dim() != dim {
            return Err(IvfError::Config("coarse/pq dimensionality mismatch".into()));
        }
        let m = pq.config().m();
        let mut built = Vec::with_capacity(partitions.len());
        for (ids, bytes) in partitions {
            if bytes.len() != ids.len() * m {
                return Err(IvfError::Config("partition code length mismatch".into()));
            }
            built.push(Partition::build(
                ids,
                RowMajorCodes::new(bytes, m),
                backends,
                &opts,
            )?);
        }
        Ok(IvfadcIndex {
            coarse,
            pq,
            partitions: built,
            dim,
            scan: opts,
        })
    }

    /// Whether per-partition Fast Scan state exists.
    pub fn has_fastscan(&self) -> bool {
        let with = |p: &Partition| p.prepared_for(SearchBackend::FastScan).is_some();
        self.partitions.iter().all(|p| with(p) || p.ids.is_empty())
            && self.partitions.iter().any(with)
    }

    /// The backends prepared in this index (what [`search`](Self::search)
    /// accepts), in [`SearchBackend::ALL`] order. Empty partitions count:
    /// an index over an empty base still reports its configured backends,
    /// so a save/load roundtrip never produces an unloadable file.
    pub fn prepared_backends(&self) -> Vec<SearchBackend> {
        SearchBackend::ALL
            .into_iter()
            .filter(|&b| self.partitions.iter().any(|p| p.prepared_for(b).is_some()))
            .collect()
    }

    /// Raw parts of partition `p` (used by persistence).
    ///
    /// # Panics
    ///
    /// Panics if `p >= num_partitions()`.
    pub(crate) fn partition_raw(&self, p: usize) -> (&[u64], &RowMajorCodes) {
        (&self.partitions[p].ids, &self.partitions[p].codes)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Vectors per partition (the paper's Table 3).
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.ids.len()).collect()
    }

    /// Total indexed vectors.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.ids.len()).sum()
    }

    /// True when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scanner options the index's partitions were prepared with.
    pub fn scan_opts(&self) -> &ScanOpts {
        &self.scan
    }

    /// Dimensionality of the vectors this index serves.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The trained product quantizer.
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// The trained coarse quantizer.
    pub fn coarse(&self) -> &CoarseQuantizer {
        &self.coarse
    }

    /// The partition a query would be routed to.
    pub fn select_partition(&self, query: &[f32]) -> usize {
        self.coarse.assign(query)
    }

    /// Code storage bytes for the given backend (the paper's Figure 20
    /// memory-use comparison: grouped Fast Scan storage is ~25 % smaller
    /// than row-major codes). Falls back to the row-major footprint when
    /// the backend was not prepared.
    pub fn code_memory_bytes(&self, backend: SearchBackend) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.prepared_for(backend)
                    .map(|s| s.code_memory_bytes())
                    .unwrap_or_else(|| p.codes.memory_bytes())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 16;

    fn clustered(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..12)
            .map(|_| (0..DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * DIM);
        for _ in 0..n {
            let c = &centers[rng.gen_range(0..centers.len())];
            data.extend(
                c.iter()
                    .map(|&x| (x + rng.gen_range(-10.0f32..10.0)).clamp(0.0, 255.0)),
            );
        }
        data
    }

    fn build_index(n: usize) -> (IvfadcIndex, Vec<f32>) {
        let train = clustered(1200, 7);
        let base = clustered(n, 8);
        let index = IvfadcIndex::build(&train, &base, &IvfadcConfig::new(DIM, 4)).unwrap();
        (index, base)
    }

    #[test]
    fn partitions_cover_the_base_exactly() {
        let (index, base) = build_index(800);
        assert_eq!(index.len(), 800);
        assert_eq!(index.num_partitions(), 4);
        assert_eq!(
            index.partition_sizes().iter().sum::<usize>(),
            base.len() / DIM
        );
    }

    #[test]
    fn backends_return_identical_results() {
        let (index, base) = build_index(600);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let qi = rng.gen_range(0..600);
            let query = &base[qi * DIM..(qi + 1) * DIM];
            let a = index.search(query, 10, SearchBackend::Naive, 0.01).unwrap();
            let b = index.search(query, 10, SearchBackend::Libpq, 0.01).unwrap();
            let c = index
                .search(query, 10, SearchBackend::FastScan, 0.01)
                .unwrap();
            let ids = |o: &SearchOutcome| o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>();
            assert_eq!(ids(&a), ids(&b));
            assert_eq!(ids(&a), ids(&c));
            assert_eq!(a.partition, c.partition);
        }
    }

    #[test]
    fn searching_a_base_vector_finds_itself() {
        let (index, base) = build_index(500);
        let mut hits = 0;
        for qi in (0..500).step_by(25) {
            let query = &base[qi * DIM..(qi + 1) * DIM];
            let outcome = index.search(query, 5, SearchBackend::Naive, 0.0).unwrap();
            if outcome.neighbors.iter().any(|n| n.id == qi as u64) {
                hits += 1;
            }
        }
        // PQ is lossy but a vector should almost always be in its own top-5.
        assert!(hits >= 16, "only {hits}/20 self-hits");
    }

    #[test]
    fn global_ids_match_partition_membership() {
        let (index, base) = build_index(300);
        let query = &base[..DIM];
        let outcome = index.search(query, 20, SearchBackend::Naive, 0.0).unwrap();
        for n in &outcome.neighbors {
            let v = &base[n.id as usize * DIM..(n.id as usize + 1) * DIM];
            assert_eq!(
                index.select_partition(v),
                outcome.partition,
                "result id {} is not in the scanned partition",
                n.id
            );
        }
    }

    #[test]
    fn multiprobe_improves_or_preserves_recall() {
        let (index, base) = build_index(800);
        let mut improved_or_equal = true;
        for qi in (0..800).step_by(40) {
            let query = &base[qi * DIM..(qi + 1) * DIM];
            let single = index.search(query, 10, SearchBackend::Naive, 0.0).unwrap();
            let multi = index
                .search_probes(query, 10, SearchBackend::Naive, 0.0, 3)
                .unwrap();
            // Multi-probe sees a superset of candidates, so its k-th
            // distance can only be <= the single-probe k-th distance.
            let kth = |o: &SearchOutcome| o.neighbors.last().map(|n| n.dist);
            if let (Some(s), Some(m)) = (kth(&single), kth(&multi)) {
                if m > s {
                    improved_or_equal = false;
                }
            }
            // All single-probe results must appear in the multi-probe set.
            let multi_ids: std::collections::HashSet<u64> =
                multi.neighbors.iter().map(|n| n.id).collect();
            for n in &single.neighbors {
                assert!(multi_ids.contains(&n.id) || multi.neighbors.len() == 10);
            }
        }
        assert!(
            improved_or_equal,
            "multi-probe must not worsen the k-th distance"
        );
    }

    #[test]
    fn multiprobe_with_all_cells_is_exhaustive() {
        let (index, base) = build_index(400);
        let query = &base[..DIM];
        // Probing every partition = a full (residual-quantized) scan.
        let all = index
            .search_probes(query, 5, SearchBackend::Naive, 0.0, 4)
            .unwrap();
        assert_eq!(all.neighbors.len(), 5);
        assert_eq!(all.stats.scanned, 400);
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let (index, base) = build_index(500);
        let queries = &base[..DIM * 20];
        let batch = index
            .search_batch(queries, 8, SearchBackend::FastScan, 0.01)
            .unwrap();
        assert_eq!(batch.len(), 20);
        for (i, q) in queries.chunks_exact(DIM).enumerate() {
            let single = index.search(q, 8, SearchBackend::FastScan, 0.01).unwrap();
            let ids = |o: &SearchOutcome| o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>();
            assert_eq!(ids(&batch[i]), ids(&single), "query {i}");
        }
    }

    /// The executor determinism guarantee, end to end: batch search and
    /// parallel multi-probe search are bit-identical to serial execution
    /// (a 1-thread pool runs everything inline on the caller) for every
    /// backend and pool size.
    #[test]
    fn parallel_search_is_bit_identical_to_serial_for_every_backend() {
        let train = clustered(1200, 7);
        let base = clustered(600, 8);
        let config = IvfadcConfig::new(DIM, 4).with_backends(SearchBackend::ALL.to_vec());
        let index = IvfadcIndex::build(&train, &base, &config).unwrap();
        let queries = &base[..DIM * 10];
        let key = |o: &SearchOutcome| {
            (
                o.neighbors
                    .iter()
                    .map(|n| (n.dist.to_bits(), n.id))
                    .collect::<Vec<_>>(),
                o.stats,
                o.partition,
                o.health,
            )
        };
        let serial = ThreadPool::new(1);
        for backend in SearchBackend::ALL {
            let base_batch = index
                .search_batch_on(queries, 8, backend, 0.01, &serial)
                .unwrap();
            let base_probes: Vec<SearchOutcome> = queries
                .chunks_exact(DIM)
                .map(|q| {
                    index
                        .search_probes_on(q, 8, backend, 0.01, 3, &serial)
                        .unwrap()
                })
                .collect();
            for threads in [2usize, 8] {
                let pool = ThreadPool::new(threads);
                let batch = index
                    .search_batch_on(queries, 8, backend, 0.01, &pool)
                    .unwrap();
                assert_eq!(batch.len(), base_batch.len());
                for (a, b) in batch.iter().zip(&base_batch) {
                    assert_eq!(key(a), key(b), "{backend} batch @ {threads} threads");
                }
                for (q, b) in queries.chunks_exact(DIM).zip(&base_probes) {
                    let a = index
                        .search_probes_on(q, 8, backend, 0.01, 3, &pool)
                        .unwrap();
                    assert_eq!(key(&a), key(b), "{backend} probes @ {threads} threads");
                }
            }
        }
    }

    #[test]
    fn healthy_queries_report_full_probe_coverage() {
        let (index, base) = build_index(400);
        let q = &base[..DIM];
        let single = index.search(q, 5, SearchBackend::Naive, 0.0).unwrap();
        assert_eq!(single.health, SearchHealth::healthy(1));
        assert!(!single.health.degraded());
        let multi = index
            .search_probes(q, 5, SearchBackend::Naive, 0.0, 4)
            .unwrap();
        assert_eq!(multi.health, SearchHealth::healthy(4));
    }

    #[test]
    fn injected_probe_failure_degrades_instead_of_erroring() {
        let _lock = pqfs_fault::exclusive();
        let (index, base) = build_index(600);
        let q = &base[..DIM];
        let full = index
            .search_probes(q, 10, SearchBackend::Naive, 0.0, 4)
            .unwrap();
        assert_eq!(full.health, SearchHealth::healthy(4));

        // Fail exactly the nearest partition's scan: the query still
        // answers from the remaining probes and reports the gap.
        let victim = full.partition;
        let site = format!("ivf.search.scan.{victim}");
        let _g = pqfs_fault::scoped(&site, pqfs_fault::FaultAction::Error);
        let degraded = index
            .search_probes(q, 10, SearchBackend::Naive, 0.0, 4)
            .unwrap();
        assert_eq!(degraded.health.probes_ok, 3);
        assert_eq!(degraded.health.probes_failed, 1);
        assert!(degraded.health.degraded());
        // The surviving candidates are exactly the full result minus the
        // victim partition's contribution.
        let victim_ids: std::collections::HashSet<u64> = index
            .search(q, 10, SearchBackend::Naive, 0.0)
            .unwrap()
            .neighbors
            .iter()
            .map(|n| n.id)
            .collect();
        assert!(degraded
            .neighbors
            .iter()
            .all(|n| !victim_ids.contains(&n.id)));
    }

    #[test]
    fn all_probes_failing_returns_the_first_error() {
        let _lock = pqfs_fault::exclusive();
        let (index, base) = build_index(300);
        let q = &base[..DIM];
        let _g = pqfs_fault::scoped("ivf.search.scan", pqfs_fault::FaultAction::Error);
        assert!(matches!(
            index.search_probes(q, 5, SearchBackend::Naive, 0.0, 4),
            Err(IvfError::Probe { .. })
        ));
    }

    #[test]
    fn zero_deadline_still_answers_from_the_nearest_probe() {
        let (index, base) = build_index(500);
        let q = &base[..DIM];
        let out = index
            .search_probes_budgeted(
                q,
                8,
                SearchBackend::Naive,
                0.0,
                4,
                Some(std::time::Duration::ZERO),
            )
            .unwrap();
        // Probe 0 always runs; an exhausted budget skips the rest.
        assert_eq!(out.health.probes_ok, 1);
        assert_eq!(out.health.probes_skipped, 3);
        assert!(out.health.degraded());
        let single = index.search(q, 8, SearchBackend::Naive, 0.0).unwrap();
        let ids = |o: &SearchOutcome| o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>();
        assert_eq!(ids(&out), ids(&single));
        assert_eq!(out.partition, single.partition);
    }

    #[test]
    fn expired_probe_short_circuits_before_the_table_build() {
        let _lock = pqfs_fault::exclusive();
        let (index, base) = build_index(500);
        let q = &base[..DIM];
        let probes = index.coarse().assign_multi(q, 4);
        // Serial pool, delay injected on the fault site of the first
        // later probe with a non-empty partition (empty partitions have no
        // table build to short-circuit): the earlier probes complete, the
        // victim stalls past the deadline inside its fault check and must
        // short-circuit at the table-build re-check, and every probe after
        // it is skipped by the pre-dispatch check.
        let sizes = index.partition_sizes();
        let victim = (1..probes.len())
            .find(|&i| sizes[probes[i]] > 0)
            .expect("some later probe has a non-empty partition");
        let pool = ThreadPool::new(1);
        let _g = pqfs_fault::scoped(
            format!("ivf.search.scan.{}", probes[victim]),
            pqfs_fault::FaultAction::Delay(300),
        );
        #[cfg(feature = "telemetry")]
        let wasted_before = pqfs_obs::counter_value("pqfs_ivf_tables_wasted_total", None);
        let mut trace = QueryTrace::new();
        let out = index
            .search_probes_traced(
                q,
                8,
                SearchBackend::Naive,
                0.0,
                4,
                Some(std::time::Duration::from_millis(150)),
                &pool,
                &mut trace,
            )
            .unwrap();
        assert_eq!(out.health.probes_ok, victim);
        assert_eq!(out.health.probes_skipped, probes.len() - victim);
        let outcomes: Vec<ProbeOutcome> = trace.probes.iter().map(|p| p.outcome).collect();
        let expected: Vec<ProbeOutcome> = (0..probes.len())
            .map(|i| match i.cmp(&victim) {
                std::cmp::Ordering::Less => ProbeOutcome::Ok,
                std::cmp::Ordering::Equal => ProbeOutcome::Deadline,
                std::cmp::Ordering::Greater => ProbeOutcome::Skipped,
            })
            .collect();
        assert_eq!(outcomes, expected);
        #[cfg(feature = "telemetry")]
        assert_eq!(
            pqfs_obs::counter_value("pqfs_ivf_tables_wasted_total", None),
            wasted_before + 1,
            "the expired probe must count exactly one avoided table build"
        );
    }

    #[test]
    fn traced_search_records_every_stage_and_probe() {
        let (index, base) = build_index(500);
        let q = &base[..DIM];
        let pool = ThreadPool::new(1);
        let mut trace = QueryTrace::new();
        let out = index
            .search_probes_traced(
                q,
                8,
                SearchBackend::FastScan,
                0.01,
                4,
                None,
                &pool,
                &mut trace,
            )
            .unwrap();
        assert_eq!(trace.probes.len(), 4);
        assert!(trace.probes.iter().all(|p| p.outcome == ProbeOutcome::Ok));
        assert!(trace.probes.iter().all(|p| p.backend == "fastscan"));
        assert_eq!(
            trace.probes.iter().map(|p| p.scanned).sum::<u64>(),
            out.stats.scanned
        );
        assert!(trace.total_ns > 0);
        // On a serial pool every stage is a disjoint slice of the wall time.
        assert!(trace.stage_sum_ns() <= trace.total_ns);
        let waterfall = trace.render_waterfall();
        assert!(waterfall.contains("coarse_quantize"));
        assert!(waterfall.contains("fastscan"));

        // The trace resets cleanly for reuse on a second query.
        let probes_cap = trace.probes.capacity();
        index
            .search_probes_traced(q, 8, SearchBackend::Naive, 0.0, 2, None, &pool, &mut trace)
            .unwrap();
        assert_eq!(trace.probes.len(), 2);
        assert!(trace.probes.capacity() >= probes_cap.min(2));
        assert!(trace.probes.iter().all(|p| p.backend == "naive"));
    }

    #[test]
    fn by_backend_breakdown_matches_flat_stats() {
        let (index, base) = build_index(500);
        let q = &base[..DIM];
        let single = index.search(q, 8, SearchBackend::Naive, 0.0).unwrap();
        assert_eq!(
            single.by_backend.get(SearchBackend::Naive).scanned,
            single.stats.scanned
        );
        assert_eq!(single.by_backend.total(), single.stats);

        let multi = index
            .search_probes(q, 8, SearchBackend::FastScan, 0.01, 4)
            .unwrap();
        assert_eq!(multi.by_backend.total(), multi.stats);
        assert_eq!(
            multi.by_backend.get(SearchBackend::FastScan).scanned,
            multi.stats.scanned
        );
        assert_eq!(multi.by_backend.get(SearchBackend::Naive).scanned, 0);
        let nonzero: Vec<_> = multi.by_backend.iter_nonzero().map(|(b, _)| b).collect();
        assert_eq!(nonzero, vec![SearchBackend::FastScan]);
    }

    #[test]
    fn generous_deadline_matches_unbudgeted_search() {
        let (index, base) = build_index(500);
        let q = &base[..DIM];
        let budgeted = index
            .search_probes_budgeted(
                q,
                8,
                SearchBackend::Naive,
                0.0,
                4,
                Some(std::time::Duration::from_secs(3600)),
            )
            .unwrap();
        let unbudgeted = index
            .search_probes(q, 8, SearchBackend::Naive, 0.0, 4)
            .unwrap();
        let ids = |o: &SearchOutcome| o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>();
        assert_eq!(ids(&budgeted), ids(&unbudgeted));
        assert_eq!(budgeted.health, SearchHealth::healthy(4));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let (index, _) = build_index(100);
        assert!(matches!(
            index.search(&[0.0; 3], 5, SearchBackend::Naive, 0.0),
            Err(IvfError::DimMismatch { .. })
        ));
        assert!(matches!(
            index.search(&[0.0; DIM], 0, SearchBackend::Naive, 0.0),
            Err(IvfError::Config(_))
        ));
        let train = clustered(100, 1);
        assert!(matches!(
            IvfadcIndex::build(
                &train,
                &train,
                &IvfadcConfig {
                    partitions: 0,
                    ..IvfadcConfig::new(DIM, 1)
                }
            ),
            Err(IvfError::Config(_))
        ));
    }

    #[test]
    fn fastscan_backend_requires_build_support() {
        let train = clustered(600, 2);
        let base = clustered(200, 3);
        let mut config = IvfadcConfig::new(DIM, 2);
        config.backends = vec![SearchBackend::Naive, SearchBackend::Libpq];
        let index = IvfadcIndex::build(&train, &base, &config).unwrap();
        assert!(matches!(
            index.search(&base[..DIM], 5, SearchBackend::FastScan, 0.01),
            Err(IvfError::Config(_))
        ));
        // The other backends still work.
        assert!(index
            .search(&base[..DIM], 5, SearchBackend::Naive, 0.0)
            .is_ok());
    }

    #[test]
    fn fastscan_code_memory_is_bounded_by_row_major_plus_padding() {
        // The §4.2 25 % saving requires partitions large enough to group on
        // 4 components (verified at scale by the fig20 harness and the
        // layout unit tests: 6 bytes/vector). At test sizes the auto-tuner
        // picks c = 0, where packed storage equals row-major plus at most
        // one padded block per group.
        let (index, _) = build_index(2000);
        let row = index.code_memory_bytes(SearchBackend::Naive);
        let packed = index.code_memory_bytes(SearchBackend::FastScan);
        // Loose bound: per group at most one padded 16-vector block of at
        // most 8 bytes/vector; uneven clustered partitions may reach c = 1
        // (16 groups each).
        let max_padding: usize = 4 * 16 * 16 * 8;
        assert!(
            packed <= row + max_padding,
            "packed {packed} >> row-major {row}"
        );
    }
}

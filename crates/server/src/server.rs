//! The serving core: acceptor, per-connection protocol loops, and the
//! batch-coalescing executor.
//!
//! Thread structure (all plain std threads, all joined on shutdown):
//!
//! ```text
//! acceptor ──spawns──▶ conn threads (one per client, protocol loop)
//!                         │  push Job (bounded queue, shed on full)
//!                         ▼
//!                      batcher ── pop_batch (coalesce) ──▶ pool wave
//! ```
//!
//! A connection thread never computes: it decodes a frame, validates it,
//! pushes a [`Job`] carrying a reply channel, and blocks on the reply.
//! The batcher pops coalesced batches and fans the flattened queries out
//! on the shared [`ThreadPool`], one `search_probes_budgeted` call per
//! query with the *remaining* deadline (arrival-to-now already spent in
//! the queue counts against the budget). This is the amortization the
//! paper's serving story needs: one wave of table computations per batch
//! instead of one per round-trip.
//!
//! Shutdown (SIGTERM, ctrl-c, or [`ServerHandle::trigger_shutdown`]):
//! the acceptor stops admitting connections, the queue closes (new pushes
//! get a typed shutting-down error), the batcher drains what is queued
//! and answers it, connection threads finish their in-flight round trip
//! and exit at the next frame boundary, and every thread is joined.

use crate::proto::{
    read_frame, write_frame, ErrorCode, Frame, HealthInfo, QueryAnswer, Request, Response,
};
use crate::queue::{PushError, RequestQueue};
use pqfs_fault::{FaultRead, FaultWrite};
use pqfs_ivf::{IvfadcIndex, SearchBackend};
use pqfs_obs::{LazyCounter, LazyGauge, LazyHistogram};
use pqfs_pool::ThreadPool;
use std::io::{self, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

static CONNECTIONS_TOTAL: LazyCounter = LazyCounter::new(
    "pqfs_server_connections_total",
    "Client connections accepted",
);
static CONNECTIONS_ACTIVE: LazyGauge = LazyGauge::new(
    "pqfs_server_connections_active",
    "Client connections currently open",
);
static REQ_QUERY: LazyCounter = LazyCounter::labeled(
    "pqfs_server_requests_total",
    "Requests received, by frame type",
    "type",
    "query",
);
static REQ_BATCH: LazyCounter = LazyCounter::labeled(
    "pqfs_server_requests_total",
    "Requests received, by frame type",
    "type",
    "batch",
);
static REQ_HEALTH: LazyCounter = LazyCounter::labeled(
    "pqfs_server_requests_total",
    "Requests received, by frame type",
    "type",
    "health",
);
static REQ_STATS: LazyCounter = LazyCounter::labeled(
    "pqfs_server_requests_total",
    "Requests received, by frame type",
    "type",
    "stats",
);
static SHED_TOTAL: LazyCounter = LazyCounter::new(
    "pqfs_server_shed_total",
    "Requests shed by admission control (queue full)",
);
static PROTO_ERRORS: LazyCounter = LazyCounter::new(
    "pqfs_server_protocol_errors_total",
    "Connections dropped on malformed or corrupted frames",
);
static ACCEPT_ERRORS: LazyCounter = LazyCounter::new(
    "pqfs_server_accept_errors_total",
    "Connections dropped at accept time",
);
static BATCHES_TOTAL: LazyCounter = LazyCounter::new(
    "pqfs_server_batches_total",
    "Coalesced batches executed by the batcher",
);
static BATCH_QUERIES: LazyHistogram = LazyHistogram::new(
    "pqfs_server_batch_queries",
    "Queries per coalesced batch (count, not ns)",
);
static QUEUE_DEPTH_HWM: LazyGauge = LazyGauge::new(
    "pqfs_server_queue_depth_hwm",
    "High-water mark of the admission queue depth",
);
static QUEUE_WAIT_NS: LazyHistogram = LazyHistogram::new(
    "pqfs_server_queue_wait_ns",
    "Time requests spent queued before batching",
);
static REQUEST_NS: LazyHistogram = LazyHistogram::new(
    "pqfs_server_request_ns",
    "Request latency, frame decoded to response flushed",
);

/// Connections currently open, mirrored into [`CONNECTIONS_ACTIVE`].
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Server tuning knobs. `Default` values suit tests and small fixtures;
/// the CLI exposes the interesting ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Backend used when a request leaves the backend name empty.
    pub default_backend: SearchBackend,
    /// Batch weight cap: the batcher stops coalescing at this many
    /// queries (a batch-query frame weighs its query count).
    pub max_batch: usize,
    /// How long the batcher lingers for more work once it holds at least
    /// one request. Zero means ship immediately.
    pub max_linger: Duration,
    /// Admission queue capacity, in *requests* (frames, not queries).
    pub queue_capacity: usize,
    /// Acceptor idle-poll interval (also the shutdown-latency bound for
    /// an idle acceptor).
    pub poll_interval: Duration,
    /// Per-read socket timeout; idle connections poll the shutdown flag
    /// at this cadence, and a peer that stalls mid-frame is dropped
    /// after this long.
    pub read_timeout: Duration,
    /// How long a connection thread waits for the batcher's reply before
    /// giving up on the request (a backstop; the batcher answers every
    /// queued job, so this only fires if execution itself wedges).
    pub reply_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            default_backend: SearchBackend::FastScan,
            max_batch: 32,
            max_linger: Duration::from_micros(500),
            queue_capacity: 256,
            poll_interval: Duration::from_millis(5),
            read_timeout: Duration::from_millis(50),
            reply_timeout: Duration::from_secs(60),
        }
    }
}

/// Search parameters resolved and validated at admission time, so the
/// batcher never re-parses.
struct Resolved {
    topk: usize,
    nprobe: usize,
    keep: f64,
    backend: SearchBackend,
    deadline: Option<Duration>,
}

/// One admitted request: queries, resolved parameters, arrival time, and
/// the channel its connection thread blocks on.
struct Job {
    dim: usize,
    queries: Vec<f32>,
    batch: bool,
    resolved: Resolved,
    arrival: Instant,
    reply: mpsc::Sender<Response>,
}

impl Job {
    fn count(&self) -> usize {
        self.queries.len().checked_div(self.dim).unwrap_or(0)
    }
}

/// Shared server state.
struct Shared {
    index: Arc<IvfadcIndex>,
    config: ServerConfig,
    queue: RequestQueue<Job>,
    shutdown: AtomicBool,
}

/// The server entry point; see the module docs for the thread structure.
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the acceptor and batcher threads, and
    /// returns a handle controlling the running server.
    ///
    /// # Errors
    ///
    /// The bind error, when the address is unavailable.
    pub fn start(index: Arc<IvfadcIndex>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            index,
            queue: RequestQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            config,
        });

        let batcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pqfs-batcher".to_string())
                .spawn(move || batcher_loop(&shared))?
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pqfs-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &shared))?
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            acceptor: Mutex::new(Some(acceptor)),
            batcher: Mutex::new(Some(batcher)),
        })
    }
}

/// Controls a running server: address, shutdown trigger, join.
pub struct ServerHandle {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    acceptor: Mutex<Option<thread::JoinHandle<()>>>,
    batcher: Mutex<Option<thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Current admission-queue depth (for stats and tests).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Begins graceful shutdown without blocking: stop admitting, close
    /// the queue. Idempotent.
    pub fn trigger_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// True once shutdown has been triggered.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Triggers shutdown and joins every server thread: in-flight
    /// requests are answered, queued work drains, connections close at
    /// their next frame boundary.
    pub fn shutdown_and_join(&self) {
        self.trigger_shutdown();
        let acceptor = self
            .acceptor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = acceptor {
            // A panicked connection thread must not wedge shutdown.
            let _ = h.join();
        }
        let batcher = self
            .batcher
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = batcher {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn is_wait(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished connection threads so the handle list
                // stays bounded by the live connection count.
                conns.retain_mut(|h| !h.is_finished());
                if let Err(_fault) = pqfs_fault::check("server.accept") {
                    ACCEPT_ERRORS.inc();
                    drop(stream);
                    continue;
                }
                let shared = Arc::clone(shared);
                match thread::Builder::new()
                    .name("pqfs-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    Ok(h) => conns.push(h),
                    Err(_spawn) => ACCEPT_ERRORS.inc(),
                }
            }
            Err(e) if is_wait(e.kind()) => thread::sleep(shared.config.poll_interval),
            Err(_) => thread::sleep(shared.config.poll_interval),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// RAII guard for the active-connection gauge.
struct ActiveGuard;

impl ActiveGuard {
    fn enter() -> ActiveGuard {
        CONNECTIONS_TOTAL.inc();
        let now = ACTIVE.fetch_add(1, Ordering::SeqCst) + 1;
        CONNECTIONS_ACTIVE.set(now as u64);
        ActiveGuard
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        let now = ACTIVE.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        CONNECTIONS_ACTIVE.set(now as u64);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _active = ActiveGuard::enter();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(peek_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FaultRead::new(read_half, "server.conn.read");
    let mut writer = BufWriter::new(FaultWrite::new(stream, "server.conn.write"));

    loop {
        // Poll for the next frame's first byte so an *idle* connection can
        // notice shutdown; once a frame has started, reads time out per
        // `read_timeout` and a stalled peer becomes a protocol error.
        let mut probe = [0u8; 1];
        match peek_half.peek(&mut probe) {
            Ok(0) => return, // peer closed cleanly
            Ok(_) => {}
            Err(e) if is_wait(e.kind()) || e.kind() == ErrorKind::Interrupted => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // frame boundary: safe to close
                }
                continue;
            }
            Err(_) => return,
        }

        if pqfs_fault::check("server.proto.decode").is_err() {
            PROTO_ERRORS.inc();
            send_error(
                &mut writer,
                ErrorCode::BadFrame,
                "injected decode fault".to_string(),
            );
            return;
        }

        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) => {
                PROTO_ERRORS.inc();
                // Best effort: the stream cannot be resynchronized after
                // a framing error, so describe it and hang up.
                send_error(&mut writer, ErrorCode::BadFrame, e.to_string());
                return;
            }
        };
        let started = Instant::now();
        let (response, close) = handle_frame(&frame, shared);
        let frame_out = response.to_frame();
        if write_frame(&mut writer, frame_out.kind, &frame_out.payload).is_err() {
            return;
        }
        if writer.flush().is_err() {
            return;
        }
        REQUEST_NS.observe(started.elapsed());
        if close {
            return;
        }
    }
}

/// Writes a typed error frame, ignoring failures (the connection is being
/// dropped anyway).
fn send_error(writer: &mut impl Write, code: ErrorCode, message: String) {
    let frame = Response::Error { code, message }.to_frame();
    if write_frame(writer, frame.kind, &frame.payload).is_ok() {
        let _ = writer.flush();
    }
}

/// Decodes, validates, and executes one request frame. Returns the
/// response and whether the connection must close afterwards.
fn handle_frame(frame: &Frame, shared: &Arc<Shared>) -> (Response, bool) {
    let request = match Request::from_frame(frame) {
        Ok(req) => req,
        Err(e) => {
            PROTO_ERRORS.inc();
            return (
                Response::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                },
                true,
            );
        }
    };
    match request {
        Request::Health => {
            REQ_HEALTH.inc();
            let index = &shared.index;
            (
                Response::Health(HealthInfo {
                    vectors: index.len() as u64,
                    partitions: index.num_partitions() as u32,
                    dim: index.dim() as u32,
                }),
                false,
            )
        }
        Request::Stats => {
            REQ_STATS.inc();
            (Response::Stats(pqfs_obs::global_json_snapshot()), false)
        }
        Request::Query(req) => {
            REQ_QUERY.inc();
            (submit(req, false, shared), false)
        }
        Request::Batch(req) => {
            REQ_BATCH.inc();
            (submit(req, true, shared), false)
        }
    }
}

/// Validates a query request against the loaded index and the server
/// defaults. Protocol-level range checks already ran in the codec.
fn resolve(
    req: &crate::proto::QueryRequest,
    shared: &Shared,
) -> Result<Resolved, (ErrorCode, String)> {
    let index = &shared.index;
    let dim = req.dim as usize;
    if dim != index.dim() {
        return Err((
            ErrorCode::BadRequest,
            format!("query dim {dim} does not match index dim {}", index.dim()),
        ));
    }
    if req.count() == 0 {
        return Err((ErrorCode::BadRequest, "empty query".to_string()));
    }
    let backend = if req.params.backend.is_empty() {
        shared.config.default_backend
    } else {
        req.params
            .backend
            .parse::<SearchBackend>()
            .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?
    };
    let keep = req.params.keep;
    if !keep.is_finite() || keep <= 0.0 || keep > 1.0 {
        return Err((
            ErrorCode::BadRequest,
            format!("keep fraction {keep} outside (0, 1]"),
        ));
    }
    Ok(Resolved {
        topk: req.params.topk as usize,
        nprobe: (req.params.nprobe as usize).min(index.num_partitions().max(1)),
        keep,
        backend,
        deadline: if req.params.deadline_us == 0 {
            None
        } else {
            Some(Duration::from_micros(req.params.deadline_us))
        },
    })
}

/// Admits one query/batch request into the bounded queue and waits for
/// the batcher's answer. This is where overload turns into a typed shed
/// response instead of unbounded queueing.
fn submit(req: crate::proto::QueryRequest, batch: bool, shared: &Arc<Shared>) -> Response {
    let resolved = match resolve(&req, shared) {
        Ok(r) => r,
        Err((code, message)) => return Response::Error { code, message },
    };
    let (tx, rx) = mpsc::channel();
    let job = Job {
        dim: req.dim as usize,
        queries: req.queries,
        batch,
        resolved,
        arrival: Instant::now(),
        reply: tx,
    };
    match shared.queue.push(job) {
        Ok(depth) => QUEUE_DEPTH_HWM.record_max(depth as u64),
        Err(PushError::Full { capacity, depth }) => {
            SHED_TOTAL.inc();
            return Response::Overloaded {
                capacity: capacity as u32,
                depth: depth as u32,
            };
        }
        Err(PushError::Closed) => {
            return Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining for shutdown".to_string(),
            }
        }
    }
    match rx.recv_timeout(shared.config.reply_timeout) {
        Ok(response) => response,
        Err(_) => Response::Error {
            code: ErrorCode::SearchFailed,
            message: "batch executor did not answer in time".to_string(),
        },
    }
}

/// The batcher: pops coalesced batches and executes every query of every
/// job as one parallel wave on the shared pool.
fn batcher_loop(shared: &Arc<Shared>) {
    let pool = ThreadPool::global();
    // Each query unit runs its probes inline; parallelism comes from the
    // wave fan-out, not from nesting pools.
    let inline = ThreadPool::new(1);
    while let Some(jobs) = shared.queue.pop_batch(
        shared.config.max_batch,
        |job| job.count().max(1),
        shared.config.max_linger,
    ) {
        if jobs.is_empty() {
            continue;
        }
        execute_batch(&jobs, shared, pool, &inline);
    }
}

fn execute_batch(jobs: &[Job], shared: &Arc<Shared>, pool: &ThreadPool, inline: &ThreadPool) {
    let total_queries: usize = jobs.iter().map(Job::count).sum();
    BATCHES_TOTAL.inc();
    BATCH_QUERIES.observe_ns(total_queries as u64);
    for job in jobs {
        QUEUE_WAIT_NS.observe(job.arrival.elapsed());
    }

    if let Err(e) = pqfs_fault::check("server.batch.execute") {
        for job in jobs {
            let _ = job.reply.send(Response::Error {
                code: ErrorCode::SearchFailed,
                message: e.to_string(),
            });
        }
        return;
    }

    // Flatten to (job, query-within-job) units so one slow batch frame
    // does not serialize the wave.
    let mut units: Vec<(usize, usize)> = Vec::with_capacity(total_queries);
    for (j, job) in jobs.iter().enumerate() {
        for q in 0..job.count() {
            units.push((j, q));
        }
    }

    let index = &shared.index;
    let answers: Vec<Result<QueryAnswer, String>> = pool.parallel_map(&units, |_, &(j, q)| {
        let job = &jobs[j];
        let r = &job.resolved;
        let query = &job.queries[q * job.dim..(q + 1) * job.dim];
        // Queue wait counts against the request deadline: what is left
        // of the budget is what the search may spend.
        let budget = r.deadline.map(|d| d.saturating_sub(job.arrival.elapsed()));
        index
            .search_probes_budgeted_on(query, r.topk, r.backend, r.keep, r.nprobe, budget, inline)
            .map(|outcome| QueryAnswer {
                probes_ok: outcome.health.probes_ok as u32,
                probes_failed: outcome.health.probes_failed as u32,
                probes_skipped: outcome.health.probes_skipped as u32,
                neighbors: outcome.neighbors,
            })
            .map_err(|e| e.to_string())
    });

    // Regroup per job and reply. Any failed query fails its whole
    // request — partial batch answers would be ambiguous on the wire.
    let mut cursor = 0usize;
    for job in jobs {
        let n = job.count();
        let slice = &answers[cursor..cursor + n];
        cursor += n;
        let response = match slice.iter().find_map(|r| r.as_ref().err()) {
            Some(msg) => Response::Error {
                code: ErrorCode::SearchFailed,
                message: msg.clone(),
            },
            None => {
                let oks: Vec<QueryAnswer> = slice
                    .iter()
                    .filter_map(|r| r.as_ref().ok())
                    .cloned()
                    .collect();
                if job.batch {
                    Response::Batch(oks)
                } else {
                    match oks.into_iter().next() {
                        Some(answer) => Response::Query(answer),
                        None => Response::Error {
                            code: ErrorCode::SearchFailed,
                            message: "query produced no answer".to_string(),
                        },
                    }
                }
            }
        };
        // The connection thread may have timed out and gone away; a
        // dead receiver is not an error.
        let _ = job.reply.send(response);
    }
}

//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses the remaining command-line tokens. Every token must be a
    /// `--key` followed by a value.
    pub fn parse(mut raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        while let Some(token) = raw.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{token}'"))?;
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            let value = raw
                .next()
                .ok_or_else(|| format!("--{key} is missing its value"))?;
            if values.insert(key.to_string(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args { values })
    }

    /// The raw value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.values.get(key)
    }

    /// The value of a mandatory flag.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .cloned()
            .ok_or_else(|| format!("--{key} is required"))
    }

    /// An optional `usize` flag with a default.
    pub fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// An optional `u64` flag with a default.
    pub fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// An optional `f64` flag with a default.
    pub fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let args = parse(&["--n", "100", "--out", "x.fvecs"]).unwrap();
        assert_eq!(args.usize("n", 0).unwrap(), 100);
        assert_eq!(args.require("out").unwrap(), "x.fvecs");
        assert_eq!(args.usize("dim", 128).unwrap(), 128);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["n", "100"]).is_err(), "missing --");
        assert!(parse(&["--n"]).is_err(), "missing value");
        assert!(parse(&["--n", "1", "--n", "2"]).is_err(), "duplicate");
        assert!(parse(&["--", "1"]).is_err(), "empty flag");
    }

    #[test]
    fn type_errors_are_reported() {
        let args = parse(&["--n", "abc", "--keep", "0.5"]).unwrap();
        assert!(args.usize("n", 0).is_err());
        assert_eq!(args.f64("keep", 0.0).unwrap(), 0.5);
        assert!(args.require("missing").is_err());
    }
}

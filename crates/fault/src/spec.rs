//! Parsing for the `PQFS_FAILPOINTS` spec syntax.
//!
//! Grammar (whitespace around tokens is ignored):
//!
//! ```text
//! spec   := entry (';' entry)*
//! entry  := site '=' action
//! action := 'off' | [count '*'] kind
//! kind   := 'err' | 'io' | 'short_read(N)' | 'short_write(N)'
//!         | 'bitflip(N)' | 'delay(MS)'
//! ```

use crate::FaultAction;
use std::fmt;

/// A malformed failpoint spec entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    message: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad failpoint spec: {}", self.message)
    }
}

impl std::error::Error for FaultSpecError {}

fn err(message: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        message: message.into(),
    }
}

/// A parsed arming: the action plus an optional trigger limit; `None`
/// means the entry was `off` (disarm).
pub(crate) type ParsedArming = Option<(FaultAction, Option<u64>)>;

/// Parses one `site=action` entry. Returns `(site, None)` for `off`,
/// otherwise `(site, Some((action, trigger_limit)))`.
pub(crate) fn parse_entry(entry: &str) -> Result<(String, ParsedArming), FaultSpecError> {
    let (site, action) = entry
        .split_once('=')
        .ok_or_else(|| err(format!("'{entry}' is not 'site=action'")))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(err(format!("empty site name in '{entry}'")));
    }
    let action = action.trim();
    if action == "off" {
        return Ok((site.to_string(), None));
    }
    let (count, kind) = match action.split_once('*') {
        Some((n, rest)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| err(format!("bad trigger count '{n}' in '{entry}'")))?;
            if n == 0 {
                return Err(err(format!("trigger count must be positive in '{entry}'")));
            }
            (Some(n), rest.trim())
        }
        None => (None, action),
    };
    Ok((site.to_string(), Some((parse_kind(kind)?, count))))
}

/// Parses an action kind, e.g. `bitflip(12)`.
fn parse_kind(kind: &str) -> Result<FaultAction, FaultSpecError> {
    match kind {
        "err" | "io" => return Ok(FaultAction::Error),
        _ => {}
    }
    let (name, arg) = match kind.split_once('(') {
        Some((name, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| err(format!("missing ')' in '{kind}'")))?;
            let arg: u64 = arg
                .trim()
                .parse()
                .map_err(|_| err(format!("bad numeric argument in '{kind}'")))?;
            (name.trim(), arg)
        }
        None => {
            return Err(err(format!(
                "unknown action '{kind}' (expected err, io, short_read(N), \
                 short_write(N), bitflip(N), delay(MS) or off)"
            )))
        }
    };
    match name {
        "short_read" => Ok(FaultAction::ShortRead(arg)),
        "short_write" => Ok(FaultAction::ShortWrite(arg)),
        "bitflip" => Ok(FaultAction::BitFlip(arg)),
        "delay" => Ok(FaultAction::Delay(arg)),
        other => Err(err(format!("unknown action '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        assert_eq!(
            parse_entry("a=err").unwrap(),
            ("a".into(), Some((FaultAction::Error, None)))
        );
        assert_eq!(
            parse_entry("a=io").unwrap(),
            ("a".into(), Some((FaultAction::Error, None)))
        );
        assert_eq!(
            parse_entry("a=short_read(9)").unwrap(),
            ("a".into(), Some((FaultAction::ShortRead(9), None)))
        );
        assert_eq!(
            parse_entry("a=short_write(0)").unwrap(),
            ("a".into(), Some((FaultAction::ShortWrite(0), None)))
        );
        assert_eq!(
            parse_entry(" a = 3*bitflip( 12 ) ").unwrap(),
            ("a".into(), Some((FaultAction::BitFlip(12), Some(3))))
        );
        assert_eq!(
            parse_entry("a=delay(250)").unwrap(),
            ("a".into(), Some((FaultAction::Delay(250), None)))
        );
        assert_eq!(parse_entry("a=off").unwrap(), ("a".into(), None));
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "no-equals",
            "=err",
            "a=",
            "a=nope",
            "a=bitflip",
            "a=bitflip(",
            "a=bitflip(x)",
            "a=bitflip(1",
            "a=-1*err",
            "a=0*err",
        ] {
            assert!(parse_entry(bad).is_err(), "'{bad}' should be rejected");
        }
    }
}

//! Development probe: isolates where Fast Scan time goes by sweeping topk
//! (kernel-bound at topk=1, verification-heavy at topk=1000) and comparing
//! against the scalar baselines.

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, Fixture};
use pqfs_metrics::{measure_ms, mvecs_per_sec, Summary};
use pqfs_scan::{Backend, FastScanIndex, FastScanOptions, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let n = env_usize("PQFS_N", 1_000_000);
    let mut fx = Fixture::train(7);
    let codes = Arc::new(fx.partition(n));
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
    let q = fx.queries(1);
    let tables = fx.tables(&q);

    println!(
        "n = {n}, c = {}, groups = {}",
        index.group_components(),
        index.num_groups()
    );

    let opts = ScanOpts::default();
    let baseline = |backend: Backend| {
        let scanner = backend.scanner(&opts).prepare(Arc::clone(&codes)).unwrap();
        let params = ScanParams::new(100);
        Summary::from_values(&measure_ms(5, || scanner.scan(&tables, &params).unwrap())).median()
    };
    let naive_ms = baseline(Backend::Naive);
    let libpq_ms = baseline(Backend::Libpq);
    println!(
        "naive: {naive_ms:.2} ms ({:.0} Mv/s) | libpq: {libpq_ms:.2} ms ({:.0} Mv/s)",
        mvecs_per_sec(n, naive_ms),
        mvecs_per_sec(n, libpq_ms)
    );

    for topk in [1usize, 10, 100, 1000] {
        let params = ScanParams::new(topk).with_keep(0.005);
        let r = index.scan(&tables, &params).unwrap();
        let ms =
            Summary::from_values(&measure_ms(5, || index.scan(&tables, &params).unwrap())).median();
        println!(
            "fastscan topk={topk:<5} {ms:.3} ms ({:.0} Mv/s)  pruned {:.2}%  verified {}  speedup vs libpq {:.1}x",
            mvecs_per_sec(n, ms),
            100.0 * r.stats.pruned_fraction(),
            r.stats.verified,
            libpq_ms / ms
        );
    }
}

//! Exact brute-force nearest neighbors, used as recall ground truth.
//!
//! ANN_SIFT1B ships precomputed ground truth (`.ivecs`); for synthetic data
//! we compute it exactly by linear scan over the float vectors.

/// One exact neighbor: base-set position and squared distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueNeighbor {
    /// Position in the base set.
    pub id: u32,
    /// Squared L2 distance.
    pub dist: f32,
}

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Exact `k` nearest base vectors of one query, ascending by
/// `(distance, id)` (the same tie-break every scan in the workspace uses).
///
/// # Panics
///
/// Panics if `base` is not a multiple of `dim` or the query has the wrong
/// dimensionality.
pub fn exact_knn(base: &[f32], dim: usize, query: &[f32], k: usize) -> Vec<TrueNeighbor> {
    assert!(dim > 0 && base.len() % dim == 0, "base must be n x dim");
    assert_eq!(query.len(), dim, "query dimensionality mismatch");
    let mut all: Vec<TrueNeighbor> = base
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, v)| TrueNeighbor {
            id: i as u32,
            dist: l2_sq(query, v),
        })
        .collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// Ground truth for a batch of queries.
pub fn exact_knn_batch(
    base: &[f32],
    dim: usize,
    queries: &[f32],
    k: usize,
) -> Vec<Vec<TrueNeighbor>> {
    assert!(
        dim > 0 && queries.len() % dim == 0,
        "queries must be n x dim"
    );
    queries
        .chunks_exact(dim)
        .map(|q| exact_knn(base, dim, q, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_obvious_neighbor() {
        let base = [0.0f32, 0.0, 10.0, 0.0, 0.0, 10.0];
        let result = exact_knn(&base, 2, &[9.0, 1.0], 2);
        assert_eq!(result[0].id, 1);
        assert_eq!(result[0].dist, 2.0);
        assert_eq!(result[1].id, 0); // (0,0) at 82 beats (0,10) at 162
    }

    #[test]
    fn ties_resolve_by_id() {
        let base = [1.0f32, 1.0, 1.0, 1.0]; // two identical points
        let result = exact_knn(&base, 2, &[0.0, 0.0], 2);
        assert_eq!(result[0].id, 0);
        assert_eq!(result[1].id, 1);
    }

    #[test]
    fn k_larger_than_base_returns_all() {
        let base = [0.0f32, 0.0];
        let result = exact_knn(&base, 2, &[1.0, 1.0], 10);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn batch_matches_single_queries() {
        let base: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let queries = [0.5f32, 1.5, 15.0, 16.0];
        let batch = exact_knn_batch(&base, 2, &queries, 3);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], exact_knn(&base, 2, &queries[..2], 3));
        assert_eq!(batch[1], exact_knn(&base, 2, &queries[2..], 3));
    }
}

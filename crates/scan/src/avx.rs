//! The "avx" PQ Scan variant (paper §3.2, Figure 4).
//!
//! Computes the `pqdistance` of **8 database vectors at a time** with
//! vertical SIMD additions. The table lookups themselves stay scalar — the
//! looked-up values are not contiguous in memory, so each SIMD way has to be
//! set individually, and that insertion cost offsets the benefit of the
//! SIMD adds. The paper's Figure 3 shows this implementation is only
//! marginally faster than the naive one; our `fig3` harness reproduces that.
//!
//! On x86-64 CPUs with AVX the inner loop uses 256-bit `_mm256_add_ps`; a
//! bit-identical portable fallback (same per-lane accumulation order) runs
//! everywhere else and doubles as the test oracle.

use crate::result::{ScanResult, ScanStats};
use pqfs_core::layout::TRANSPOSED_BLOCK;
use pqfs_core::{DistanceTables, TopK, TransposedCodes};

/// Scans transposed codes with vertical-add batches of 8 vectors.
///
/// Returns exactly the same neighbors as [`crate::scan_naive`] on the
/// equivalent row-major layout.
///
/// # Panics
///
/// Panics if `topk == 0` or `tables.m() != codes.m()`.
pub fn scan_avx(tables: &DistanceTables, codes: &TransposedCodes, topk: usize) -> ScanResult {
    assert_eq!(tables.m(), codes.m(), "tables and codes must share m");
    let mut heap = TopK::new(topk);
    let n = codes.len();
    let mut dists = [0f32; TRANSPOSED_BLOCK];

    for b in 0..codes.num_blocks() {
        block_distances(tables, codes, b, &mut dists);
        let base = b * TRANSPOSED_BLOCK;
        for (lane, &d) in dists.iter().enumerate() {
            let i = base + lane;
            if i < n {
                heap.push(d, i as u64);
            }
        }
    }

    ScanResult {
        neighbors: heap.into_sorted(),
        stats: ScanStats {
            scanned: n as u64,
            ..ScanStats::default()
        },
    }
}

/// Fills `dists` with the 8 pqdistances of block `b`, using AVX when the CPU
/// has it.
#[inline]
fn block_distances(
    tables: &DistanceTables,
    codes: &TransposedCodes,
    b: usize,
    dists: &mut [f32; TRANSPOSED_BLOCK],
) {
    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { block_distances_avx(tables, codes, b, dists) };
            #[cfg(feature = "checked-kernels")]
            if crate::checked::should_check() {
                let mut shadow = [0f32; TRANSPOSED_BLOCK];
                block_distances_portable(tables, codes, b, &mut shadow);
                crate::checked::assert_lanes_match("avx.block_distances", dists, &shadow);
            }
            return;
        }
    }
    block_distances_portable(tables, codes, b, dists);
}

/// Portable fallback with the same per-lane accumulation order as the AVX
/// path (one vertical add per table), so results are bit-identical.
fn block_distances_portable(
    tables: &DistanceTables,
    codes: &TransposedCodes,
    b: usize,
    dists: &mut [f32; TRANSPOSED_BLOCK],
) {
    dists.fill(0.0);
    for j in 0..codes.m() {
        let word = codes.component_word(b, j);
        let table = tables.table(j);
        for (lane, &idx) in word.iter().enumerate() {
            dists[lane] += table[idx as usize];
        }
    }
}

/// # Safety
///
/// The caller must verify AVX support at runtime
/// (`is_x86_feature_detected!("avx")`) before calling.
#[cfg(all(target_arch = "x86_64", feature = "avx2"))]
#[target_feature(enable = "avx")]
unsafe fn block_distances_avx(
    tables: &DistanceTables,
    codes: &TransposedCodes,
    b: usize,
    dists: &mut [f32; TRANSPOSED_BLOCK],
) {
    use std::arch::x86_64::*;
    debug_assert!(b < codes.num_blocks(), "block index out of range");
    let mut acc = _mm256_setzero_ps();
    for j in 0..codes.m() {
        let word = codes.component_word(b, j);
        let table = tables.table(j);
        // The paper's pain point, reproduced faithfully: the 8 looked-up
        // values are scattered, so the SIMD ways are set one by one.
        let vals = _mm256_setr_ps(
            table[word[0] as usize],
            table[word[1] as usize],
            table[word[2] as usize],
            table[word[3] as usize],
            table[word[4] as usize],
            table[word[5] as usize],
            table[word[6] as usize],
            table[word[7] as usize],
        );
        acc = _mm256_add_ps(acc, vals);
    }
    // SAFETY: `dists` is a valid, writable `[f32; 8]` — exactly the 32
    // bytes an unaligned 256-bit store touches.
    unsafe { _mm256_storeu_ps(dists.as_mut_ptr(), acc) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::scan_naive;
    use pqfs_core::RowMajorCodes;

    fn fixture(n: usize) -> (DistanceTables, RowMajorCodes, TransposedCodes) {
        let mut data = Vec::with_capacity(8 * 16);
        for j in 0..8 {
            for i in 0..16 {
                data.push((j as f32 + 0.5) * (i as f32) * 1.25);
            }
        }
        let tables = DistanceTables::from_raw(data, 8, 16);
        let bytes: Vec<u8> = (0..n * 8).map(|i| ((i * 13 + 5) % 16) as u8).collect();
        let row = RowMajorCodes::new(bytes, 8);
        let transposed = TransposedCodes::from_row_major(&row);
        (tables, row, transposed)
    }

    #[test]
    fn matches_naive_including_ragged_tail() {
        for n in [1usize, 7, 8, 9, 100, 123] {
            let (tables, row, transposed) = fixture(n);
            let a = scan_naive(&tables, &row, 10.min(n));
            let b = scan_avx(&tables, &transposed, 10.min(n));
            assert_eq!(a.ids(), b.ids(), "n={n}");
            for (x, y) in a.distances().iter().zip(b.distances()) {
                assert!((x - y).abs() < 1e-4, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn portable_and_dispatched_paths_agree() {
        let (tables, _, transposed) = fixture(64);
        let mut a = [0f32; TRANSPOSED_BLOCK];
        let mut b = [0f32; TRANSPOSED_BLOCK];
        for blk in 0..transposed.num_blocks() {
            block_distances(&tables, &transposed, blk, &mut a);
            block_distances_portable(&tables, &transposed, blk, &mut b);
            assert_eq!(a, b, "block {blk}");
        }
    }

    #[test]
    fn padding_lanes_never_enter_results() {
        let (tables, _, transposed) = fixture(9); // tail block has 7 pad lanes
        let result = scan_avx(&tables, &transposed, 9);
        assert_eq!(result.neighbors.len(), 9);
        assert!(result.ids().iter().all(|&id| id < 9));
    }
}

//! The "gather" PQ Scan variant (paper §3.2, Figure 5).
//!
//! Haswell's AVX2 `vpgatherdps` looks up 8 table elements addressed by an
//! index register in a single instruction, which seems tailor-made for PQ
//! Scan: transpose the code layout so `a[j] … h[j]` sit in one 64-bit word
//! (one *mem1* load), widen the 8 bytes to 32-bit lanes, gather from `D_j`.
//!
//! The paper measures this implementation as *slower* than the naive scan:
//! the gather still performs one memory access per element, decodes to 34
//! µops and has an 18-cycle latency with a 10-cycle reciprocal throughput
//! (Table 2). Our `fig3`/`table2` harnesses reproduce the effect with the
//! real instruction on AVX2 hosts.

use crate::result::{ScanResult, ScanStats};
use pqfs_core::layout::TRANSPOSED_BLOCK;
use pqfs_core::{DistanceTables, TopK, TransposedCodes};

/// Scans transposed codes with gather-style table lookups.
///
/// Returns exactly the same neighbors as [`crate::scan_naive`] on the
/// equivalent row-major layout.
///
/// # Panics
///
/// Panics if `topk == 0` or `tables.m() != codes.m()`.
pub fn scan_gather(tables: &DistanceTables, codes: &TransposedCodes, topk: usize) -> ScanResult {
    assert_eq!(tables.m(), codes.m(), "tables and codes must share m");
    let mut heap = TopK::new(topk);
    let n = codes.len();
    let mut dists = [0f32; TRANSPOSED_BLOCK];

    for b in 0..codes.num_blocks() {
        block_distances(tables, codes, b, &mut dists);
        let base = b * TRANSPOSED_BLOCK;
        for (lane, &d) in dists.iter().enumerate() {
            let i = base + lane;
            if i < n {
                heap.push(d, i as u64);
            }
        }
    }

    ScanResult {
        neighbors: heap.into_sorted(),
        stats: ScanStats {
            scanned: n as u64,
            ..ScanStats::default()
        },
    }
}

#[inline]
fn block_distances(
    tables: &DistanceTables,
    codes: &TransposedCodes,
    b: usize,
    dists: &mut [f32; TRANSPOSED_BLOCK],
) {
    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { block_distances_gather(tables, codes, b, dists) };
            #[cfg(feature = "checked-kernels")]
            if crate::checked::should_check() {
                let mut shadow = [0f32; TRANSPOSED_BLOCK];
                block_distances_portable(tables, codes, b, &mut shadow);
                crate::checked::assert_lanes_match("gather.block_distances", dists, &shadow);
            }
            return;
        }
    }
    block_distances_portable(tables, codes, b, dists);
}

/// Portable emulation: one load of the component word, then 8 indexed
/// lookups — the exact memory-access pattern of the hardware gather.
fn block_distances_portable(
    tables: &DistanceTables,
    codes: &TransposedCodes,
    b: usize,
    dists: &mut [f32; TRANSPOSED_BLOCK],
) {
    dists.fill(0.0);
    for j in 0..codes.m() {
        let word = codes.component_word(b, j);
        let table = tables.table(j);
        for (lane, &idx) in word.iter().enumerate() {
            dists[lane] += table[idx as usize];
        }
    }
}

/// # Safety
///
/// The caller must verify AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`) before calling. Every byte of every
/// component word must be a valid index into the corresponding distance
/// table (guaranteed by construction: `TransposedCodes` stores 8-bit codes
/// and `DistanceTables` has `ksub() == 256` entries per component).
#[cfg(all(target_arch = "x86_64", feature = "avx2"))]
#[target_feature(enable = "avx2")]
unsafe fn block_distances_gather(
    tables: &DistanceTables,
    codes: &TransposedCodes,
    b: usize,
    dists: &mut [f32; TRANSPOSED_BLOCK],
) {
    use std::arch::x86_64::*;
    debug_assert!(b < codes.num_blocks(), "block index out of range");
    let mut acc = _mm256_setzero_ps();
    for j in 0..codes.m() {
        let word = codes.component_word(b, j);
        debug_assert!(
            word.iter().all(|&c| (c as usize) < tables.ksub()),
            "code byte out of table range"
        );
        // SAFETY: `word` is a `&[u8; 8]`, so reading its low 64 bits as an
        // unaligned `__m128i` low half stays in bounds.
        let bytes = unsafe { _mm_loadl_epi64(word.as_ptr() as *const __m128i) };
        let indexes = _mm256_cvtepu8_epi32(bytes);
        // mem2: vpgatherdps — 8 table accesses in one instruction.
        let table = tables.table(j);
        // SAFETY: each gathered lane reads `table[word[lane]]`; the codes
        // are u8 and each table holds `k() == 256` f32s, so every scaled
        // offset is in bounds.
        let vals = unsafe { _mm256_i32gather_ps::<4>(table.as_ptr(), indexes) };
        acc = _mm256_add_ps(acc, vals);
    }
    // SAFETY: `dists` is a valid, writable `[f32; 8]` — exactly the 32
    // bytes an unaligned 256-bit store touches.
    unsafe { _mm256_storeu_ps(dists.as_mut_ptr(), acc) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::scan_naive;
    use pqfs_core::RowMajorCodes;

    fn fixture(n: usize) -> (DistanceTables, RowMajorCodes, TransposedCodes) {
        let mut data = Vec::with_capacity(8 * 256);
        for j in 0..8 {
            for i in 0..256 {
                data.push(((i * 31 + j * 7) % 997) as f32 * 0.5);
            }
        }
        let tables = DistanceTables::from_raw(data, 8, 256);
        let bytes: Vec<u8> = (0..n * 8).map(|i| ((i * 131 + 17) % 256) as u8).collect();
        let row = RowMajorCodes::new(bytes, 8);
        let transposed = TransposedCodes::from_row_major(&row);
        (tables, row, transposed)
    }

    #[test]
    fn matches_naive_including_ragged_tail() {
        for n in [1usize, 8, 9, 64, 250] {
            let (tables, row, transposed) = fixture(n);
            let a = scan_naive(&tables, &row, 10.min(n));
            let b = scan_gather(&tables, &transposed, 10.min(n));
            assert_eq!(a.ids(), b.ids(), "n={n}");
            for (x, y) in a.distances().iter().zip(b.distances()) {
                assert!((x - y).abs() < 1e-3, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn hardware_gather_agrees_with_portable_emulation() {
        let (tables, _, transposed) = fixture(128);
        let mut a = [0f32; TRANSPOSED_BLOCK];
        let mut b = [0f32; TRANSPOSED_BLOCK];
        for blk in 0..transposed.num_blocks() {
            block_distances(&tables, &transposed, blk, &mut a);
            block_distances_portable(&tables, &transposed, blk, &mut b);
            assert_eq!(a, b, "block {blk}");
        }
    }
}

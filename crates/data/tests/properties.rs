//! Property-based tests of the dataset substrate: file-format roundtrips
//! and generator invariants.

use pqfs_data::{
    exact_knn, generate, read_bvecs, read_fvecs, read_ivecs, write_bvecs, write_fvecs, write_ivecs,
    SyntheticConfig,
};
use proptest::prelude::*;

fn tmp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    // Unique per process + tag + a counter to survive parallel test runs.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    p.push(format!("pqfs-prop-{}-{tag}-{c}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// fvecs roundtrip preserves every bit of every vector.
    #[test]
    fn fvecs_roundtrip(
        dim in 1usize..16,
        rows in prop::collection::vec(prop::collection::vec(-1e6f32..1e6, 1..16), 0..20),
    ) {
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().take(dim).copied()).collect();
        let data = {
            let mut d = data;
            d.truncate(d.len() / dim * dim);
            d
        };
        prop_assume!(!data.is_empty());
        let path = tmp_path("f");
        write_fvecs(&path, &data, dim).unwrap();
        let file = read_fvecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(file.dim, dim);
        prop_assert_eq!(file.data, data);
    }

    /// bvecs roundtrip preserves bytes.
    #[test]
    fn bvecs_roundtrip(
        dim in 1usize..32,
        n in 1usize..20,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..n * dim).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
        let path = tmp_path("b");
        write_bvecs(&path, &data, dim).unwrap();
        let file = read_bvecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(file.len(), n);
        prop_assert_eq!(file.data, data);
    }

    /// ivecs roundtrip preserves signed integers.
    #[test]
    fn ivecs_roundtrip(
        dim in 1usize..8,
        rows in prop::collection::vec(prop::collection::vec(any::<i32>(), 1..8), 1..10),
    ) {
        let data: Vec<i32> = rows.iter().flat_map(|r| r.iter().take(dim).copied()).collect();
        let data = {
            let mut d = data;
            d.truncate(d.len() / dim * dim);
            d
        };
        prop_assume!(!data.is_empty());
        let path = tmp_path("i");
        write_ivecs(&path, &data, dim).unwrap();
        let file = read_ivecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(file.data, data);
    }

    /// The generator stays in the SIFT byte range and is seed-deterministic
    /// for arbitrary configurations.
    #[test]
    fn generator_invariants(
        dim in prop::sample::select(vec![4usize, 16, 32]),
        clusters in 1usize..32,
        std in 0.0f32..60.0,
        coherence in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let cfg = SyntheticConfig {
            dim,
            clusters,
            cluster_std: std,
            block_dim: 16,
            block_coherence: coherence,
            seed,
        };
        let a = generate(50, &cfg);
        prop_assert_eq!(a.len(), 50 * dim);
        prop_assert!(a.iter().all(|&x| (0.0..=255.0).contains(&x)));
        prop_assert_eq!(&a, &generate(50, &cfg));
    }

    /// Brute-force kNN returns sorted, unique, in-range neighbors.
    #[test]
    fn exact_knn_is_sorted_and_unique(
        base in prop::collection::vec(0.0f32..100.0, 2..200),
        query in prop::collection::vec(0.0f32..100.0, 2),
        k in 1usize..20,
    ) {
        let base = {
            let mut b = base;
            b.truncate(b.len() / 2 * 2);
            b
        };
        prop_assume!(base.len() >= 2);
        let result = exact_knn(&base, 2, &query, k);
        prop_assert_eq!(result.len(), k.min(base.len() / 2));
        for pair in result.windows(2) {
            prop_assert!(
                pair[0].dist < pair[1].dist
                    || (pair[0].dist == pair[1].dist && pair[0].id < pair[1].id)
            );
        }
        prop_assert!(result.iter().all(|n| (n.id as usize) < base.len() / 2));
    }
}

//! Clustering substrate for the PQ Fast Scan reproduction.
//!
//! Product quantization (paper §2.1) is built from *Lloyd-optimal vector
//! quantizers*, i.e. k-means codebooks. This crate provides:
//!
//! * [`lloyd`] — Lloyd's algorithm with k-means++ initialization and
//!   empty-cluster repair, used to train every sub-quantizer and the IVF
//!   coarse quantizer;
//! * [`samesize`] — a same-size k-means variant (paper §4.3, reference
//!   \[24\]: E. Schubert, *Same-size k-means variation*) used to compute the
//!   optimized assignment of sub-quantizer centroid indexes that makes the
//!   minimum tables of PQ Fast Scan tight;
//! * [`distance`] — the squared-L2 kernels shared by both.
//!
//! All entry points are deterministic given the `seed` in their
//! configuration; no global RNG state is consulted.
//!
//! # Example
//!
//! ```
//! use pqfs_kmeans::{KMeansConfig, train};
//!
//! // Four obvious clusters on a line.
//! let data: Vec<f32> = [0.0f32, 0.1, 10.0, 10.1, 20.0, 20.1, 30.0, 30.1]
//!     .iter().flat_map(|&x| [x, 0.0]).collect();
//! let model = train(&data, 2, &KMeansConfig::new(4).with_seed(7)).unwrap();
//! assert_eq!(model.k(), 4);
//! // Nearby points land in the same cluster.
//! let (c0, _) = model.assign(&[0.05, 0.0]);
//! let (c1, _) = model.assign(&[0.02, 0.0]);
//! assert_eq!(c0, c1);
//! ```

#![forbid(unsafe_code)]

pub mod distance;
mod error;
pub mod lloyd;
pub mod samesize;

pub use error::KMeansError;
pub use lloyd::{train, InitMethod, KMeans, KMeansConfig};
pub use samesize::{train_same_size, SameSizeConfig, SameSizeKMeans};

//! Per-query distance tables and asymmetric distance computation (ADC).
//!
//! Step 2 of the paper's Algorithm 1 computes, for a query `y`, the `m`
//! tables `D_j[i] = ||u_j(y) − C_j[i]||²` (Eq. 2). The ADC distance of a
//! database code `p` is then `Σ_j D_j[p[j]]` (Eq. 3). PQ Scan spends >99 % of
//! its time in these lookups, which is what Fast Scan attacks.

use crate::pq::ProductQuantizer;
use crate::PqError;

/// The `m × k*` distance tables of one query.
#[derive(Debug, Clone)]
pub struct DistanceTables {
    /// Row-major `m × ksub` distances.
    data: Vec<f32>,
    m: usize,
    ksub: usize,
}

impl DistanceTables {
    /// Computes the tables for `query` against a trained quantizer
    /// (paper Eq. 2; `compute_distance_tables` in Algorithm 1).
    ///
    /// # Errors
    ///
    /// [`PqError::DimMismatch`] if the query dimensionality is wrong.
    pub fn compute(pq: &ProductQuantizer, query: &[f32]) -> Result<Self, PqError> {
        let mut tables = DistanceTables {
            data: Vec::new(),
            m: 0,
            ksub: 0,
        };
        tables.recompute(pq, query)?;
        Ok(tables)
    }

    /// Recomputes the tables for a new query in place, reusing the existing
    /// storage (the hot batch-query path keeps one `DistanceTables` per
    /// worker thread and recomputes it per query instead of allocating).
    /// The tables take the quantizer's shape; any previous shape is
    /// overwritten.
    ///
    /// # Errors
    ///
    /// [`PqError::DimMismatch`] if the query dimensionality is wrong.
    pub fn recompute(&mut self, pq: &ProductQuantizer, query: &[f32]) -> Result<(), PqError> {
        let dim = pq.config().dim();
        if query.len() != dim {
            return Err(PqError::DimMismatch {
                expected: dim,
                actual: query.len(),
            });
        }
        self.m = pq.config().m();
        self.ksub = pq.config().ksub();
        let dsub = pq.config().dsub();
        self.data.resize(self.m * self.ksub, 0.0);
        for j in 0..self.m {
            pq.codebook(j).distances(
                &query[j * dsub..(j + 1) * dsub],
                &mut self.data[j * self.ksub..(j + 1) * self.ksub],
            );
        }
        Ok(())
    }

    /// An empty placeholder (`m = 0`) for scratch that is filled by
    /// [`recompute`](Self::recompute) before first use.
    pub fn placeholder() -> Self {
        DistanceTables {
            data: Vec::new(),
            m: 0,
            ksub: 0,
        }
    }

    /// Wraps raw tables (tests / serialization).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m * ksub`.
    pub fn from_raw(data: Vec<f32>, m: usize, ksub: usize) -> Self {
        assert_eq!(data.len(), m * ksub);
        DistanceTables { data, m, ksub }
    }

    /// Number of tables (`m`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Entries per table (`k*`).
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Table `D_j` as a slice of `k*` distances.
    ///
    /// # Panics
    ///
    /// Panics if `j >= m`.
    #[inline]
    pub fn table(&self, j: usize) -> &[f32] {
        &self.data[j * self.ksub..(j + 1) * self.ksub]
    }

    /// Raw row-major storage (`m × ksub`).
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// The ADC distance of one code: `Σ_j D_j[p[j]]` (paper Eq. 3,
    /// `pqdistance` in Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `code.len() != m`; this is the hot path,
    /// so release builds rely on callers passing encoder-produced codes.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let mut d = 0f32;
        // chunks_exact + u8 index let LLVM elide every bounds check when
        // ksub == 256 (the hot PQ 8x8 case).
        for (row, &idx) in self.data.chunks_exact(self.ksub).zip(code) {
            d += row[idx as usize];
        }
        d
    }

    /// Per-table minima, `min_i D_j[i]` — the per-table biases of the Fast
    /// Scan distance quantization (DESIGN §3).
    pub fn per_table_min(&self) -> Vec<f32> {
        (0..self.m)
            .map(|j| self.table(j).iter().copied().fold(f32::INFINITY, f32::min))
            .collect()
    }

    /// Smallest entry across all tables — the paper's `qmin` (§4.4).
    pub fn global_min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of per-table minima: the tightest possible lower bound on any ADC
    /// distance from these tables.
    pub fn sum_of_mins(&self) -> f32 {
        self.per_table_min().iter().sum()
    }

    /// Sum of per-table maxima: the paper's note that setting `qmax` to "the
    /// maximum possible distance, i.e. the sum of the maximums of all
    /// distance tables" gives a coarse quantization (§4.4, Figure 12).
    pub fn max_sum(&self) -> f32 {
        (0..self.m)
            .map(|j| {
                self.table(j)
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PqConfig;
    use pqfs_kmeans::distance::l2_sq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fixture() -> (ProductQuantizer, Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(21);
        let config = PqConfig::new(16, 4, 4).unwrap();
        let data: Vec<f32> = (0..300 * 16)
            .map(|_| rng.gen_range(0.0..100.0f32))
            .collect();
        let pq = ProductQuantizer::train(&data, &config, 9).unwrap();
        let query: Vec<f32> = (0..16).map(|_| rng.gen_range(0.0..100.0f32)).collect();
        (pq, data, query)
    }

    #[test]
    fn adc_equals_distance_to_reconstruction() {
        // d~(p, y) = ||y - decode(p)||² exactly (Eq. 1 expanded per table).
        let (pq, data, query) = fixture();
        let tables = DistanceTables::compute(&pq, &query).unwrap();
        for v in data.chunks_exact(16).take(20) {
            let code = pq.encode(v);
            let rec = pq.decode(&code).unwrap();
            let direct = l2_sq(&query, &rec);
            let via_tables = tables.distance(&code);
            assert!(
                (direct - via_tables).abs() <= 1e-2 * direct.max(1.0),
                "ADC {via_tables} != direct {direct}"
            );
        }
    }

    #[test]
    fn tables_have_expected_shape_and_row_content() {
        let (pq, _, query) = fixture();
        let tables = DistanceTables::compute(&pq, &query).unwrap();
        assert_eq!(tables.m(), 4);
        assert_eq!(tables.ksub(), 16);
        // Row j entry i must equal the distance from the query sub-vector to
        // centroid i of codebook j.
        for j in 0..4 {
            for i in 0..16 {
                let expect = l2_sq(&query[j * 4..(j + 1) * 4], pq.codebook(j).centroid(i));
                assert_eq!(tables.table(j)[i], expect);
            }
        }
    }

    #[test]
    fn min_max_summaries_are_consistent() {
        let (pq, _, query) = fixture();
        let tables = DistanceTables::compute(&pq, &query).unwrap();
        let mins = tables.per_table_min();
        assert_eq!(mins.len(), 4);
        let global = tables.global_min();
        assert!(mins.iter().all(|&m| m >= global));
        assert!(mins.contains(&global));
        assert!(tables.sum_of_mins() <= tables.max_sum());
        // Any actual distance is between sum_of_mins and max_sum.
        let code = vec![3u8, 7, 11, 15];
        let d = tables.distance(&code);
        assert!(d >= tables.sum_of_mins() && d <= tables.max_sum());
    }

    #[test]
    fn recompute_reuses_storage_and_matches_compute() {
        let (pq, _, query) = fixture();
        let fresh = DistanceTables::compute(&pq, &query).unwrap();
        let mut reused = DistanceTables::placeholder();
        assert_eq!(reused.m(), 0);
        reused.recompute(&pq, &query).unwrap();
        assert_eq!(reused.raw(), fresh.raw());
        assert_eq!(reused.m(), fresh.m());
        assert_eq!(reused.ksub(), fresh.ksub());
        // Recomputing for a second query fully overwrites the first.
        let query2: Vec<f32> = query.iter().map(|&x| x + 1.0).collect();
        reused.recompute(&pq, &query2).unwrap();
        let fresh2 = DistanceTables::compute(&pq, &query2).unwrap();
        assert_eq!(reused.raw(), fresh2.raw());
        // Errors leave the scratch usable.
        assert!(reused.recompute(&pq, &[0.0; 3]).is_err());
        reused.recompute(&pq, &query).unwrap();
        assert_eq!(reused.raw(), fresh.raw());
    }

    #[test]
    fn rejects_wrong_query_dim() {
        let (pq, _, _) = fixture();
        assert!(matches!(
            DistanceTables::compute(&pq, &[0.0; 5]),
            Err(PqError::DimMismatch {
                expected: 16,
                actual: 5
            })
        ));
    }

    #[test]
    fn from_raw_and_distance_agree_with_manual_sum() {
        // Hand-built 2×4 tables.
        let t = DistanceTables::from_raw(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], 2, 4);
        assert_eq!(t.distance(&[0, 0]), 11.0);
        assert_eq!(t.distance(&[3, 2]), 34.0);
        assert_eq!(t.per_table_min(), vec![1.0, 10.0]);
        assert_eq!(t.global_min(), 1.0);
        assert_eq!(t.max_sum(), 44.0);
    }
}

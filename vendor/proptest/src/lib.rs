//! Offline drop-in replacement for the subset of the [`proptest` crate] API
//! this workspace uses: the [`proptest!`] macro, range/`any`/collection/
//! sample strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim keeps the same import surface so
//! swapping the real dependency back is a one-line `Cargo.toml` change. The
//! one behavioral difference: **no shrinking** — a failing case reports its
//! inputs via the panic message but is not minimized.
//!
//! [`proptest` crate]: https://crates.io/crates/proptest

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A failed (or rejected) test case, mirroring `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The inputs were rejected by a `prop_assume!` filter.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given reason.
    pub fn fail(reason: impl core::fmt::Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// An input rejection with the given reason.
    pub fn reject(reason: impl core::fmt::Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies.
///
/// Seeded from the property name and case index, so runs are reproducible
/// without any persistence files.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`
/// (generation only; no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing always the same value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::UniformSampled> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::UniformSampled> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy combinator namespaces, mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Element count for [`vec`]: an exact size or a size range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A `Vec` whose elements come from `element` and whose length comes
        /// from `size` (an exact `usize` or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.

        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }

        /// Picks uniformly among `items`.
        ///
        /// # Panics
        ///
        /// Panics when sampled if `items` is empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }` blocks
/// become `#[test]` functions running `cases` sampled inputs each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(message)) => panic!(
                        "proptest '{}' case {case}/{} failed: {message}\n(no shrinking: \
                         inputs are reported as generated)",
                        stringify!($name),
                        config.cases,
                    ),
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Skips the current case when `cond` does not hold, mirroring
/// `proptest::prop_assume!` (the case counts as run; no retry draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "assumption failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3usize..10,
            v in prop::collection::vec(0.0f32..1.0, 2..5),
            pick in prop::sample::select(vec![1u8, 2, 4]),
            b in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)));
            prop_assert!([1u8, 2, 4].contains(&pick));
            let _: bool = b;
        }

        #[test]
        fn prop_map_transforms(n in prop::collection::vec(any::<u8>(), 4).prop_map(|v| v.len())) {
            prop_assert_eq!(n, 4);
        }
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(false, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}

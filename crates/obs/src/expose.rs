//! Exposition formats: Prometheus text format and a JSON snapshot.
//!
//! Both walk the registry once under its lock and render from the same
//! collected values, so a JSON snapshot and a Prometheus exposition taken
//! back-to-back describe the same instant per metric. Ordering is the
//! registry's deterministic `(name, label)` sort, which makes the output
//! suitable for golden tests.

#[cfg(feature = "telemetry")]
mod enabled_impl {
    use crate::histogram::{bucket_le, BUCKET_COUNT};
    use crate::registry::Registry;

    fn escape_label(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out
    }

    fn escape_json(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders `registry` in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` comments, one sample per line, histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`).
    pub fn prometheus_text(registry: &Registry) -> String {
        fn header(
            out: &mut String,
            last_name: &mut Option<&'static str>,
            name: &'static str,
            help: &str,
            kind: &str,
        ) {
            if *last_name != Some(name) {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                *last_name = Some(name);
            }
        }
        let collected = registry.collect();
        let mut out = String::new();
        let mut last_name: Option<&'static str> = None;
        for (name, help, label, value) in &collected.counters {
            header(&mut out, &mut last_name, name, help, "counter");
            match label {
                None => out.push_str(&format!("{name} {value}\n")),
                Some((k, v)) => {
                    out.push_str(&format!("{name}{{{k}=\"{}\"}} {value}\n", escape_label(v)))
                }
            }
        }
        last_name = None;
        for (name, help, label, value) in &collected.gauges {
            header(&mut out, &mut last_name, name, help, "gauge");
            match label {
                None => out.push_str(&format!("{name} {value}\n")),
                Some((k, v)) => {
                    out.push_str(&format!("{name}{{{k}=\"{}\"}} {value}\n", escape_label(v)))
                }
            }
        }
        for (name, help, buckets, snap) in &collected.histograms {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in buckets.iter().enumerate().take(BUCKET_COUNT) {
                cum += c;
                match bucket_le(i) {
                    Some(le) => out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n")),
                    None => out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n")),
                }
            }
            out.push_str(&format!("{name}_sum {}\n", snap.sum));
            out.push_str(&format!("{name}_count {}\n", snap.count));
        }
        out
    }

    /// Renders `registry` as a pretty-printed JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": { "name{label=\"v\"}": 3, ... },
    ///   "gauges": { "name": 7, ... },
    ///   "histograms": {
    ///     "name": { "count": 2, "sum_ns": 10, "max_ns": 8,
    ///               "p50_ns": 8, "p90_ns": 8, "p99_ns": 8 }, ...
    ///   }
    /// }
    /// ```
    ///
    /// Keys use the Prometheus series notation (`name{label="value"}`) so
    /// the two expositions line up one-to-one.
    pub fn json_snapshot(registry: &Registry) -> String {
        let collected = registry.collect();
        let series_key = |name: &str, label: &Option<(&'static str, String)>| match label {
            None => name.to_string(),
            Some((k, v)) => format!("{name}{{{k}=\"{}\"}}", escape_label(v)),
        };
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, _, label, value) in &collected.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {value}",
                escape_json(&series_key(name, label))
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (name, _, label, value) in &collected.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {value}",
                escape_json(&series_key(name, label))
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (name, _, _, snap) in &collected.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{ \"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {} }}",
                escape_json(name),
                snap.count,
                snap.sum,
                snap.max,
                snap.p50,
                snap.p90,
                snap.p99,
            ));
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push('}');
        out.push('\n');
        out
    }

    /// Renders the global registry in the Prometheus text format.
    pub fn global_prometheus_text() -> String {
        prometheus_text(crate::registry::global())
    }

    /// Renders the global registry as a JSON snapshot.
    pub fn global_json_snapshot() -> String {
        json_snapshot(crate::registry::global())
    }
}

#[cfg(feature = "telemetry")]
pub use enabled_impl::*;

#[cfg(not(feature = "telemetry"))]
mod disabled_impl {
    /// Empty but well-formed exposition without the `telemetry` feature.
    pub fn global_prometheus_text() -> String {
        String::new()
    }

    /// Empty but well-formed snapshot without the `telemetry` feature.
    pub fn global_json_snapshot() -> String {
        "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n".to_string()
    }
}

#[cfg(not(feature = "telemetry"))]
pub use disabled_impl::*;

/// Checks a Prometheus text exposition against the line grammar: every
/// line is either a `# HELP name text` / `# TYPE name counter|gauge|histogram`
/// comment or a `name[{labels}] value` sample with a valid metric name and
/// an integer or float value. Returns the first offending line.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (no, line) in text.lines().enumerate() {
        let err = |why: &str| Err(format!("line {}: {}: {:?}", no + 1, why, line));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match kind {
                "HELP" if valid_name(name) => continue,
                "TYPE" if valid_name(name) => match parts.next() {
                    Some("counter") | Some("gauge") | Some("histogram") | Some("summary")
                    | Some("untyped") => continue,
                    _ => return err("bad TYPE"),
                },
                _ => return err("bad comment"),
            }
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return err("no value"),
        };
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return err("bad value");
        }
        let name = match series.split_once('{') {
            None => series,
            Some((name, labels)) => {
                let labels = match labels.strip_suffix('}') {
                    Some(l) => l,
                    None => return err("unclosed label braces"),
                };
                // label grammar: key="escaped", comma-separated.
                let mut rest = labels;
                while !rest.is_empty() {
                    let (key, after) = match rest.split_once("=\"") {
                        Some(pair) => pair,
                        None => return err("bad label pair"),
                    };
                    if !valid_name(key) {
                        return err("bad label key");
                    }
                    // Find the closing unescaped quote.
                    let mut end = None;
                    let bytes = after.as_bytes();
                    let mut i = 0;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                end = Some(i);
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    let end = match end {
                        Some(e) => e,
                        None => return err("unterminated label value"),
                    };
                    rest = &after[end + 1..];
                    rest = rest.strip_prefix(',').unwrap_or(rest);
                }
                name
            }
        };
        if !valid_name(name) {
            return err("bad metric name");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_well_formed_lines() {
        let text = "# HELP pqfs_q_total queries\n# TYPE pqfs_q_total counter\n\
                    pqfs_q_total 3\npqfs_q{site=\"a.b\"} 1\n\
                    pqfs_lat_bucket{le=\"+Inf\"} 9\npqfs_lat_sum 12.5\n";
        assert_eq!(validate_prometheus(text), Ok(()));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("no_value_here\n").is_err());
        assert!(validate_prometheus("bad name 1\n").is_err());
        assert!(validate_prometheus("m{unclosed=\"x} 1\n").is_err());
        assert!(validate_prometheus("m 1x\n").is_err());
        assert!(validate_prometheus("# TYPE m weird\n").is_err());
    }

    #[cfg(feature = "telemetry")]
    mod telemetry {
        use super::super::*;
        use crate::registry::Registry;

        fn sample_registry() -> Registry {
            let reg = Registry::new();
            reg.counter("pqfs_a_total", "count of a").add(3);
            reg.counter_labeled("pqfs_b_total", "count of b", "kind", "x")
                .add(1);
            reg.counter_labeled("pqfs_b_total", "count of b", "kind", "y")
                .add(2);
            reg.gauge("pqfs_depth", "depth gauge").set(7);
            let h = reg.histogram("pqfs_lat_ns", "latency");
            h.observe_ns(3);
            h.observe_ns(1000);
            reg
        }

        #[test]
        fn prometheus_output_is_stable_and_valid() {
            let text = prometheus_text(&sample_registry());
            assert_eq!(validate_prometheus(&text), Ok(()));
            // Deterministic shape (golden): headers once per metric, labeled
            // series sorted by label value, histogram cumulative buckets.
            assert!(text.starts_with(
                "# HELP pqfs_a_total count of a\n# TYPE pqfs_a_total counter\npqfs_a_total 3\n\
                 # HELP pqfs_b_total count of b\n# TYPE pqfs_b_total counter\n\
                 pqfs_b_total{kind=\"x\"} 1\npqfs_b_total{kind=\"y\"} 2\n"
            ));
            assert!(text.contains("# TYPE pqfs_lat_ns histogram\n"));
            assert!(text.contains("pqfs_lat_ns_bucket{le=\"4\"} 1\n"));
            assert!(text.contains("pqfs_lat_ns_bucket{le=\"1024\"} 2\n"));
            assert!(text.contains("pqfs_lat_ns_bucket{le=\"+Inf\"} 2\n"));
            assert!(text.contains("pqfs_lat_ns_sum 1003\n"));
            assert!(text.ends_with("pqfs_lat_ns_count 2\n"));
        }

        #[test]
        fn json_snapshot_is_stable_and_parseable() {
            let json = json_snapshot(&sample_registry());
            let v = crate::jsonv::parse(&json).expect("snapshot must be valid JSON");
            let counters = v.get("counters").expect("counters object");
            assert_eq!(
                counters.get("pqfs_a_total").and_then(|n| n.as_u64()),
                Some(3)
            );
            assert_eq!(
                counters
                    .get("pqfs_b_total{kind=\"y\"}")
                    .and_then(|n| n.as_u64()),
                Some(2)
            );
            assert_eq!(
                v.get("gauges")
                    .and_then(|g| g.get("pqfs_depth"))
                    .and_then(|n| n.as_u64()),
                Some(7)
            );
            let hist = v
                .get("histograms")
                .and_then(|h| h.get("pqfs_lat_ns"))
                .expect("histogram entry");
            assert_eq!(hist.get("count").and_then(|n| n.as_u64()), Some(2));
            assert_eq!(hist.get("sum_ns").and_then(|n| n.as_u64()), Some(1003));
            assert_eq!(hist.get("max_ns").and_then(|n| n.as_u64()), Some(1000));
        }

        #[test]
        fn empty_registry_renders_empty_but_valid_output() {
            let reg = Registry::new();
            assert_eq!(prometheus_text(&reg), "");
            let json = json_snapshot(&reg);
            let v = crate::jsonv::parse(&json).expect("valid JSON");
            assert!(v.get("counters").is_some());
            assert!(v.get("histograms").is_some());
        }
    }
}

//! Memory layouts for stored PQ codes.
//!
//! * [`RowMajorCodes`] — the paper's Figure 1: vector after vector, each a
//!   run of `m` component bytes. The layout the naive and libpq scans use.
//! * [`TransposedCodes`] — the paper's Figure 5 transposition: codes are
//!   stored in blocks of 8 vectors, holding the first components of the 8
//!   vectors contiguously, then their second components, etc. This lets one
//!   64-bit load fetch `a[j] … h[j]` (reducing `mem1` accesses from 8 to 1)
//!   and is the layout the SIMD gather implementation needs.
//!
//! The Fast-Scan-specific grouped/nibble-packed layout builds on these and
//! lives in `pqfs-scan::fastscan::layout`, next to its scan kernel.

/// Codes stored row-major (Figure 1): vector `i` occupies bytes
/// `[i*m, (i+1)*m)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMajorCodes {
    codes: Vec<u8>,
    m: usize,
}

impl RowMajorCodes {
    /// Wraps a flat code buffer.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `codes.len()` is not a multiple of `m`.
    pub fn new(codes: Vec<u8>, m: usize) -> Self {
        assert!(m > 0, "m must be positive");
        assert_eq!(codes.len() % m, 0, "codes length must be a multiple of m");
        RowMajorCodes { codes, m }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.codes.len() / self.m
    }

    /// True when no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Components per code (`m`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The code of vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn code(&self, i: usize) -> &[u8] {
        &self.codes[i * self.m..(i + 1) * self.m]
    }

    /// Iterator over all codes in storage order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.codes.chunks_exact(self.m)
    }

    /// The raw flat buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.codes
    }

    /// Bytes of memory used by the code storage.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len()
    }
}

/// Number of vectors per transposed block (one 64-bit word per component).
pub const TRANSPOSED_BLOCK: usize = 8;

/// Codes stored transposed in blocks of [`TRANSPOSED_BLOCK`] vectors
/// (Figure 5): within block `b`, the `j`-th component of its 8 vectors is
/// one contiguous 8-byte word.
///
/// The final block is zero-padded; [`len`](Self::len) reports the true
/// vector count so scans can ignore padding lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransposedCodes {
    /// `num_blocks × m × 8` bytes: block-major, then component-major.
    data: Vec<u8>,
    m: usize,
    n: usize,
}

impl TransposedCodes {
    /// Transposes a row-major code set.
    pub fn from_row_major(codes: &RowMajorCodes) -> Self {
        let m = codes.m();
        let n = codes.len();
        let num_blocks = n.div_ceil(TRANSPOSED_BLOCK);
        let mut data = vec![0u8; num_blocks * m * TRANSPOSED_BLOCK];
        for i in 0..n {
            let block = i / TRANSPOSED_BLOCK;
            let lane = i % TRANSPOSED_BLOCK;
            let code = codes.code(i);
            for j in 0..m {
                data[(block * m + j) * TRANSPOSED_BLOCK + lane] = code[j];
            }
        }
        TransposedCodes { data, m, n }
    }

    /// Number of stored vectors (excluding padding).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Components per code (`m`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of 8-vector blocks (including a possibly padded tail block).
    pub fn num_blocks(&self) -> usize {
        if self.m == 0 {
            0
        } else {
            self.data.len() / (self.m * TRANSPOSED_BLOCK)
        }
    }

    /// The 8 `j`-th components of block `b` — the word one `mem1` load
    /// fetches in the gather implementation.
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_blocks()` or `j >= m`.
    #[inline]
    pub fn component_word(&self, b: usize, j: usize) -> &[u8] {
        let start = (b * self.m + j) * TRANSPOSED_BLOCK;
        &self.data[start..start + TRANSPOSED_BLOCK]
    }

    /// Reconstructs the code of vector `i` (test/debug path).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn code(&self, i: usize) -> Vec<u8> {
        assert!(i < self.n);
        let block = i / TRANSPOSED_BLOCK;
        let lane = i % TRANSPOSED_BLOCK;
        (0..self.m)
            .map(|j| self.component_word(block, j)[lane])
            .collect()
    }

    /// Bytes of memory used (padding included).
    pub fn memory_bytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_codes(n: usize, m: usize) -> RowMajorCodes {
        let codes: Vec<u8> = (0..n * m).map(|i| (i * 7 % 256) as u8).collect();
        RowMajorCodes::new(codes, m)
    }

    #[test]
    fn row_major_accessors() {
        let codes = sample_codes(5, 8);
        assert_eq!(codes.len(), 5);
        assert_eq!(codes.m(), 8);
        assert_eq!(codes.code(0).len(), 8);
        assert_eq!(codes.iter().count(), 5);
        assert_eq!(codes.memory_bytes(), 40);
        assert!(!codes.is_empty());
    }

    #[test]
    fn transpose_roundtrips_every_code() {
        for n in [0usize, 1, 7, 8, 9, 16, 23] {
            let row = sample_codes(n, 8);
            let t = TransposedCodes::from_row_major(&row);
            assert_eq!(t.len(), n, "n={n}");
            for i in 0..n {
                assert_eq!(t.code(i).as_slice(), row.code(i), "n={n}, i={i}");
            }
        }
    }

    #[test]
    fn component_word_is_contiguous_per_component() {
        let row = sample_codes(8, 4);
        let t = TransposedCodes::from_row_major(&row);
        // Word (0, j) must equal the j-th component of vectors 0..8.
        for j in 0..4 {
            let expect: Vec<u8> = (0..8).map(|i| row.code(i)[j]).collect();
            assert_eq!(t.component_word(0, j), expect.as_slice());
        }
    }

    #[test]
    fn tail_block_is_padded_with_zeros() {
        let row = sample_codes(9, 2);
        let t = TransposedCodes::from_row_major(&row);
        assert_eq!(t.num_blocks(), 2);
        let word = t.component_word(1, 0);
        // Lane 1..8 of the tail block are padding.
        assert!(word[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn memory_overhead_is_only_padding() {
        let row = sample_codes(16, 8);
        let t = TransposedCodes::from_row_major(&row);
        assert_eq!(t.memory_bytes(), row.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "multiple of m")]
    fn row_major_rejects_ragged_buffer() {
        RowMajorCodes::new(vec![1, 2, 3], 2);
    }
}

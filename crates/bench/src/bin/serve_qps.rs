//! Loopback serving throughput: how much QPS does request batching buy?
//!
//! Starts an in-process `pqfs_server` on an ephemeral loopback port, then
//! drives the same query stream through it at client batch sizes 1, 8 and
//! 32. Larger frames amortize both the wire round-trip and the server-side
//! coalescing into one parallel search wave, so QPS must rise with batch
//! size; the binary exits 1 if the largest batch does not beat batch=1.
//!
//! Environment: `PQFS_N` base vectors (default 20 000), `PQFS_QUERIES`
//! per measurement point (default 512), `PQFS_CONNECTIONS` concurrent
//! client connections (default 2).
//!
//! Output: one JSON line per batch size plus a summary line with the
//! batch=max over batch=1 speedup.

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, synthetic_index};
use pqfs_metrics::Summary;
use pqfs_server::proto::{QueryParams, Response};
use pqfs_server::server::{Server, ServerConfig};
use pqfs_server::Client;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 3] = [1, 8, 32];

fn main() {
    let n = env_usize("PQFS_N", 20_000);
    let queries_per_point = env_usize("PQFS_QUERIES", 512);
    let connections = env_usize("PQFS_CONNECTIONS", 2).max(1);
    header(
        "serve_qps",
        "serving layer (not in paper)",
        &format!("n={n} queries={queries_per_point} connections={connections}"),
    );

    let (index, queries) = synthetic_index(n, 8, queries_per_point, 42);
    let dim = index.dim();
    let handle = Server::start(
        Arc::new(index),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.local_addr().to_string();

    let mut qps_by_batch = Vec::new();
    for batch in BATCH_SIZES {
        let (qps, p50_ms, seconds) =
            run_point(&addr, &queries, dim, queries_per_point, batch, connections);
        qps_by_batch.push(qps);
        println!(
            "{{\"batch\": {batch}, \"connections\": {connections}, \
             \"queries\": {queries_per_point}, \"seconds\": {seconds:.3}, \
             \"qps\": {qps:.1}, \"p50_ms\": {p50_ms:.3}}}"
        );
    }
    handle.shutdown_and_join();

    let speedup = qps_by_batch[BATCH_SIZES.len() - 1] / qps_by_batch[0].max(f64::MIN_POSITIVE);
    println!(
        "{{\"speedup_batch{}_vs_1\": {speedup:.2}}}",
        BATCH_SIZES[BATCH_SIZES.len() - 1]
    );
    if speedup <= 1.0 {
        eprintln!("error: batching did not improve QPS (speedup {speedup:.2}x)");
        std::process::exit(1);
    }
}

/// Sends `total` queries at one batch size and returns (qps, p50 ms, s).
fn run_point(
    addr: &str,
    queries: &[f32],
    dim: usize,
    total: usize,
    batch: usize,
    connections: usize,
) -> (f64, f64, f64) {
    let per_conn = total.div_ceil(connections);
    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.to_string();
            let lo = (c * per_conn).min(total);
            let hi = ((c + 1) * per_conn).min(total);
            let slice = queries[lo * dim..hi * dim].to_vec();
            std::thread::spawn(move || run_worker(&addr, &slice, dim, batch))
        })
        .collect();
    let mut latencies_ms = Vec::new();
    let mut answered = 0usize;
    for w in workers {
        let (count, lat) = w.join().expect("worker");
        answered += count;
        latencies_ms.extend(lat);
    }
    let seconds = started.elapsed().as_secs_f64();
    assert_eq!(answered, total, "every query answered");
    let p50 = Summary::from_values(&latencies_ms).percentile(50.0);
    (total as f64 / seconds.max(1e-9), p50, seconds)
}

/// One connection's share of the stream; returns (queries answered,
/// per-frame latencies in ms).
fn run_worker(addr: &str, queries: &[f32], dim: usize, batch: usize) -> (usize, Vec<f64>) {
    let count = queries.len() / dim;
    if count == 0 {
        return (0, Vec::new());
    }
    let params = QueryParams {
        topk: 10,
        nprobe: 1,
        keep: 0.05,
        deadline_us: 0,
        backend: String::new(),
    };
    let mut client =
        Client::connect_with(addr, Some(Duration::from_secs(30))).expect("client connect");
    let mut answered = 0usize;
    let mut latencies_ms = Vec::new();
    let mut sent = 0usize;
    while sent < count {
        let take = batch.min(count - sent);
        let slice = &queries[sent * dim..(sent + take) * dim];
        let t0 = Instant::now();
        let response = if take == 1 {
            client.query(slice, params.clone())
        } else {
            client.batch(slice, dim as u32, params.clone())
        }
        .expect("roundtrip");
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        match response {
            Response::Query(a) => {
                assert!(!a.neighbors.is_empty(), "non-empty answer");
                answered += 1;
            }
            Response::Batch(answers) => {
                assert_eq!(answers.len(), take, "one answer per query");
                answered += answers.len();
            }
            other => panic!("unexpected response {other:?}"),
        }
        sent += take;
    }
    (answered, latencies_ms)
}

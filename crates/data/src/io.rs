//! Readers and writers for the TEXMEX vector file formats.
//!
//! ANN_SIFT1B (the paper's dataset, <http://corpus-texmex.irisa.fr/>) ships
//! as `.bvecs` (byte vectors), `.fvecs` (float vectors) and `.ivecs`
//! (integer vectors, used for ground truth). Every vector is stored as a
//! little-endian `i32` dimensionality followed by the components. These
//! routines let the harness load the real corpus when it is available; the
//! synthetic generator ([`crate::synthetic`]) covers the offline case.

use pqfs_fault::{FaultRead, FaultWrite};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from vector-file IO.
///
/// Marked `#[non_exhaustive]`: future format checks may add variants
/// without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structurally invalid file (bad dimension marker, truncated record,
    /// inconsistent dimensionality, or a record larger than the file
    /// holding it).
    Format(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// A set of vectors read from disk: row-major data plus dimensionality.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorFile<T> {
    /// Row-major `n × dim` components.
    pub data: Vec<T>,
    /// Dimensionality shared by all records.
    pub dim: usize,
}

impl<T> VectorFile<T> {
    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when the file held no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

fn read_records<T, F>(
    path: &Path,
    elem_size: usize,
    mut decode: F,
) -> Result<VectorFile<T>, DataError>
where
    F: FnMut(&[u8]) -> T,
{
    let file = File::open(path)?;
    // Every record's payload must fit in the bytes the file actually has;
    // checking against this running remainder rejects a corrupt dimension
    // marker (e.g. 2^30) before allocating a buffer for it.
    let mut remaining = file.metadata()?.len();
    let mut reader = BufReader::new(FaultRead::new(file, "data.io.read"));
    let mut data = Vec::new();
    let mut dim: Option<usize> = None;
    let mut header = [0u8; 4];
    loop {
        match reader.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        remaining = remaining.saturating_sub(4);
        let d = i32::from_le_bytes(header);
        if d <= 0 {
            return Err(DataError::Format(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(prev) if prev != d => {
                return Err(DataError::Format(format!(
                    "inconsistent dimensions: {prev} then {d}"
                )))
            }
            _ => {}
        }
        let record = (d as u64) * (elem_size as u64);
        if record > remaining {
            return Err(DataError::Format(format!(
                "record claims {record} bytes but only {remaining} remain in the file"
            )));
        }
        let mut buf = vec![0u8; d * elem_size];
        reader
            .read_exact(&mut buf)
            .map_err(|_| DataError::Format("truncated record".into()))?;
        remaining -= record;
        data.extend(buf.chunks_exact(elem_size).map(&mut decode));
    }
    Ok(VectorFile {
        data,
        dim: dim.unwrap_or(0),
    })
}

fn write_records<T, F>(path: &Path, data: &[T], dim: usize, mut encode: F) -> Result<(), DataError>
where
    F: FnMut(&T, &mut Vec<u8>),
{
    if dim == 0 || data.len() % dim != 0 {
        return Err(DataError::Format(format!(
            "data length {} is not a positive multiple of dim {dim}",
            data.len()
        )));
    }
    let mut writer = BufWriter::new(FaultWrite::new(File::create(path)?, "data.io.write"));
    let header = (dim as i32).to_le_bytes();
    let mut buf = Vec::new();
    for row in data.chunks_exact(dim) {
        writer.write_all(&header)?;
        buf.clear();
        for v in row {
            encode(v, &mut buf);
        }
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a `.fvecs` file (32-bit little-endian floats).
pub fn read_fvecs(path: impl AsRef<Path>) -> Result<VectorFile<f32>, DataError> {
    read_records(path.as_ref(), 4, |b| {
        f32::from_le_bytes([b[0], b[1], b[2], b[3]])
    })
}

/// Writes a `.fvecs` file.
pub fn write_fvecs(path: impl AsRef<Path>, data: &[f32], dim: usize) -> Result<(), DataError> {
    write_records(path.as_ref(), data, dim, |v, buf| {
        buf.extend_from_slice(&v.to_le_bytes())
    })
}

/// Reads a `.bvecs` file (unsigned bytes, SIFT1B's base format).
pub fn read_bvecs(path: impl AsRef<Path>) -> Result<VectorFile<u8>, DataError> {
    read_records(path.as_ref(), 1, |b| b[0])
}

/// Writes a `.bvecs` file.
pub fn write_bvecs(path: impl AsRef<Path>, data: &[u8], dim: usize) -> Result<(), DataError> {
    write_records(path.as_ref(), data, dim, |v, buf| buf.push(*v))
}

/// Reads an `.ivecs` file (32-bit little-endian integers; ground truth ids).
pub fn read_ivecs(path: impl AsRef<Path>) -> Result<VectorFile<i32>, DataError> {
    read_records(path.as_ref(), 4, |b| {
        i32::from_le_bytes([b[0], b[1], b[2], b[3]])
    })
}

/// Writes an `.ivecs` file.
pub fn write_ivecs(path: impl AsRef<Path>, data: &[i32], dim: usize) -> Result<(), DataError> {
    write_records(path.as_ref(), data, dim, |v, buf| {
        buf.extend_from_slice(&v.to_le_bytes())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pqfs-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn fvecs_roundtrip() {
        let path = tmp("f.fvecs");
        let data: Vec<f32> = (0..12).map(|i| i as f32 * 0.5).collect();
        write_fvecs(&path, &data, 4).unwrap();
        let file = read_fvecs(&path).unwrap();
        assert_eq!(file.dim, 4);
        assert_eq!(file.len(), 3);
        assert_eq!(file.data, data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bvecs_roundtrip() {
        let path = tmp("b.bvecs");
        let data: Vec<u8> = (0..=255).collect();
        write_bvecs(&path, &data, 128).unwrap();
        let file = read_bvecs(&path).unwrap();
        assert_eq!(file.dim, 128);
        assert_eq!(file.len(), 2);
        assert_eq!(file.data, data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ivecs_roundtrip() {
        let path = tmp("i.ivecs");
        let data: Vec<i32> = vec![5, -3, 1000000, 0, 7, 42];
        write_ivecs(&path, &data, 3).unwrap();
        let file = read_ivecs(&path).unwrap();
        assert_eq!(file.data, data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_reads_as_empty() {
        let path = tmp("empty.fvecs");
        std::fs::write(&path, b"").unwrap();
        let file = read_fvecs(&path).unwrap();
        assert!(file.is_empty());
        assert_eq!(file.dim, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_record_is_a_format_error() {
        let path = tmp("trunc.fvecs");
        let mut bytes = (4i32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 of 4 floats
        std::fs::write(&path, &bytes).unwrap();
        let err = read_fvecs(&path).unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "got {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn inconsistent_dims_are_rejected() {
        let path = tmp("mixed.fvecs");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(1i32).to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&(2i32).to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_fvecs(&path).unwrap_err(),
            DataError::Format(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn absurd_dimension_marker_is_rejected_before_allocating() {
        // A 2^30 dimension marker on an 8-byte file must fail the
        // remaining-bytes check, not attempt a 4 GiB allocation.
        let path = tmp("absurd.fvecs");
        let mut bytes = (1i32 << 30).to_le_bytes().to_vec();
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_fvecs(&path).unwrap_err();
        assert!(matches!(err, DataError::Format(_)), "got {err}");
        assert!(err.to_string().contains("remain"), "got {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_io_faults_surface_as_errors() {
        let _lock = pqfs_fault::exclusive();
        let path = tmp("faulty.fvecs");
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        {
            let _g = pqfs_fault::scoped("data.io.write", pqfs_fault::FaultAction::Error);
            assert!(matches!(
                write_fvecs(&path, &data, 4).unwrap_err(),
                DataError::Io(_)
            ));
        }
        write_fvecs(&path, &data, 4).unwrap();
        {
            let _g = pqfs_fault::scoped("data.io.read", pqfs_fault::FaultAction::Error);
            assert!(matches!(read_fvecs(&path).unwrap_err(), DataError::Io(_)));
        }
        {
            // A short read mid-record is a truncation, not a crash.
            let _g = pqfs_fault::scoped("data.io.read", pqfs_fault::FaultAction::ShortRead(10));
            assert!(read_fvecs(&path).is_err());
        }
        assert_eq!(read_fvecs(&path).unwrap().data, data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_rejects_ragged_data() {
        let path = tmp("ragged.fvecs");
        assert!(matches!(
            write_fvecs(&path, &[1.0, 2.0, 3.0], 2).unwrap_err(),
            DataError::Format(_)
        ));
    }
}

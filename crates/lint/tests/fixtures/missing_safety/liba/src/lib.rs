//! Fixture: unsafe code without safety contracts.
#![deny(unsafe_op_in_unsafe_fn)]

pub unsafe fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn caller() -> u8 {
    let x = 0u8;
    unsafe { undocumented(&x) }
}

//! `pqfs_lint` — in-repo static analysis for the PQ Fast Scan workspace.
//!
//! A lightweight, dependency-free lint pass that enforces project
//! invariants conventional tooling cannot see:
//!
//! - **missing-safety** — every `unsafe` block/fn/impl carries a safety
//!   contract (`// SAFETY:` comment or `# Safety` doc section).
//! - **forbidden-panic** — no `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!` in library crates outside test code.
//! - **unforwarded-feature** — the tracked cargo features (`avx2`,
//!   `telemetry`, `failpoints`) flow consistently through every manifest
//!   that depends on a crate defining them.
//! - **unregistered-failpoint** — every failpoint site name armed in code
//!   appears in the checked-in registry `crates/fault/failpoints.sites`.
//! - **undocumented-metric** — every metric name matches the Prometheus
//!   grammar and is documented in `docs/OBSERVABILITY.md`.
//! - **policy-mismatch** — crate roots carry the unsafe-policy header the
//!   allowlist in `pqfs_lint.toml` prescribes (`#![forbid(unsafe_code)]`
//!   or `#![deny(unsafe_op_in_unsafe_fn)]`).
//!
//! Run with `cargo run -p pqfs_lint` from anywhere in the workspace; the
//! binary exits nonzero if any diagnostic fires. See
//! `docs/STATIC_ANALYSIS.md` for the full rules and waiver syntax.

#![forbid(unsafe_code)]

pub mod checks;
pub mod lexer;
pub mod toml_lite;
pub mod workspace;

use checks::FileCtx;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding. Rendered as `file:line: error[check]: msg`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Check name (stable identifier, also the waiver key).
    pub check: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.check, self.msg
        )
    }
}

/// Lint configuration, loaded from `pqfs_lint.toml` at the workspace root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory prefixes (relative to the root) whose manifests and
    /// sources are not linted.
    pub exclude: Vec<String>,
    /// Cargo features whose forwarding is enforced.
    pub tracked_features: Vec<String>,
    /// Crates allowed to contain `unsafe` (must deny
    /// `unsafe_op_in_unsafe_fn`; all others must forbid unsafe code).
    pub unsafe_crates: Vec<String>,
    /// Crates exempt from the panic ban (binaries, test harnesses).
    pub panic_crates: Vec<String>,
    /// Failpoint site registry path, relative to the root.
    pub failpoint_registry: String,
    /// Metrics documentation path, relative to the root.
    pub metrics_doc: String,
}

impl Config {
    /// Loads `pqfs_lint.toml` from `root`.
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("pqfs_lint.toml");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = toml_lite::parse(&src);
        let list = |key: &str| -> Vec<String> {
            doc.get("lint", key)
                .and_then(toml_lite::Value::as_array)
                .map(<[String]>::to_vec)
                .unwrap_or_default()
        };
        let string = |key: &str, default: &str| -> String {
            doc.get("lint", key)
                .and_then(toml_lite::Value::as_str)
                .unwrap_or(default)
                .to_string()
        };
        Ok(Config {
            exclude: list("exclude"),
            tracked_features: list("tracked_features"),
            unsafe_crates: list("unsafe_crates"),
            panic_crates: list("panic_crates"),
            failpoint_registry: string("failpoint_registry", "crates/fault/failpoints.sites"),
            metrics_doc: string("metrics_doc", "docs/OBSERVABILITY.md"),
        })
    }
}

/// Runs every check over the workspace rooted at `root`. Returns the
/// sorted diagnostic list (empty = clean) or a hard error (I/O, missing
/// config) that prevented linting.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg = Config::load(root)?;
    run_with(root, &cfg)
}

/// [`run`] with an explicit configuration (used by the fixture tests).
pub fn run_with(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    let ws = workspace::discover(root, &cfg.exclude)?;
    let registry = checks::load_registry(&root.join(&cfg.failpoint_registry))?;
    let metrics_doc = std::fs::read_to_string(root.join(&cfg.metrics_doc)).unwrap_or_default();

    let mut out = Vec::new();
    checks::check_features(&ws, cfg, &mut out);

    for member in ws.members.values() {
        let unsafe_allowed = cfg.unsafe_crates.contains(&member.name);
        let panics_allowed = cfg.panic_crates.contains(&member.name);
        let crate_dir = root.join(&member.dir);

        for (file, is_root, test_file) in source_files(&crate_dir)? {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.exclude.iter().any(|p| rel.starts_with(p.as_str())) {
                continue;
            }
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let toks = lexer::lex(&src);
            let ctx = FileCtx::new(rel.clone(), &toks, test_file, panics_allowed);
            checks::check_safety(&ctx, &mut out);
            checks::check_panics(&ctx, &mut out);
            checks::check_failpoints(&ctx, &registry, &mut out);
            checks::check_metrics(&ctx, &metrics_doc, &mut out);
            if is_root {
                checks::check_policy(&rel, &toks, unsafe_allowed, &mut out);
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Every `.rs` file of a crate: `(path, is_crate_root, is_test_file)`.
/// Crate roots are `src/lib.rs`, `src/main.rs` and `src/bin/*.rs`;
/// test files live under `tests/`, `benches/` or `examples/`.
fn source_files(crate_dir: &Path) -> Result<Vec<(PathBuf, bool, bool)>, String> {
    let mut out = Vec::new();
    let src = crate_dir.join("src");
    if src.is_dir() {
        for file in rs_files(&src)? {
            let is_root = file == src.join("lib.rs")
                || file == src.join("main.rs")
                || file.parent() == Some(src.join("bin").as_path());
            out.push((file, is_root, false));
        }
    }
    for sub in ["tests", "examples"] {
        let dir = crate_dir.join(sub);
        if dir.is_dir() {
            for file in rs_files(&dir)? {
                out.push((file, false, true));
            }
        }
    }
    // Benches: test-leniency for panics, but bench binaries are roots for
    // the policy check (they are compilation roots with inner attributes).
    let benches = crate_dir.join("benches");
    if benches.is_dir() {
        for file in rs_files(&benches)? {
            let is_root = file.parent() == Some(benches.as_path());
            out.push((file, is_root, true));
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn rs_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).map_err(|e| format!("cannot list {}: {e}", d.display()))?;
        for entry in entries {
            let path = entry
                .map_err(|e| format!("cannot list {}: {e}", d.display()))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing `pqfs_lint.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("pqfs_lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Groups diagnostics per check for the summary line.
pub fn summarize(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for d in diags {
        *counts.entry(d.check).or_insert(0) += 1;
    }
    counts
}

//! Figure 3 — scan times and per-vector operation counts for the four PQ
//! Scan implementations (naive, libpq, avx, gather).
//!
//! Wall-clock times are measured; the L1-load / instruction / µop columns
//! come from the exact operation-count model (`pqfs-metrics::counters`,
//! the hardware-counter substitute documented in DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig3
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scale, Fixture, DIM};
use pqfs_metrics::{fmt_f, measure_ms, mvecs_per_sec, pqscan_ops, PqScanImpl, Summary, TextTable};
use pqfs_scan::{Backend, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let n = (1_000_000.0 * scale()) as usize;
    let n_queries = env_usize("PQFS_QUERIES", 8);
    let topk = 100;
    header(
        "fig3",
        "Figure 3, §3",
        &format!("partition {n}, topk {topk}, {n_queries} queries"),
    );

    let mut fx = Fixture::train(3);
    let codes = Arc::new(fx.partition(n));
    let queries = fx.queries(n_queries);
    let opts = ScanOpts::default();
    let params = ScanParams::new(topk);

    // The four PQ Scan baselines, resolved through the backend registry
    // (each prepares its native layout once), paired with the
    // operation-count model's view of the same implementation.
    let impls: [(Backend, PqScanImpl); 4] = [
        (Backend::Naive, PqScanImpl::Naive),
        (Backend::Libpq, PqScanImpl::Libpq),
        (Backend::Avx, PqScanImpl::Avx),
        (Backend::Gather, PqScanImpl::Gather),
    ];

    let mut t = TextTable::new(vec![
        "impl",
        "scan time [ms]",
        "M vecs/s",
        "L1 loads/vec",
        "instr/vec",
        "uops/vec",
    ]);

    for (backend, imp) in impls {
        let scanner = backend
            .scanner(&opts)
            .prepare(Arc::clone(&codes))
            .expect("prepare");
        let mut times = Vec::new();
        for q in queries.chunks_exact(DIM) {
            let tables = fx.tables(q);
            let reps = measure_ms(3, || scanner.scan(&tables, &params).expect("scan"));
            times.push(Summary::from_values(&reps).median());
        }
        let median = Summary::from_values(&times).median();
        let ops = pqscan_ops(imp, 8);
        t.row(vec![
            backend.to_string(),
            fmt_f(median, 2),
            fmt_f(mvecs_per_sec(n, median), 0),
            fmt_f(ops.l1_loads, 1),
            fmt_f(ops.instructions, 1),
            fmt_f(ops.uops, 1),
        ]);
    }
    println!("{t}");
    println!(
        "paper shape (25 M vectors, Haswell laptop): all four implementations \
         are within ~2x of each other; libpq is not faster than naive despite \
         fewer loads; gather is the slowest despite the fewest instructions \
         (34 uops per gather). Expected ordering here: gather slowest, \
         naive/libpq/avx close together."
    );
}

//! Property-based tests of the product-quantization core invariants.

use pqfs_core::{
    Codebook, DistanceTables, PqConfig, ProductQuantizer, RowMajorCodes, TopK, TransposedCodes,
};
use proptest::prelude::*;

/// A small trainable configuration plus matching training data.
fn pq_fixture(seed: u64, n: usize) -> (ProductQuantizer, Vec<f32>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let config = PqConfig::new(16, 4, 4).unwrap();
    let data: Vec<f32> = (0..n * 16).map(|_| rng.gen_range(0.0f32..255.0)).collect();
    let pq = ProductQuantizer::train(&data, &config, seed).unwrap();
    (pq, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ADC distance via tables equals the distance to the decoded
    /// reconstruction (paper Eq. 1 == Eq. 3), up to float reassociation.
    #[test]
    fn adc_equals_reconstruction_distance(
        seed in 0u64..1000,
        query in prop::collection::vec(0.0f32..255.0, 16),
    ) {
        let (pq, data) = pq_fixture(seed, 64);
        let tables = DistanceTables::compute(&pq, &query).unwrap();
        for v in data.chunks_exact(16).take(8) {
            let code = pq.encode(v);
            let rec = pq.decode(&code).unwrap();
            let direct: f32 = query
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let adc = tables.distance(&code);
            prop_assert!((adc - direct).abs() <= 1e-2 * direct.max(1.0));
        }
    }

    /// Encoding always produces in-range indexes, and decode(encode(x)) is
    /// the nearest-centroid reconstruction per subspace.
    #[test]
    fn encode_produces_per_subspace_optima(
        seed in 0u64..1000,
        v in prop::collection::vec(0.0f32..255.0, 16),
    ) {
        let (pq, _) = pq_fixture(seed, 64);
        let code = pq.encode(&v);
        prop_assert!(code.iter().all(|&i| (i as usize) < 16));
        // No other centroid index can beat the chosen one in its subspace.
        for j in 0..4 {
            let sub = &v[j * 4..(j + 1) * 4];
            let chosen = pq.codebook(j).centroid(code[j] as usize);
            let chosen_d: f32 =
                sub.iter().zip(chosen).map(|(a, b)| (a - b) * (a - b)).sum();
            for i in 0..16 {
                let other = pq.codebook(j).centroid(i);
                let other_d: f32 =
                    sub.iter().zip(other).map(|(a, b)| (a - b) * (a - b)).sum();
                prop_assert!(chosen_d <= other_d + 1e-4);
            }
        }
    }

    /// Codebook permutation is semantically invisible: quantization error
    /// and reconstructions are unchanged by optimize_assignment.
    #[test]
    fn optimized_assignment_is_a_pure_relabeling(
        seed in 0u64..1000,
        v in prop::collection::vec(0.0f32..255.0, 16),
    ) {
        let (mut pq, _) = pq_fixture(seed, 64);
        let before = pq.quantization_error(&v).unwrap();
        let rec_before = pq.decode(&pq.encode(&v)).unwrap();
        pq.optimize_assignment(4, seed ^ 1).unwrap();
        let after = pq.quantization_error(&v).unwrap();
        let rec_after = pq.decode(&pq.encode(&v)).unwrap();
        prop_assert_eq!(before, after);
        prop_assert_eq!(rec_before, rec_after);
    }

    /// TopK returns exactly the k lexicographically-smallest (dist, id)
    /// pairs, matching a sort-based oracle.
    #[test]
    fn topk_matches_sort_oracle(
        dists in prop::collection::vec(0.0f32..100.0, 1..200),
        k in 1usize..50,
    ) {
        let mut topk = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            topk.push(d, i as u64);
        }
        let got: Vec<(f32, u64)> =
            topk.into_sorted().iter().map(|n| (n.dist, n.id)).collect();
        let mut oracle: Vec<(f32, u64)> =
            dists.iter().enumerate().map(|(i, &d)| (d, i as u64)).collect();
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        oracle.truncate(k);
        prop_assert_eq!(got, oracle);
    }

    /// Transposed layout is a faithful permutation of the row-major layout.
    #[test]
    fn transposed_layout_roundtrips(
        bytes in prop::collection::vec(any::<u8>(), 0..64 * 8),
    ) {
        let bytes = {
            let mut b = bytes;
            b.truncate(b.len() / 8 * 8);
            b
        };
        let row = RowMajorCodes::new(bytes, 8);
        let t = TransposedCodes::from_row_major(&row);
        prop_assert_eq!(t.len(), row.len());
        for i in 0..row.len() {
            let code = t.code(i);
            prop_assert_eq!(code.as_slice(), row.code(i));
        }
    }

    /// Distance-table summaries bound every achievable distance.
    #[test]
    fn table_summaries_bound_all_distances(
        data in prop::collection::vec(0.0f32..1000.0, 2 * 16),
        c0 in 0u8..16,
        c1 in 0u8..16,
    ) {
        let tables = DistanceTables::from_raw(data, 2, 16);
        let d = tables.distance(&[c0, c1]);
        prop_assert!(d >= tables.sum_of_mins() - 1e-3);
        prop_assert!(d <= tables.max_sum() + 1e-3);
        prop_assert!(tables.global_min() <= tables.per_table_min()[0] + 1e-6);
    }

    /// Codebook permutation composes correctly: permuting by `perm` moves
    /// centroid `perm[i]` to slot `i`.
    #[test]
    fn codebook_permutation_semantics(
        values in prop::collection::vec(0.0f32..10.0, 8 * 2),
        swap_a in 0usize..8,
        swap_b in 0usize..8,
    ) {
        let mut cb = Codebook::new(values, 2);
        let snapshot: Vec<Vec<f32>> = (0..8).map(|i| cb.centroid(i).to_vec()).collect();
        let mut perm: Vec<usize> = (0..8).collect();
        perm.swap(swap_a, swap_b);
        cb.permute(&perm);
        for i in 0..8 {
            prop_assert_eq!(cb.centroid(i), snapshot[perm[i]].as_slice());
        }
    }
}

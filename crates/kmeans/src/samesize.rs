//! Same-size k-means: balanced clustering with equal cluster cardinalities.
//!
//! Paper §4.3 uses "a variant of k-means that forces groups of same sizes"
//! (reference \[24\], E. Schubert's ELKI tutorial) to split the 256 centroids
//! of each sub-quantizer into 16 clusters of exactly 16. Centroids in the
//! same cluster then receive consecutive indexes, which makes each 16-entry
//! *portion* of a distance table hold mutually close values and therefore
//! makes the minimum tables (paper §4.3, Figure 10) tight.
//!
//! The implementation follows the tutorial's structure:
//!
//! 1. seed `k` centroids with k-means++;
//! 2. **balanced greedy assignment** — points ordered by how much they care
//!    (distance advantage of their best cluster over their worst) claim
//!    seats in their best cluster that still has capacity;
//! 3. **swap refinement** — repeatedly exchange pairs of points between
//!    clusters whenever the exchange strictly reduces the total squared
//!    distance, keeping cluster sizes invariant.

use crate::distance::l2_sq;
use crate::lloyd::{train, KMeansConfig};
use crate::KMeansError;

/// Configuration for [`train_same_size`].
#[derive(Debug, Clone)]
pub struct SameSizeConfig {
    /// Number of clusters; the input size must be divisible by it.
    pub k: usize,
    /// Upper bound on swap-refinement passes.
    pub max_iters: usize,
    /// RNG seed for the k-means++ seeding stage.
    pub seed: u64,
}

impl SameSizeConfig {
    /// Defaults: 10 refinement passes, seed 0.
    pub fn new(k: usize) -> Self {
        SameSizeConfig {
            k,
            max_iters: 10,
            seed: 0,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a balanced clustering: one cluster label per input row, with
/// every label appearing exactly `n / k` times.
#[derive(Debug, Clone)]
pub struct SameSizeKMeans {
    assignment: Vec<u32>,
    k: usize,
    cost: f64,
}

impl SameSizeKMeans {
    /// Cluster label of each input row, in input order.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Cluster size (identical for every cluster).
    pub fn cluster_size(&self) -> usize {
        self.assignment.len() / self.k
    }

    /// Total squared distance of points to their cluster means.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Row indexes grouped by cluster: `groups()[c]` lists the rows assigned
    /// to cluster `c`, each of length [`cluster_size`](Self::cluster_size),
    /// in ascending row order.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::with_capacity(self.cluster_size()); self.k];
        for (row, &c) in self.assignment.iter().enumerate() {
            groups[c as usize].push(row);
        }
        groups
    }
}

fn cluster_means(data: &[f32], dim: usize, assignment: &[u32], k: usize) -> Vec<f32> {
    let mut sums = vec![0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (v, &c) in data.chunks_exact(dim).zip(assignment) {
        counts[c as usize] += 1;
        let row = &mut sums[c as usize * dim..(c as usize + 1) * dim];
        for (s, &x) in row.iter_mut().zip(v) {
            *s += x as f64;
        }
    }
    let mut means = vec![0f32; k * dim];
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for d in 0..dim {
                means[c * dim + d] = (sums[c * dim + d] * inv) as f32;
            }
        }
    }
    means
}

fn total_cost(data: &[f32], dim: usize, assignment: &[u32], means: &[f32]) -> f64 {
    data.chunks_exact(dim)
        .zip(assignment)
        .map(|(v, &c)| l2_sq(v, &means[c as usize * dim..(c as usize + 1) * dim]) as f64)
        .sum()
}

/// Clusters `data` (row-major `n × dim`) into `cfg.k` clusters of exactly
/// `n / k` rows each.
///
/// # Errors
///
/// All [`train`] errors plus [`KMeansError::NotDivisible`] when `n % k != 0`.
pub fn train_same_size(
    data: &[f32],
    dim: usize,
    cfg: &SameSizeConfig,
) -> Result<SameSizeKMeans, KMeansError> {
    let k = cfg.k;
    // Seed centroids with ordinary k-means (validates all shared inputs).
    let seeded = train(data, dim, &KMeansConfig::new(k).with_seed(cfg.seed))?;
    let n = data.len() / dim;
    if n % k != 0 {
        return Err(KMeansError::NotDivisible { k, n });
    }
    let capacity = n / k;
    let centroids = seeded.centroids();

    // --- Balanced greedy assignment -------------------------------------
    // Distance matrix n × k.
    let mut dmat = vec![0f32; n * k];
    for (i, v) in data.chunks_exact(dim).enumerate() {
        for c in 0..k {
            dmat[i * k + c] = l2_sq(v, &centroids[c * dim..(c + 1) * dim]);
        }
    }
    // Points that lose the most by missing their best cluster go first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let row_a = &dmat[a * k..(a + 1) * k];
        let row_b = &dmat[b * k..(b + 1) * k];
        let spread = |row: &[f32]| {
            let mut mn = f32::INFINITY;
            let mut mx = f32::NEG_INFINITY;
            for &d in row {
                mn = mn.min(d);
                mx = mx.max(d);
            }
            mn - mx // most negative = cares most
        };
        spread(row_a).total_cmp(&spread(row_b)).then(a.cmp(&b))
    });
    let mut assignment = vec![u32::MAX; n];
    let mut remaining = vec![capacity; k];
    for &i in &order {
        let row = &dmat[i * k..(i + 1) * k];
        let mut best = usize::MAX;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            if remaining[c] > 0 && row[c] < best_d {
                best_d = row[c];
                best = c;
            }
        }
        debug_assert!(best != usize::MAX, "capacity bookkeeping broken");
        assignment[i] = best as u32;
        remaining[best] -= 1;
    }

    // --- Swap refinement --------------------------------------------------
    // Pairwise exchanges keep sizes invariant; accept strictly improving
    // swaps against the *current* means, then recompute means each pass.
    for _ in 0..cfg.max_iters {
        let means = cluster_means(data, dim, &assignment, k);
        // Cache d(point, mean of each cluster).
        for (i, v) in data.chunks_exact(dim).enumerate() {
            for c in 0..k {
                dmat[i * k + c] = l2_sq(v, &means[c * dim..(c + 1) * dim]);
            }
        }
        let mut improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let (ci, cj) = (assignment[i] as usize, assignment[j] as usize);
                if ci == cj {
                    continue;
                }
                let current = dmat[i * k + ci] + dmat[j * k + cj];
                let swapped = dmat[i * k + cj] + dmat[j * k + ci];
                if swapped + 1e-9 < current {
                    assignment.swap(i, j);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let means = cluster_means(data, dim, &assignment, k);
    let cost = total_cost(data, dim, &assignment, &means);
    Ok(SameSizeKMeans {
        assignment,
        k,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn counts(assignment: &[u32], k: usize) -> Vec<usize> {
        let mut c = vec![0usize; k];
        for &a in assignment {
            c[a as usize] += 1;
        }
        c
    }

    #[test]
    fn all_clusters_have_equal_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f32> = (0..256 * 4).map(|_| rng.gen_range(0.0..255.0f32)).collect();
        let result = train_same_size(&data, 4, &SameSizeConfig::new(16).with_seed(2)).unwrap();
        assert_eq!(counts(result.assignment(), 16), vec![16; 16]);
        assert_eq!(result.cluster_size(), 16);
    }

    #[test]
    fn balanced_blobs_are_recovered_exactly() {
        // 4 blobs of exactly 8 points; balanced clustering should match them.
        let mut data = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)] {
            for i in 0..8 {
                data.push(cx + (i as f32) * 0.1);
                data.push(cy + (i as f32) * 0.1);
            }
        }
        let result = train_same_size(&data, 2, &SameSizeConfig::new(4).with_seed(0)).unwrap();
        // All 8 points of each blob share a label.
        for blob in 0..4 {
            let first = result.assignment()[blob * 8];
            for i in 0..8 {
                assert_eq!(result.assignment()[blob * 8 + i], first, "blob {blob}");
            }
        }
    }

    #[test]
    fn rejects_non_divisible_input() {
        let data = vec![0.0f32; 10 * 2];
        let err = train_same_size(&data, 2, &SameSizeConfig::new(3)).unwrap_err();
        assert_eq!(err, KMeansError::NotDivisible { k: 3, n: 10 });
    }

    #[test]
    fn groups_partition_all_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..64 * 2).map(|_| rng.gen_range(0.0..10.0f32)).collect();
        let result = train_same_size(&data, 2, &SameSizeConfig::new(8).with_seed(1)).unwrap();
        let groups = result.groups();
        assert_eq!(groups.len(), 8);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
        for g in &groups {
            assert_eq!(g.len(), 8);
        }
    }

    #[test]
    fn swap_refinement_does_not_hurt_cost() {
        // Cost after refinement must be <= cost of the pure greedy pass
        // (max_iters = 0 disables refinement).
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f32> = (0..128 * 3).map(|_| rng.gen_range(0.0..50.0f32)).collect();
        let greedy = train_same_size(
            &data,
            3,
            &SameSizeConfig {
                k: 8,
                max_iters: 0,
                seed: 9,
            },
        )
        .unwrap();
        let refined = train_same_size(
            &data,
            3,
            &SameSizeConfig {
                k: 8,
                max_iters: 10,
                seed: 9,
            },
        )
        .unwrap();
        assert!(refined.cost() <= greedy.cost() + 1e-6);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<f32> = (0..96 * 2).map(|_| rng.gen_range(0.0..10.0f32)).collect();
        let a = train_same_size(&data, 2, &SameSizeConfig::new(6).with_seed(4)).unwrap();
        let b = train_same_size(&data, 2, &SameSizeConfig::new(6).with_seed(4)).unwrap();
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn single_cluster_contains_everything() {
        let data = vec![1.0f32; 12 * 2];
        let result = train_same_size(&data, 2, &SameSizeConfig::new(1)).unwrap();
        assert!(result.assignment().iter().all(|&c| c == 0));
    }
}

//! Vector grouping (paper §4.2).
//!
//! Vectors are grouped on the **high nibbles of their first `c`
//! components**: all vectors of group `(i0, …, i_{c−1})` hit the same
//! 16-entry *portion* of the distance tables `D_0 … D_{c−1}`, so those
//! portions can be loaded into SIMD registers once per group and reused for
//! every vector in it.
//!
//! The paper's sizing rule: a group should average at least ~50 vectors or
//! table reloads dominate, giving the minimum partition size
//! `n_min(c) = 50 · 16^c` for grouping on `c` components (§4.2); partitions
//! of 3.2–25 M vectors group on `c = 4`.
//!
//! Storage is **one contiguous buffer** for the whole partition (groups
//! back to back, each zero-padded to a whole block) — the scan walks memory
//! linearly, exactly like the paper's grouped database layout.

use crate::fastscan::layout::{BlockLayout, FS_BLOCK, FS_M};
use pqfs_core::RowMajorCodes;
use std::collections::BTreeMap;

/// A group identifier: the high nibbles of the first `c` components
/// (entries `c..4` are zero).
pub type GroupKey = [u8; 4];

/// Extracts the group key of a code for grouping on `c` components.
///
/// # Panics
///
/// Panics in debug builds if `code.len() < c` or `c > 4`.
#[inline]
pub fn group_key(code: &[u8], c: usize) -> GroupKey {
    debug_assert!(c <= 4);
    let mut key = [0u8; 4];
    for (j, slot) in key.iter_mut().enumerate().take(c) {
        *slot = code[j] >> 4;
    }
    key
}

/// The paper's minimum average group size for grouping to pay off.
pub const MIN_GROUP_SIZE: usize = 50;

/// Minimum partition size for grouping on `c` components:
/// `n_min(c) = 50 · 16^c`.
pub fn min_partition_size(c: usize) -> usize {
    MIN_GROUP_SIZE * (1usize << (4 * c))
}

/// Picks the largest `c ∈ 0..=4` whose minimum partition size `n` satisfies
/// (the paper's auto-sizing rule; §5.6 notes partitions under 3 M vectors
/// should drop to `c = 3`).
pub fn auto_components(n: usize) -> usize {
    let mut c = 0;
    while c < 4 && n >= min_partition_size(c + 1) {
        c += 1;
    }
    c
}

/// Metadata of one group inside [`GroupedCodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMeta {
    /// High nibbles of the grouped components.
    pub key: GroupKey,
    /// Index of the group's first vector in storage order (into `ids`).
    pub start: usize,
    /// Number of member vectors.
    pub len: usize,
    /// Byte offset of the group's first block in the shared buffer.
    pub block_offset: usize,
}

impl GroupMeta {
    /// Number of 16-vector blocks (including the padded tail).
    pub fn num_blocks(&self) -> usize {
        self.len.div_ceil(FS_BLOCK)
    }
}

/// A partition's codes, grouped and packed into the Fast Scan layout.
#[derive(Debug, Clone)]
pub struct GroupedCodes {
    layout: BlockLayout,
    /// All groups' blocks, concatenated (each group zero-padded to whole
    /// blocks).
    blocks: Vec<u8>,
    /// Original partition positions, in storage order.
    ids: Vec<u32>,
    groups: Vec<GroupMeta>,
    n: usize,
}

impl GroupedCodes {
    /// Groups a partition's codes on `c` components. Groups are ordered by
    /// ascending key and vectors keep their relative order within a group
    /// (the deterministic warm-up relies on both).
    ///
    /// # Panics
    ///
    /// Panics if `codes.m() != 8` or `c > 4`.
    pub fn build(codes: &RowMajorCodes, c: usize) -> Self {
        assert_eq!(codes.m(), FS_M, "fast scan requires PQ 8x8 codes");
        assert!(c <= 4);
        let layout = BlockLayout::new(c);
        let bpb = layout.bytes_per_block();

        // Stable bucket assignment: BTreeMap gives ascending key order.
        let mut buckets: BTreeMap<GroupKey, Vec<u32>> = BTreeMap::new();
        for (i, code) in codes.iter().enumerate() {
            buckets
                .entry(group_key(code, c))
                .or_default()
                .push(i as u32);
        }

        let n = codes.len();
        let total_blocks: usize = buckets
            .values()
            .map(|ids| ids.len().div_ceil(FS_BLOCK))
            .sum();
        let mut blocks = vec![0u8; total_blocks * bpb];
        let mut ids = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(buckets.len());

        let mut block_offset = 0usize;
        for (key, members) in buckets {
            let start = ids.len();
            let len = members.len();
            let group_bytes = len.div_ceil(FS_BLOCK) * bpb;
            let region = &mut blocks[block_offset..block_offset + group_bytes];
            for (pos, &id) in members.iter().enumerate() {
                let block = &mut region[(pos / FS_BLOCK) * bpb..(pos / FS_BLOCK + 1) * bpb];
                layout.write_code(block, pos % FS_BLOCK, codes.code(id as usize));
            }
            ids.extend_from_slice(&members);
            groups.push(GroupMeta {
                key,
                start,
                len,
                block_offset,
            });
            block_offset += group_bytes;
        }

        GroupedCodes {
            layout,
            blocks,
            ids,
            groups,
            n,
        }
    }

    /// The block layout in use.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// Total number of vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Group metadata, in ascending key order.
    pub fn groups(&self) -> &[GroupMeta] {
        &self.groups
    }

    /// Original partition position of the vector at storage position `pos`.
    #[inline]
    pub fn id(&self, pos: usize) -> u32 {
        self.ids[pos]
    }

    /// The packed blocks of group `g`.
    #[inline]
    pub fn group_blocks(&self, g: &GroupMeta) -> &[u8] {
        let bytes = g.num_blocks() * self.layout.bytes_per_block();
        &self.blocks[g.block_offset..g.block_offset + bytes]
    }

    /// Reconstructs the full code of the vector at storage position
    /// `g.start + idx`.
    #[inline]
    pub fn read_code(&self, g: &GroupMeta, idx: usize) -> [u8; FS_M] {
        debug_assert!(idx < g.len);
        let bpb = self.layout.bytes_per_block();
        let block_start = g.block_offset + (idx / FS_BLOCK) * bpb;
        let block = &self.blocks[block_start..block_start + bpb];
        self.layout.read_code(block, idx % FS_BLOCK, &g.key)
    }

    /// Bytes of packed code storage (padding included) — the §4.2 memory
    /// claim compares this against `8 × n` row-major bytes.
    pub fn code_memory_bytes(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of the id permutation (bookkeeping row-major storage doesn't
    /// need).
    pub fn ids_memory_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_codes(n: usize) -> RowMajorCodes {
        let bytes: Vec<u8> = (0..n * FS_M).map(|i| ((i * 37 + 11) % 256) as u8).collect();
        RowMajorCodes::new(bytes, FS_M)
    }

    #[test]
    fn min_partition_sizes_match_the_paper() {
        assert_eq!(min_partition_size(0), 50);
        assert_eq!(min_partition_size(1), 800);
        assert_eq!(min_partition_size(2), 12_800);
        assert_eq!(min_partition_size(3), 204_800);
        assert_eq!(min_partition_size(4), 3_276_800); // the paper's ~3.2 M
    }

    #[test]
    fn auto_components_uses_paper_thresholds() {
        assert_eq!(auto_components(0), 0);
        assert_eq!(auto_components(799), 0);
        assert_eq!(auto_components(800), 1);
        assert_eq!(auto_components(204_800), 3);
        assert_eq!(auto_components(3_276_799), 3);
        assert_eq!(auto_components(3_276_800), 4);
        assert_eq!(auto_components(25_000_000), 4);
    }

    #[test]
    fn groups_partition_all_vectors_exactly_once() {
        for c in 0..=4usize {
            let codes = sample_codes(500);
            let grouped = GroupedCodes::build(&codes, c);
            assert_eq!(grouped.len(), 500, "c={c}");
            let mut seen: Vec<u32> = (0..500).map(|pos| grouped.id(pos)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..500u32).collect::<Vec<_>>(), "c={c}");
            // Group metadata tiles the storage exactly.
            let total: usize = grouped.groups().iter().map(|g| g.len).sum();
            assert_eq!(total, 500);
            for pair in grouped.groups().windows(2) {
                assert_eq!(pair[0].start + pair[0].len, pair[1].start, "c={c}");
                assert!(pair[0].key < pair[1].key, "c={c}");
            }
        }
    }

    #[test]
    fn group_members_share_their_key_nibbles() {
        let codes = sample_codes(300);
        let grouped = GroupedCodes::build(&codes, 4);
        for g in grouped.groups() {
            for idx in 0..g.len {
                let id = grouped.id(g.start + idx);
                assert_eq!(group_key(codes.code(id as usize), 4), g.key);
            }
        }
    }

    #[test]
    fn packed_blocks_roundtrip_codes() {
        for c in [0usize, 1, 2, 3, 4] {
            let codes = sample_codes(123);
            let grouped = GroupedCodes::build(&codes, c);
            for g in grouped.groups() {
                for idx in 0..g.len {
                    let id = grouped.id(g.start + idx);
                    assert_eq!(
                        grouped.read_code(g, idx),
                        *codes.code(id as usize).first_chunk::<FS_M>().unwrap(),
                        "c={c} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn c_zero_produces_a_single_group() {
        let codes = sample_codes(64);
        let grouped = GroupedCodes::build(&codes, 0);
        assert_eq!(grouped.groups().len(), 1);
        assert_eq!(grouped.groups()[0].len, 64);
        assert_eq!(grouped.groups()[0].key, [0; 4]);
    }

    #[test]
    fn empty_partition_yields_no_groups() {
        let codes = RowMajorCodes::new(vec![], FS_M);
        let grouped = GroupedCodes::build(&codes, 4);
        assert!(grouped.is_empty());
        assert!(grouped.groups().is_empty());
        assert_eq!(grouped.code_memory_bytes(), 0);
    }

    #[test]
    fn memory_accounting_matches_layout() {
        let codes = sample_codes(320); // multiples of 16 avoid padding at c=0
        let grouped = GroupedCodes::build(&codes, 0);
        assert_eq!(grouped.code_memory_bytes(), 320 * 8);
        assert_eq!(grouped.ids_memory_bytes(), 320 * 4);
        // c = 4: 6 bytes per vector plus padding.
        let grouped = GroupedCodes::build(&codes, 4);
        assert!(grouped.code_memory_bytes() >= 320 * 6);
    }
}

//! Criterion microbenchmarks of every scan kernel on a fixed partition —
//! the per-vector view of Figures 3 and 14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqfs_bench::Fixture;
use pqfs_core::TransposedCodes;
use pqfs_scan::{
    scan_avx, scan_gather, scan_libpq, scan_naive, FastScanIndex, FastScanOptions, Kernel,
    ScanParams,
};

const N: usize = 131_072;
const TOPK: usize = 100;

fn bench_scans(c: &mut Criterion) {
    let mut fx = Fixture::train(1000);
    let codes = fx.partition(N);
    let transposed = TransposedCodes::from_row_major(&codes);
    let fast_auto = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
    let fast_portable = FastScanIndex::build(
        &codes,
        &FastScanOptions::default().with_kernel(Kernel::Portable),
    )
    .unwrap();
    let query = fx.queries(1);
    let tables = fx.tables(&query);
    let params = ScanParams::new(TOPK).with_keep(0.005);

    let mut group = c.benchmark_group("scan_kernels");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::new("naive", N), |b| {
        b.iter(|| scan_naive(&tables, &codes, TOPK))
    });
    group.bench_function(BenchmarkId::new("libpq", N), |b| {
        b.iter(|| scan_libpq(&tables, &codes, TOPK))
    });
    group.bench_function(BenchmarkId::new("avx", N), |b| {
        b.iter(|| scan_avx(&tables, &transposed, TOPK))
    });
    group.bench_function(BenchmarkId::new("gather", N), |b| {
        b.iter(|| scan_gather(&tables, &transposed, TOPK))
    });
    group.bench_function(BenchmarkId::new("fastscan", N), |b| {
        b.iter(|| fast_auto.scan(&tables, &params).unwrap())
    });
    group.bench_function(BenchmarkId::new("fastscan_portable", N), |b| {
        b.iter(|| fast_portable.scan(&tables, &params).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_scans
}
criterion_main!(benches);

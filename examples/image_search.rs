//! Image-retrieval scenario: the paper's motivating application
//! (multimedia databases, §1).
//!
//! A catalog of "images" is represented by 128-d descriptors; retrieval
//! returns the `topk = 100` most similar ones (the typical setting for
//! information retrieval in multimedia databases, §5.1). The example
//! measures end-to-end IVFADC recall against exact brute force and shows
//! that switching the scan backend from PQ Scan to PQ Fast Scan changes
//! response time but not a single result.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use pq_fast_scan::metrics::{mean_recall_at_r, time_ms, Summary};
use pq_fast_scan::prelude::*;

fn main() {
    let dim = 128;
    let n_images = 120_000;
    let n_queries = 50;
    let topk = 100;

    println!("== image similarity search (IVFADC + PQ Fast Scan) ==");

    // Descriptor catalog: clustered, byte-range, SIFT-like.
    let mut dataset = SyntheticDataset::new(
        &SyntheticConfig::sift_like()
            .with_clusters(512)
            .with_seed(2024),
    );
    let train = dataset.sample(8_000);
    let base = dataset.sample(n_images);
    let queries = dataset.sample(n_queries);
    println!("catalog: {n_images} descriptors, {n_queries} queries, topk {topk}");

    // 8-partition IVFADC index, as in the paper's ANN_SIFT100M1 setup.
    let config = IvfadcConfig::new(dim, 8).with_seed(5);
    let (index, build_ms) =
        time_ms(|| IvfadcIndex::build(&train, &base, &config).expect("index build"));
    println!(
        "index: {} partitions (sizes {:?}), built in {:.0} ms",
        index.num_partitions(),
        index.partition_sizes(),
        build_ms
    );

    // Exact ground truth for recall.
    let truth: Vec<u64> = queries
        .chunks_exact(dim)
        .map(|q| exact_knn(&base, dim, q, 1)[0].id as u64)
        .collect();

    let mut results_fast: Vec<Vec<u64>> = Vec::new();
    let mut times_fast = Vec::new();
    let mut times_slow = Vec::new();
    for (qi, q) in queries.chunks_exact(dim).enumerate() {
        let (fast, t_fast) = time_ms(|| {
            index
                .search(q, topk, SearchBackend::FastScan, 0.005)
                .expect("search")
        });
        let (slow, t_slow) = time_ms(|| {
            index
                .search(q, topk, SearchBackend::Naive, 0.0)
                .expect("search")
        });
        let ids = |o: &pq_fast_scan::ivf::SearchOutcome| {
            o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        };
        assert_eq!(ids(&fast), ids(&slow), "query {qi}: backends disagree");
        results_fast.push(ids(&fast));
        times_fast.push(t_fast);
        times_slow.push(t_slow);
    }

    let recall1 = mean_recall_at_r(&truth, &results_fast, 1);
    let recall100 = mean_recall_at_r(&truth, &results_fast, 100);
    println!("\nresult quality (identical for both backends, as §4 guarantees):");
    println!("  recall@1   = {recall1:.3}");
    println!("  recall@100 = {recall100:.3}");

    let fast = Summary::from_values(&times_fast);
    let slow = Summary::from_values(&times_slow);
    println!("\nresponse time per query [ms]:");
    println!(
        "  PQ Scan   median {:.2}  (mean {:.2})",
        slow.median(),
        slow.mean()
    );
    println!(
        "  Fast Scan median {:.2}  (mean {:.2})",
        fast.median(),
        fast.mean()
    );
    println!("  speedup   {:.1}x", slow.median() / fast.median());
}

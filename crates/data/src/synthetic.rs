//! Synthetic SIFT-like vector generation.
//!
//! The paper evaluates on ANN_SIFT1B: 128-dimensional SIFT descriptors with
//! byte-range components. Two statistical properties of that corpus matter
//! to the algorithms under test (DESIGN.md §2):
//!
//! 1. **global clustering** — queries have true near neighbors and IVF
//!    partitions are meaningful;
//! 2. **partial subspace independence** — a vector's 16-dimensional blocks
//!    (the product-quantizer subspaces) are correlated with, but not
//!    determined by, its global cluster. This yields a *continuum* of
//!    distances from a query (near neighbors share many blocks, mid
//!    vectors share some, far vectors none), and spreads near neighbors
//!    across the Fast Scan group order instead of clumping them into a few
//!    groups.
//!
//! A naive mixture-of-Gaussians violates (2): every subvector is pinned to
//! the cluster, distances become bimodal, and the Fast Scan top-k threshold
//! converges only when the single "good" group is reached — behaviour real
//! SIFT does not exhibit. This generator therefore uses a **mosaic
//! mixture**: each vector picks a primary cluster, then each 16-dim block
//! is copied from the primary's center with probability [`SyntheticConfig::
//! block_coherence`] (else from a random other center), plus Gaussian noise,
//! clamped to the SIFT byte range.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Vector dimensionality (SIFT: 128).
    pub dim: usize,
    /// Number of mixture cluster centers.
    pub clusters: usize,
    /// Standard deviation of points around their (mosaic) center.
    pub cluster_std: f32,
    /// Width of the independent blocks the mosaic draws from (matches the
    /// PQ 8×8 subspace width by default).
    pub block_dim: usize,
    /// Probability that a block comes from the vector's primary cluster
    /// center (1.0 = classic mixture of Gaussians; lower values increase
    /// subspace independence and smooth the distance distribution).
    pub block_coherence: f64,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl SyntheticConfig {
    /// SIFT-like defaults: 128 dimensions, 256 clusters, σ = 18, 16-dim
    /// blocks with coherence 0.65.
    pub fn sift_like() -> Self {
        SyntheticConfig {
            dim: 128,
            clusters: 256,
            cluster_std: 18.0,
            block_dim: 16,
            block_coherence: 0.65,
            seed: 0,
        }
    }

    /// Replaces the dimensionality.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cluster count.
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        self.clusters = clusters;
        self
    }

    /// Replaces the block coherence (clamped to `[0, 1]`).
    pub fn with_block_coherence(mut self, coherence: f64) -> Self {
        self.block_coherence = coherence.clamp(0.0, 1.0);
        self
    }

    /// Replaces the point noise level.
    pub fn with_cluster_std(mut self, std: f32) -> Self {
        self.cluster_std = std;
        self
    }
}

/// A reusable generator: cluster centers are materialized once, vectors are
/// drawn on demand (so base, query and training sets come from the same
/// distribution, like the splits of ANN_SIFT1B).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    centers: Vec<f32>,
    dim: usize,
    block_dim: usize,
    block_coherence: f64,
    cluster_std: f32,
    rng: StdRng,
}

impl SyntheticDataset {
    /// Materializes the mixture described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `dim`, `clusters` or `block_dim` is zero.
    pub fn new(config: &SyntheticConfig) -> Self {
        assert!(config.dim > 0 && config.clusters > 0 && config.block_dim > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centers: Vec<f32> = (0..config.clusters * config.dim)
            .map(|_| rng.gen_range(0.0f32..=255.0))
            .collect();
        SyntheticDataset {
            centers,
            dim: config.dim,
            block_dim: config.block_dim.min(config.dim),
            block_coherence: config.block_coherence.clamp(0.0, 1.0),
            cluster_std: config.cluster_std,
            rng,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draws one vector into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim`.
    pub fn sample_into(&mut self, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim);
        let k = self.centers.len() / self.dim;
        let primary = self.rng.gen_range(0..k);
        let mut start = 0usize;
        while start < self.dim {
            let end = (start + self.block_dim).min(self.dim);
            let source = if self.rng.gen_bool(self.block_coherence) {
                primary
            } else {
                self.rng.gen_range(0..k)
            };
            let center = &self.centers[source * self.dim..(source + 1) * self.dim];
            for i in start..end {
                let noise = gaussian(&mut self.rng) * self.cluster_std;
                out[i] = (center[i] + noise).clamp(0.0, 255.0);
            }
            start = end;
        }
    }

    /// Draws `n` row-major vectors.
    pub fn sample(&mut self, n: usize) -> Vec<f32> {
        let mut data = vec![0f32; n * self.dim];
        for row in data.chunks_exact_mut(self.dim) {
            self.sample_into(row);
        }
        data
    }
}

/// One standard Gaussian draw via Box–Muller (the sanctioned `rand` crate
/// ships without distributions; two uniform draws suffice).
fn gaussian(rng: &mut StdRng) -> f32 {
    // Guard against ln(0).
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Convenience: draws `n` vectors from a fresh generator.
pub fn generate(n: usize, config: &SyntheticConfig) -> Vec<f32> {
    SyntheticDataset::new(config).sample(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn values_stay_in_sift_byte_range() {
        let cfg = SyntheticConfig::sift_like().with_dim(16).with_seed(3);
        let data = generate(500, &cfg);
        assert_eq!(data.len(), 500 * 16);
        assert!(data.iter().all(|&x| (0.0..=255.0).contains(&x)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SyntheticConfig::sift_like().with_dim(8).with_seed(11);
        assert_eq!(generate(100, &cfg), generate(100, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(10, &SyntheticConfig::sift_like().with_dim(8).with_seed(1));
        let b = generate(10, &SyntheticConfig::sift_like().with_dim(8).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn full_coherence_is_a_classic_clustered_mixture() {
        // With coherence 1 and few tight clusters, nearest-other-point
        // distances are far below the uniform-random expectation.
        let cfg = SyntheticConfig {
            dim: 16,
            clusters: 4,
            cluster_std: 2.0,
            block_dim: 16,
            block_coherence: 1.0,
            seed: 5,
        };
        let data = generate(200, &cfg);
        let mut total_nn = 0.0f64;
        for i in 0..50 {
            let vi = &data[i * 16..(i + 1) * 16];
            let mut best = f32::INFINITY;
            for j in 0..200 {
                if i != j {
                    best = best.min(d2(vi, &data[j * 16..(j + 1) * 16]));
                }
            }
            total_nn += best as f64;
        }
        let avg_nn = total_nn / 50.0;
        // Uniform random in [0,255]^16 would give ~ 16 * (255^2/6) ≈ 173k.
        assert!(
            avg_nn < 10_000.0,
            "avg nearest-neighbor distance {avg_nn} not clustered"
        );
    }

    #[test]
    fn mosaic_produces_a_distance_continuum() {
        // With partial coherence, distances from a point to the rest of the
        // set must spread smoothly: the 10th percentile should sit clearly
        // between the minimum and the median (no bimodal gap).
        let cfg = SyntheticConfig::sift_like()
            .with_dim(64)
            .with_clusters(16)
            .with_seed(7);
        let data = generate(2000, &cfg);
        let q = &data[..64];
        let mut dists: Vec<f32> = (1..2000)
            .map(|j| d2(q, &data[j * 64..(j + 1) * 64]))
            .collect();
        dists.sort_by(f32::total_cmp);
        let p = |f: f64| dists[((dists.len() - 1) as f64 * f) as usize];
        let (p01, p10, p50) = (p(0.01), p(0.10), p(0.50));
        assert!(
            p01 < p10 && p10 < p50,
            "distances must be spread: {p01} {p10} {p50}"
        );
        // Continuum check: p10 is not glued to either end.
        let spread = (p10 - p01) / (p50 - p01);
        assert!(
            (0.02..=0.98).contains(&spread),
            "bimodal distance distribution: p01={p01} p10={p10} p50={p50}"
        );
    }

    #[test]
    fn successive_samples_share_the_distribution() {
        let cfg = SyntheticConfig::sift_like()
            .with_dim(4)
            .with_clusters(2)
            .with_seed(9);
        let mut gen = SyntheticDataset::new(&cfg);
        let a = gen.sample(100);
        let b = gen.sample(100);
        assert_ne!(a, b, "samples must advance the RNG");
        assert!(b.iter().all(|&x| (0.0..=255.0).contains(&x)));
    }

    #[test]
    fn partial_blocks_are_handled() {
        // dim not a multiple of block_dim: the tail block is shorter.
        let cfg = SyntheticConfig {
            dim: 20,
            clusters: 8,
            cluster_std: 5.0,
            block_dim: 16,
            block_coherence: 0.5,
            seed: 13,
        };
        let data = generate(50, &cfg);
        assert_eq!(data.len(), 50 * 20);
        assert!(data.iter().all(|x| x.is_finite()));
    }
}

//! Generalization of PQ Fast Scan's small tables to compressed-database
//! query execution — the paper's §6 ("Discussion"), implemented.
//!
//! Dictionary compression stores a column as one byte per row plus a shared
//! dictionary; query execution then relies on lookup tables derived from
//! that dictionary. §6 observes that the PQ Fast Scan techniques carry
//! over:
//!
//! * **top-k queries** — 16-entry *maximum tables* give in-register upper
//!   bounds that prune dictionary lookups ([`topk_max_fast`]);
//! * **approximate aggregates** — 16-entry *tables of means* replace the
//!   minimum tables, and 8-bit saturated arithmetic (`pshufb` + `psadbw`)
//!   computes the aggregate four times wider than 32-bit floats would
//!   ([`approximate_mean`]).
//!
//! ```
//! use pqfs_columnar::{CompressedColumn, topk_max_fast, approximate_mean};
//!
//! let data: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 1001) as f32).collect();
//! let column = CompressedColumn::compress(&data, 256);
//!
//! let top = topk_max_fast(&column, 5);
//! assert_eq!(top.items, column.topk_max_exact(5)); // exact results
//! assert!(top.pruned > 5_000); // most rows never touch the dictionary
//!
//! let mean = approximate_mean(&column);
//! assert!((mean.value - column.exact_mean()).abs() <= mean.error_bound);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod aggregate;
pub mod column;
pub mod dict;
pub mod topk;

pub use aggregate::{approximate_mean, approximate_sum, ApproxAggregate};
pub use column::CompressedColumn;
pub use dict::Dictionary;
pub use topk::{topk_max_fast, TopKResult};

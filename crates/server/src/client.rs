//! A small blocking client for the serving protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (the protocol is strictly request/response per connection; open more
//! clients for concurrency). Used by the CLI `bench-client` load
//! generator, the loopback integration tests, and the `serve_qps` bench.

use crate::proto::{
    read_frame, write_frame, HealthInfo, ProtoError, QueryParams, QueryRequest, Request, Response,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Connection or socket failure.
    Io(io::Error),
    /// The server sent a malformed frame.
    Proto(ProtoError),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The response frame type does not answer the request that was sent
    /// (e.g. a batch result for a single query).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected response frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects with no socket timeouts (requests block until answered).
    ///
    /// # Errors
    ///
    /// The underlying connect/clone error.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, None)
    }

    /// Connects and applies `timeout` to reads and writes, so a wedged
    /// or fault-injected server surfaces as a timeout error instead of a
    /// hung client.
    ///
    /// # Errors
    ///
    /// The underlying connect/clone error.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer })
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// IO/protocol failures, or [`ClientError::Disconnected`] when the
    /// server hangs up without answering.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = request.to_frame();
        write_frame(&mut self.writer, frame.kind, &frame.payload).map_err(client_io)?;
        self.writer.flush()?;
        let reply = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        Ok(Response::from_frame(&reply)?)
    }

    /// One query. The response may also be `Error` or `Overloaded`;
    /// callers decide how to handle those.
    ///
    /// # Errors
    ///
    /// Transport-level failures only (typed server rejections are
    /// `Ok(Response::...)`).
    pub fn query(&mut self, query: &[f32], params: QueryParams) -> Result<Response, ClientError> {
        let dim = u32::try_from(query.len()).unwrap_or(u32::MAX);
        self.roundtrip(&Request::Query(QueryRequest {
            params,
            dim,
            queries: query.to_vec(),
        }))
    }

    /// One batch of `count = queries.len() / dim` queries sharing
    /// `params`.
    ///
    /// # Errors
    ///
    /// Transport-level failures only.
    pub fn batch(
        &mut self,
        queries: &[f32],
        dim: u32,
        params: QueryParams,
    ) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Batch(QueryRequest {
            params,
            dim,
            queries: queries.to_vec(),
        }))
    }

    /// Liveness + index shape.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Unexpected`] when the server
    /// answers with anything but health info.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        match self.roundtrip(&Request::Health)? {
            Response::Health(h) => Ok(h),
            _ => Err(ClientError::Unexpected("health")),
        }
    }

    /// The server's telemetry snapshot as JSON text.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Unexpected`] for a
    /// non-stats answer.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }
}

/// Collapses write-side protocol errors (which can only be IO here —
/// the payload was built by this crate) into [`ClientError`].
fn client_io(e: ProtoError) -> ClientError {
    match e {
        ProtoError::Io(io) => ClientError::Io(io),
        other => ClientError::Proto(other),
    }
}

//! `pqfs bench-client`: a load generator for a running `pqfs serve`,
//! emitting JSON QPS and latency percentiles on stdout.

use crate::args::Args;
use crate::{CliError, Outcome};
use pqfs_data::{SyntheticConfig, SyntheticDataset};
use pqfs_metrics::Summary;
use pqfs_server::proto::{QueryParams, Response};
use pqfs_server::Client;
use std::time::{Duration, Instant};

/// One worker's tally.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    queries: usize,
    errors: usize,
    shed: usize,
}

pub fn cmd_bench_client(args: &Args) -> Result<Outcome, CliError> {
    let addr = args.require("addr")?;
    let n = args.usize("n", 1000)?;
    let batch = args.usize("batch", 1)?.max(1);
    let connections = args.usize("connections", 1)?.max(1);
    let topk = args.usize("topk", 10)?;
    let nprobe = args.usize("nprobe", 1)?;
    let keep = args.f64("keep", 0.05)?;
    let deadline_ms = args.u64("deadline-ms", 0)?;
    let seed = args.u64("seed", 0)?;
    if n == 0 {
        return Err(CliError::Other("--n must be positive".into()));
    }

    // The served dimensionality comes from the health frame, so the
    // generator always matches the index.
    let dim = {
        let mut probe = Client::connect_with(&*addr, Some(Duration::from_secs(10)))
            .map_err(|e| CliError::Other(format!("connecting to {addr}: {e}")))?;
        let health = probe
            .health()
            .map_err(|e| CliError::Other(format!("health check: {e}")))?;
        health.dim as usize
    };
    if dim == 0 {
        return Err(CliError::Other("server reports dim 0".into()));
    }

    let params = QueryParams {
        topk: u32::try_from(topk).unwrap_or(u32::MAX),
        nprobe: u32::try_from(nprobe).unwrap_or(u32::MAX).max(1),
        keep,
        deadline_us: deadline_ms.saturating_mul(1000),
        backend: String::new(), // server default
    };

    // Frames per worker: n queries split across connections, then into
    // batch-sized frames (the tail frame may be smaller).
    let per_conn = n.div_ceil(connections);
    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.clone();
            let params = params.clone();
            let count = per_conn.min(n.saturating_sub(c * per_conn));
            let worker_seed = seed.wrapping_add(c as u64).wrapping_mul(0x9E3779B9);
            std::thread::spawn(move || run_worker(&addr, dim, count, batch, &params, worker_seed))
        })
        .collect();

    let mut all = Tally::default();
    for w in workers {
        let tally = w
            .join()
            .map_err(|_| CliError::Other("bench worker panicked".into()))??;
        all.latencies_ms.extend(tally.latencies_ms);
        all.queries += tally.queries;
        all.errors += tally.errors;
        all.shed += tally.shed;
    }
    let seconds = started.elapsed().as_secs_f64();

    let s = Summary::from_values(&all.latencies_ms);
    let qps = if seconds > 0.0 {
        all.queries as f64 / seconds
    } else {
        0.0
    };
    println!(
        "{{\"queries\": {}, \"batch\": {}, \"connections\": {}, \"seconds\": {:.3}, \
         \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"errors\": {}, \"shed\": {}}}",
        all.queries,
        batch,
        connections,
        seconds,
        qps,
        s.percentile(50.0),
        s.percentile(90.0),
        s.percentile(99.0),
        all.errors,
        all.shed
    );
    if all.errors > 0 {
        return Err(CliError::Other(format!(
            "{} of {} requests failed",
            all.errors, all.queries
        )));
    }
    Ok(Outcome::Clean)
}

/// Sends `count` queries over one connection in `batch`-sized frames.
fn run_worker(
    addr: &str,
    dim: usize,
    count: usize,
    batch: usize,
    params: &QueryParams,
    seed: u64,
) -> Result<Tally, CliError> {
    let mut tally = Tally::default();
    if count == 0 {
        return Ok(tally);
    }
    let config = SyntheticConfig::sift_like().with_dim(dim).with_seed(seed);
    let queries = SyntheticDataset::new(&config).sample(count);
    let mut client = Client::connect_with(addr, Some(Duration::from_secs(30)))
        .map_err(|e| CliError::Other(format!("connecting to {addr}: {e}")))?;

    let mut sent = 0usize;
    while sent < count {
        let take = batch.min(count - sent);
        let slice = &queries[sent * dim..(sent + take) * dim];
        let t0 = Instant::now();
        let outcome = if take == 1 {
            client.query(slice, params.clone())
        } else {
            client.batch(slice, dim as u32, params.clone())
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        tally.queries += take;
        match outcome {
            Ok(Response::Query(_)) | Ok(Response::Batch(_)) => tally.latencies_ms.push(ms),
            Ok(Response::Overloaded { .. }) => tally.shed += take,
            Ok(_) | Err(_) => tally.errors += take,
        }
        sent += take;
    }
    Ok(tally)
}

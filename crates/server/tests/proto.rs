//! Codec torture: round-trip properties for every frame type, plus
//! rejection of truncated, oversized, and corrupted encodings.
//!
//! The decoding contract is the same one the persist format upholds:
//! **every** malformed byte sequence yields a typed [`ProtoError`] — no
//! panic, no over-allocation, no silent misparse.

use pqfs_core::Neighbor;
use pqfs_server::proto::{
    frame_bytes, read_frame, ErrorCode, FrameKind, HealthInfo, ProtoError, QueryAnswer,
    QueryParams, QueryRequest, Request, Response, HEADER_LEN,
};
use proptest::prelude::*;

fn roundtrip_request(req: &Request) -> Request {
    let frame = req.to_frame();
    let bytes = frame_bytes(&frame);
    let got = read_frame(&mut &bytes[..])
        .expect("well-formed frame")
        .expect("one frame present");
    assert_eq!(got, frame, "wire frame survives the transport");
    Request::from_frame(&got).expect("well-formed payload")
}

fn roundtrip_response(resp: &Response) -> Response {
    let frame = resp.to_frame();
    let bytes = frame_bytes(&frame);
    let got = read_frame(&mut &bytes[..])
        .expect("well-formed frame")
        .expect("one frame present");
    Response::from_frame(&got).expect("well-formed payload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_roundtrips(
        topk in 1u32..1000,
        nprobe in 1u32..64,
        keep in 0.001f64..1.0,
        deadline_us in 0u64..2_000_000,
        dim in 1u32..64,
        seed in 0u64..1000,
    ) {
        let queries: Vec<f32> =
            (0..dim).map(|i| (i as f32) * 0.5 + seed as f32).collect();
        let req = Request::Query(QueryRequest {
            params: QueryParams {
                topk,
                nprobe,
                keep,
                deadline_us,
                backend: "fast-scan".to_string(),
            },
            dim,
            queries,
        });
        prop_assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn batch_roundtrips(
        count in 1u32..8,
        dim in 1u32..32,
        seed in 0u64..1000,
    ) {
        let queries: Vec<f32> = (0..count * dim)
            .map(|i| ((i as u64 * 2654435761 + seed) % 255) as f32)
            .collect();
        let req = Request::Batch(QueryRequest {
            params: QueryParams::default(),
            dim,
            queries,
        });
        prop_assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn answers_roundtrip(
        n in 0usize..64,
        ok in 0u32..16,
        failed in 0u32..4,
        skipped in 0u32..4,
    ) {
        let answer = QueryAnswer {
            probes_ok: ok,
            probes_failed: failed,
            probes_skipped: skipped,
            neighbors: (0..n)
                .map(|i| Neighbor { id: i as u64 * 7, dist: i as f32 * 0.25 })
                .collect(),
        };
        let single = Response::Query(answer.clone());
        prop_assert_eq!(roundtrip_response(&single), single);
        let batch = Response::Batch(vec![answer.clone(), QueryAnswer::default(), answer]);
        prop_assert_eq!(roundtrip_response(&batch), batch);
    }

    #[test]
    fn nan_and_infinite_floats_roundtrip_bit_exact(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        let req = Request::Query(QueryRequest {
            params: QueryParams::default(),
            dim: 1,
            queries: vec![x],
        });
        let got = roundtrip_request(&req);
        let Request::Query(q) = got else {
            return Err(TestCaseError::fail("wrong request variant"));
        };
        prop_assert_eq!(q.queries[0].to_bits(), bits);
    }

    /// Every truncation of a valid frame is rejected (or, at length 0,
    /// reported as clean EOF) — never a panic or a bogus success.
    #[test]
    fn truncations_never_parse(cut in 0usize..200) {
        let req = Request::Query(QueryRequest {
            params: QueryParams::default(),
            dim: 8,
            queries: vec![1.0; 8],
        });
        let bytes = frame_bytes(&req.to_frame());
        prop_assume!(cut < bytes.len());
        match read_frame(&mut &bytes[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "only empty input is clean EOF"),
            Ok(Some(_)) => return Err(TestCaseError::fail("truncated frame parsed")),
            Err(_) => {}
        }
    }

    /// Every single-byte corruption is caught: by the CRC if it hits the
    /// payload, by header validation or the CRC comparison otherwise.
    /// (A flip inside `payload_len` can also surface as truncation.)
    #[test]
    fn single_bit_flips_never_parse_silently(pos in 0usize..200, bit in 0u8..8) {
        let req = Request::Query(QueryRequest {
            params: QueryParams::default(),
            dim: 8,
            queries: vec![2.5; 8],
        });
        let original = req.to_frame();
        let mut bytes = frame_bytes(&original);
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= 1 << bit;
        match read_frame(&mut &bytes[..]) {
            Err(_) => {}
            Ok(None) => return Err(TestCaseError::fail("corrupt frame read as EOF")),
            Ok(Some(frame)) => {
                // The only undetectable single-bit flip is inside the
                // *kind* byte mapping to another valid kind — the CRC
                // covers only the payload. Assert payload integrity.
                prop_assert_eq!(frame.payload, original.payload);
            }
        }
    }
}

#[test]
fn health_stats_error_overloaded_roundtrip() {
    let cases = [
        Response::Health(HealthInfo {
            vectors: 123_456,
            partitions: 32,
            dim: 128,
        }),
        Response::Stats("{\"counters\":{}}".to_string()),
        Response::Error {
            code: ErrorCode::BadRequest,
            message: "dim 3 does not match index dim 16".to_string(),
        },
        Response::Error {
            code: ErrorCode::ShuttingDown,
            message: String::new(),
        },
        Response::Overloaded {
            capacity: 256,
            depth: 256,
        },
    ];
    for resp in cases {
        assert_eq!(roundtrip_response(&resp), resp);
    }
    let requests = [Request::Health, Request::Stats];
    for req in requests {
        assert_eq!(roundtrip_request(&req), req);
    }
}

#[test]
fn zero_topk_and_zero_dim_are_rejected() {
    let mut frame = Request::Query(QueryRequest {
        params: QueryParams::default(),
        dim: 4,
        queries: vec![0.0; 4],
    })
    .to_frame();
    // topk is the first payload field.
    frame.payload[0..4].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Request::from_frame(&frame),
        Err(ProtoError::Malformed(_))
    ));

    let mut frame2 = Request::Query(QueryRequest {
        params: QueryParams::default(),
        dim: 4,
        queries: vec![0.0; 4],
    })
    .to_frame();
    // dim sits right after params: topk(4) + nprobe(4) + keep(8) +
    // deadline(8) + backend len(1) + empty name.
    frame2.payload[25..29].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Request::from_frame(&frame2),
        Err(ProtoError::Malformed(_))
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut frame = Request::Health.to_frame();
    frame.payload.extend_from_slice(b"junk");
    assert!(matches!(
        Request::from_frame(&frame),
        Err(ProtoError::TrailingBytes(4))
    ));
}

#[test]
fn mismatched_query_byte_count_is_rejected() {
    let mut frame = Request::Query(QueryRequest {
        params: QueryParams::default(),
        dim: 4,
        queries: vec![0.0; 4],
    })
    .to_frame();
    frame.payload.truncate(frame.payload.len() - 2);
    assert!(matches!(
        Request::from_frame(&frame),
        Err(ProtoError::Malformed(_))
    ));
}

#[test]
fn request_decoder_rejects_response_kinds_and_vice_versa() {
    let resp_frame = Response::Overloaded {
        capacity: 1,
        depth: 1,
    }
    .to_frame();
    assert!(matches!(
        Request::from_frame(&resp_frame),
        Err(ProtoError::Kind(_))
    ));
    let req_frame = Request::Health.to_frame();
    assert!(matches!(
        Response::from_frame(&req_frame),
        Err(ProtoError::Kind(_))
    ));
}

#[test]
fn unknown_kind_and_bad_version_are_rejected() {
    let mut bytes = frame_bytes(&Request::Health.to_frame());
    bytes[5] = 0x7F; // unknown kind
    assert!(matches!(
        read_frame(&mut &bytes[..]),
        Err(ProtoError::Kind(0x7F))
    ));
    let mut bytes2 = frame_bytes(&Request::Health.to_frame());
    bytes2[4] = 9; // future version
    assert!(matches!(
        read_frame(&mut &bytes2[..]),
        Err(ProtoError::Version(9))
    ));
    let mut bytes3 = frame_bytes(&Request::Health.to_frame());
    bytes3[6] = 1; // reserved must be zero
    assert!(matches!(
        read_frame(&mut &bytes3[..]),
        Err(ProtoError::Reserved(1))
    ));
}

#[test]
fn oversized_batch_count_is_rejected_before_allocation() {
    let mut frame = Request::Batch(QueryRequest {
        params: QueryParams::default(),
        dim: 2,
        queries: vec![0.0; 4],
    })
    .to_frame();
    // count field: params(25) + dim(4) = offset 29.
    frame.payload[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Request::from_frame(&frame),
        Err(ProtoError::Malformed(_))
    ));
}

#[test]
fn two_frames_on_one_stream_read_in_order() {
    let a = Request::Health.to_frame();
    let b = Request::Stats.to_frame();
    let mut stream = frame_bytes(&a);
    stream.extend_from_slice(&frame_bytes(&b));
    let mut cursor = &stream[..];
    let first = read_frame(&mut cursor).unwrap().unwrap();
    let second = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(first.kind, FrameKind::Health);
    assert_eq!(second.kind, FrameKind::Stats);
    assert!(read_frame(&mut cursor).unwrap().is_none());
    assert!(stream.len() > 2 * HEADER_LEN);
}

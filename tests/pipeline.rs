//! Cross-crate integration tests: the full paper pipeline from raw vectors
//! to Fast Scan results, spanning `pqfs-data`, `pqfs-kmeans`, `pqfs-core`,
//! `pqfs-scan` and `pqfs-ivf`.

use pq_fast_scan::prelude::*;

const DIM: usize = 32;

fn dataset(seed: u64) -> SyntheticDataset {
    SyntheticDataset::new(
        &SyntheticConfig::sift_like()
            .with_dim(DIM)
            .with_clusters(64)
            .with_seed(seed),
    )
}

#[test]
fn full_pipeline_fastscan_equals_pqscan_and_finds_true_neighbors() {
    let mut gen = dataset(11);
    let train = gen.sample(3_000);
    let base = gen.sample(20_000);
    let queries = gen.sample(15);

    let mut pq = ProductQuantizer::train(&train, &PqConfig::pq8x8(DIM), 3).unwrap();
    pq.optimize_assignment(16, 3).unwrap();
    let codes = pq.encode_batch(&base).unwrap();
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();

    let naive = Backend::Naive.scanner(&ScanOpts::default());
    let mut recall_hits = 0usize;
    let mut pruned_total = 0.0;
    for q in queries.chunks_exact(DIM) {
        let tables = DistanceTables::compute(&pq, q).unwrap();
        let fast = index
            .scan(&tables, &ScanParams::new(100).with_keep(0.01))
            .unwrap();
        let slow = naive.scan(&tables, &codes, 100).unwrap();
        assert_eq!(fast.ids(), slow.ids());
        assert_eq!(fast.distances(), slow.distances());
        pruned_total += fast.stats.pruned_fraction();

        // ANN quality: the true nearest neighbor should almost always be in
        // the approximate top-100 (PQ 8x8 over clustered 32-d data).
        let truth = exact_knn(&base, DIM, q, 1)[0].id as u64;
        if fast.ids().contains(&truth) {
            recall_hits += 1;
        }
    }
    assert!(recall_hits >= 12, "recall@100 too low: {recall_hits}/15");
    let avg_pruned = pruned_total / 15.0;
    assert!(
        avg_pruned > 0.5,
        "average pruning power {avg_pruned:.3} too low"
    );
}

/// The paper's §5 exactness guarantee as one table-driven test: every
/// backend in the registry returns the identical top-k set on a seeded
/// synthetic dataset.
#[test]
fn every_backend_returns_the_identical_topk_set() {
    let mut gen = dataset(61);
    let train = gen.sample(3_000);
    let base = gen.sample(20_000);
    let queries = gen.sample(10);

    let mut pq = ProductQuantizer::train(&train, &PqConfig::pq8x8(DIM), 9).unwrap();
    pq.optimize_assignment(16, 9).unwrap();
    let codes = pq.encode_batch(&base).unwrap();

    let opts = ScanOpts::default().with_keep(0.01);
    for (qi, q) in queries.chunks_exact(DIM).enumerate() {
        let tables = DistanceTables::compute(&pq, q).unwrap();
        let reference = Backend::Naive
            .scanner(&opts)
            .scan(&tables, &codes, 100)
            .unwrap();
        for backend in Backend::ALL {
            let scanner = backend.scanner(&opts);
            assert_eq!(scanner.name(), backend.name());
            let result = scanner.scan(&tables, &codes, 100).unwrap();
            assert_eq!(
                result.ids(),
                reference.ids(),
                "backend '{backend}' diverged from naive on query {qi}"
            );
        }
    }
}

#[test]
fn ivfadc_backends_agree_and_route_queries() {
    let mut gen = dataset(21);
    let train = gen.sample(3_000);
    let base = gen.sample(8_000);
    let queries = gen.sample(10);

    // Prepare the full registry, so the agreement check covers all six
    // backends through the IVFADC pipeline too.
    let config = IvfadcConfig::new(DIM, 8)
        .with_seed(17)
        .with_backends(SearchBackend::ALL.to_vec());
    let index = IvfadcIndex::build(&train, &base, &config).unwrap();
    assert_eq!(index.len(), 8_000);
    assert_eq!(index.partition_sizes().len(), 8);

    for q in queries.chunks_exact(DIM) {
        let ids = |o: &pq_fast_scan::ivf::SearchOutcome| {
            o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        };
        let naive = index.search(q, 50, SearchBackend::Naive, 0.0).unwrap();
        for backend in SearchBackend::ALL {
            let other = index.search(q, 50, backend, 0.01).unwrap();
            assert_eq!(ids(&naive), ids(&other), "backend '{backend}'");
            assert_eq!(other.partition, index.select_partition(q));
        }
    }
}

#[test]
fn grouped_storage_saves_memory_at_scale() {
    // Large enough for c >= 2 grouping: the §4.2 saving materializes.
    let mut gen = dataset(31);
    let train = gen.sample(2_000);
    let base = gen.sample(40_000); // auto c = 2 (>= 12_800)
    let pq = ProductQuantizer::train(&train, &PqConfig::pq8x8(DIM), 4).unwrap();
    let codes = pq.encode_batch(&base).unwrap();
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
    assert!(index.group_components() >= 2);
    let saving = 1.0 - index.code_memory_bytes() as f64 / codes.memory_bytes() as f64;
    // c = 2 stores 7 bytes/vector (12.5 % saving) minus block padding.
    assert!(saving > 0.05, "saving {saving:.3} too small");
}

#[test]
fn vectors_survive_a_fvecs_roundtrip_through_the_pipeline() {
    let mut gen = dataset(41);
    let base = gen.sample(500);
    let mut path = std::env::temp_dir();
    path.push(format!("pqfs-pipeline-{}.fvecs", std::process::id()));
    pq_fast_scan::data::write_fvecs(&path, &base, DIM).unwrap();
    let reloaded = pq_fast_scan::data::read_fvecs(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.dim, DIM);
    assert_eq!(reloaded.data, base);
}

#[test]
fn optimized_assignment_tightens_minimum_tables() {
    // The §4.3 claim, measured: with the optimized assignment the pruning
    // power of Fast Scan should not regress (and typically improves)
    // compared to arbitrary centroid indexes.
    let mut gen = dataset(51);
    let train = gen.sample(4_000);
    let base = gen.sample(15_000);
    let queries = gen.sample(20);

    let plain = ProductQuantizer::train(&train, &PqConfig::pq8x8(DIM), 6).unwrap();
    let mut optimized = plain.clone();
    optimized.optimize_assignment(16, 6).unwrap();

    let pruning = |pq: &ProductQuantizer| -> f64 {
        let codes = pq.encode_batch(&base).unwrap();
        let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
        let mut total = 0.0;
        for q in queries.chunks_exact(DIM) {
            let tables = DistanceTables::compute(pq, q).unwrap();
            let r = index
                .scan(&tables, &ScanParams::new(100).with_keep(0.01))
                .unwrap();
            total += r.stats.pruned_fraction();
        }
        total / 20.0
    };

    let p_plain = pruning(&plain);
    let p_opt = pruning(&optimized);
    // Allow a small tolerance: the property is statistical, not pointwise.
    assert!(
        p_opt >= p_plain - 0.02,
        "optimized assignment hurt pruning: {p_opt:.3} vs {p_plain:.3}"
    );
}

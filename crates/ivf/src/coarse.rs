//! The coarse quantizer: a plain vector quantizer whose Voronoi cells form
//! the database partitions (paper §2.2).
//!
//! IVFADC directs each query to the partition of the coarse centroid the
//! query falls closest to (Algorithm 1, step 1); the PQ then encodes the
//! *residual* `x − c(x)` rather than `x` itself, following \[14\].

use crate::IvfError;
use pqfs_kmeans::{train, KMeans, KMeansConfig};

/// A trained coarse quantizer.
#[derive(Debug, Clone)]
pub struct CoarseQuantizer {
    model: KMeans,
}

impl CoarseQuantizer {
    /// Trains a coarse quantizer with `partitions` centroids on row-major
    /// training vectors.
    ///
    /// # Errors
    ///
    /// [`IvfError::Coarse`] on k-means failures (too few vectors, NaNs, …).
    pub fn train(data: &[f32], dim: usize, partitions: usize, seed: u64) -> Result<Self, IvfError> {
        let cfg = KMeansConfig::new(partitions)
            .with_seed(seed)
            .with_max_iters(30);
        Ok(CoarseQuantizer {
            model: train(data, dim, &cfg)?,
        })
    }

    /// Rebuilds a coarse quantizer from a stored centroid matrix
    /// (row-major `partitions × dim`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or not a multiple of `dim`.
    pub fn from_centroids(centroids: Vec<f32>, dim: usize) -> Self {
        CoarseQuantizer {
            model: KMeans::from_centroids(centroids, dim),
        }
    }

    /// Number of partitions (Voronoi cells).
    pub fn partitions(&self) -> usize {
        self.model.k()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The centroid of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= partitions()`.
    pub fn centroid(&self, p: usize) -> &[f32] {
        self.model.centroid(p)
    }

    /// Index of the partition whose centroid is nearest to `v` (Algorithm 1
    /// step 1: `index_get_partition`).
    pub fn assign(&self, v: &[f32]) -> usize {
        self.model.assign(v).0
    }

    /// The `w` partitions nearest to `v`, ascending by centroid distance
    /// (multi-probe selection, as in the original IVFADC \[14\]).
    pub fn assign_multi(&self, v: &[f32], w: usize) -> Vec<usize> {
        let k = self.partitions();
        let mut scored: Vec<(f32, usize)> = (0..k)
            .map(|p| {
                let c = self.centroid(p);
                let d: f32 = v.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, p)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(w.max(1).min(k));
        scored.into_iter().map(|(_, p)| p).collect()
    }

    /// Writes the residual `v − centroid(p)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the quantizer dimensionality.
    pub fn residual_into(&self, v: &[f32], p: usize, out: &mut [f32]) {
        let c = self.centroid(p);
        assert_eq!(v.len(), c.len());
        assert_eq!(out.len(), c.len());
        for ((slot, &x), &mu) in out.iter_mut().zip(v).zip(c) {
            *slot = x - mu;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs() -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(4);
        let centers = [[0.0f32, 0.0], [100.0, 0.0], [0.0, 100.0]];
        let mut data = Vec::new();
        for c in &centers {
            for _ in 0..40 {
                data.push(c[0] + rng.gen_range(-2.0..2.0));
                data.push(c[1] + rng.gen_range(-2.0..2.0));
            }
        }
        data
    }

    #[test]
    fn assigns_points_to_their_blob() {
        let data = blobs();
        let cq = CoarseQuantizer::train(&data, 2, 3, 1).unwrap();
        assert_eq!(cq.partitions(), 3);
        let a = cq.assign(&[1.0, 1.0]);
        let b = cq.assign(&[99.0, 1.0]);
        let c = cq.assign(&[0.5, 98.0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn residual_is_vector_minus_centroid() {
        let data = blobs();
        let cq = CoarseQuantizer::train(&data, 2, 3, 1).unwrap();
        let v = [5.0f32, -3.0];
        let p = cq.assign(&v);
        let mut residual = [0f32; 2];
        cq.residual_into(&v, p, &mut residual);
        let c = cq.centroid(p);
        assert_eq!(residual[0], v[0] - c[0]);
        assert_eq!(residual[1], v[1] - c[1]);
    }

    #[test]
    fn training_errors_propagate() {
        assert!(matches!(
            CoarseQuantizer::train(&[], 2, 2, 0),
            Err(IvfError::Coarse(_))
        ));
    }
}

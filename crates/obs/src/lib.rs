//! `pqfs_obs` — runtime telemetry for the PQ Fast Scan stack.
//!
//! The paper's argument is built on measuring where query time goes
//! (PAPER.md; André et al., PVLDB 2015, Figs. 3/15): per-stage timings,
//! cache-level effects, pruning power. This crate is the *online*
//! counterpart to the offline `pqfs_metrics` analysis — the substrate every
//! runtime component reports through:
//!
//! * **Metrics registry** ([`registry`]): lock-free sharded [`LazyCounter`]s,
//!   [`LazyGauge`]s, and log-bucketed [`LazyHistogram`]s registered lazily
//!   into a process-wide registry. Recording is a few relaxed atomics;
//!   with telemetry disabled at runtime it is one atomic load, and with
//!   `--no-default-features` it compiles to nothing (the same opt-out
//!   discipline as `pqfs_fault`).
//! * **Exposition** ([`expose`]): Prometheus text format and a JSON
//!   snapshot rendered from one consistent walk of the registry, plus a
//!   dependency-free line-grammar validator used in tests and CI.
//! * **Tracing** ([`trace`]): a reusable per-query [`QueryTrace`] capturing
//!   the `coarse_quantize → tables → probe[i] scan → merge` waterfall with
//!   per-probe backend, scanned/pruned counts, and outcome.
//! * **JSON** ([`jsonv`]): a minimal parser so snapshots can be validated
//!   against a schema without external dependencies.
//!
//! # Instrumentation-site idiom
//!
//! ```
//! use pqfs_obs::LazyCounter;
//!
//! static QUERIES: LazyCounter =
//!     LazyCounter::new("pqfs_ivf_queries_total", "IVF queries served");
//!
//! fn serve() {
//!     QUERIES.inc(); // one relaxed atomic add (or a no-op when disabled)
//! }
//! # serve();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod histogram;
pub mod jsonv;
pub mod registry;
pub mod trace;

pub use expose::{global_json_snapshot, global_prometheus_text, validate_prometheus};
pub use histogram::{bucket_index, bucket_le, HistogramSnapshot, BUCKET_COUNT};
pub use registry::{
    counter_value, enabled, set_enabled, CounterFamily, LazyCounter, LazyGauge, LazyHistogram,
};
pub use trace::{fmt_ns, ProbeOutcome, ProbeTrace, QueryTrace};

#[cfg(feature = "telemetry")]
pub use expose::{json_snapshot, prometheus_text};
#[cfg(feature = "telemetry")]
pub use registry::{global, Counter, Gauge, Registry};

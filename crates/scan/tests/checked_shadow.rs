//! Differential shadow-execution coverage: with `checked-kernels` enabled
//! and the sampling rate forced to 1, every SIMD kernel invocation re-runs
//! its portable oracle and asserts bit-identical results. Running every
//! [`Backend`] through a scan therefore *is* the assertion — any divergence
//! panics inside the kernel dispatcher.

#![cfg(feature = "checked-kernels")]

use pqfs_core::{DistanceTables, RowMajorCodes};
use pqfs_scan::{Backend, ScanOpts};

fn tables(m: usize, ksub: usize) -> DistanceTables {
    let raw: Vec<f32> = (0..m * ksub)
        .map(|x| ((x * 2654435761usize) % 10_007) as f32 / 97.0)
        .collect();
    DistanceTables::from_raw(raw, m, ksub)
}

fn codes(n: usize, m: usize) -> RowMajorCodes {
    RowMajorCodes::new((0..n * m).map(|x| (x * 131 % 256) as u8).collect(), m)
}

/// Every backend scans with shadow-checking on every kernel invocation;
/// all backends must also agree on the result set.
#[test]
fn every_backend_survives_full_rate_shadow_checking() {
    pqfs_scan::checked::force_rate(1);
    let tables = tables(8, 256);
    let codes = codes(4096, 8);
    let topk = 17;

    let mut expected: Option<Vec<(u64, f32)>> = None;
    for backend in Backend::ALL {
        let result = backend
            .scanner(&ScanOpts::default())
            .scan(&tables, &codes, topk)
            .unwrap_or_else(|e| panic!("{backend:?} scan failed: {e}"));
        let pairs: Vec<(u64, f32)> = result.neighbors.iter().map(|n| (n.id, n.dist)).collect();
        match &expected {
            None => expected = Some(pairs),
            Some(exp) => assert_eq!(&pairs, exp, "{backend:?} diverged from first backend"),
        }
    }
}

/// Ragged sizes (not multiples of the SIMD block) still pass shadow checks.
#[test]
fn ragged_lengths_survive_shadow_checking() {
    pqfs_scan::checked::force_rate(1);
    let tables = tables(8, 256);
    for n in [1usize, 15, 16, 17, 63, 64, 65, 1000] {
        let codes = codes(n, 8);
        for backend in Backend::ALL {
            backend
                .scanner(&ScanOpts::default())
                .scan(&tables, &codes, 5)
                .unwrap_or_else(|e| panic!("{backend:?} n={n} scan failed: {e}"));
        }
    }
}

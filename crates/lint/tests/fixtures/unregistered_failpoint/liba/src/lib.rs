//! Fixture: failpoint site missing from the registry.
#![forbid(unsafe_code)]

pub fn io_path() {
    let _registered = check("good.site");
    let _rogue = check("bad.site");
}

//! Parallel-scaling harness: batch-query throughput versus pool size,
//! emitted as JSON so future PRs can track the parallel-efficiency
//! trajectory over time.
//!
//! Builds a synthetic IVFADC index (default 100 000 vectors — override with
//! `PQFS_N`), then answers the same query batch through
//! `IvfadcIndex::search_batch_on` on explicit thread pools of 1, 2, 4 and 8
//! threads, reporting queries/second and the speedup over the single-thread
//! run. Results are bit-identical across pool sizes (asserted here on the
//! neighbor ids of every query), so the sweep measures pure executor
//! overhead and scaling, never result drift.
//!
//! Environment: `PQFS_N` (base vectors), `PQFS_QUERIES` (batch size),
//! `PQFS_REPS` (timed repetitions; the median is reported).

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, synthetic_index};
use pqfs_ivf::SearchBackend;
use pqfs_metrics::{fmt_count, measure_ms, Summary};
use pqfs_pool::ThreadPool;
use pqfs_scan::ScanStats;

fn main() {
    let n = env_usize("PQFS_N", 100_000);
    let queries_n = env_usize("PQFS_QUERIES", 256);
    let reps = env_usize("PQFS_REPS", 5);
    let partitions = 8;
    let backend = SearchBackend::FastScan;

    header(
        "scaling",
        "§3.1 (inter-query parallelism)",
        &format!("n={n} queries={queries_n} partitions={partitions} backend={backend}"),
    );

    let (index, queries) = synthetic_index(n, partitions, queries_n, 7);
    println!(
        "index ready: {} vectors, host reports {} cores\n",
        fmt_count(index.len() as u64),
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );

    let reference: Option<Vec<Vec<u64>>> = None;
    let mut reference = reference;
    let mut rows = Vec::new();
    let mut baseline_qps = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let outcomes = index
            .search_batch_on(&queries, 100, backend, 0.005, &pool)
            .expect("search_batch");
        // Scaling must never buy result drift: every pool size returns the
        // exact ids the 1-thread run returned.
        let ids: Vec<Vec<u64>> = outcomes
            .iter()
            .map(|o| o.neighbors.iter().map(|n| n.id).collect())
            .collect();
        match &reference {
            None => reference = Some(ids),
            Some(expect) => assert_eq!(expect, &ids, "results drifted at {threads} threads"),
        }
        let mut stats = ScanStats::default();
        for o in &outcomes {
            stats.merge(&o.stats);
        }
        let ms = Summary::from_values(&measure_ms(reps, || {
            index
                .search_batch_on(&queries, 100, backend, 0.005, &pool)
                .expect("search_batch")
        }))
        .median();
        let qps = queries_n as f64 / (ms / 1e3);
        if threads == 1 {
            baseline_qps = qps;
        }
        let speedup = qps / baseline_qps;
        println!(
            "threads {threads}: {ms:>8.1} ms | {qps:>8.0} queries/s | speedup {speedup:.2}x | pruned {:.1}%",
            100.0 * stats.pruned_fraction()
        );
        rows.push(format!(
            "{{\"threads\":{threads},\"qps\":{qps:.1},\"speedup\":{speedup:.3}}}"
        ));
    }

    println!(
        "\n{{\"experiment\":\"scaling\",\"vectors\":{n},\"queries\":{queries_n},\"backend\":\"{backend}\",\"results\":[{}]}}",
        rows.join(",")
    );
}

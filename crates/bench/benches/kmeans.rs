//! Criterion benchmark of the clustering substrate: sub-quantizer training
//! (Lloyd) and the same-size k-means used by the optimized assignment.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use pqfs_kmeans::{train, train_same_size, KMeansConfig, SameSizeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    // A sub-quantizer training set: 4096 vectors of d* = 16.
    let train_set: Vec<f32> = (0..4096 * 16)
        .map(|_| rng.gen_range(0.0f32..255.0))
        .collect();
    // Centroid relabeling input: 256 centroids of d* = 16.
    let centroids: Vec<f32> = (0..256 * 16)
        .map(|_| rng.gen_range(0.0f32..255.0))
        .collect();

    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("lloyd_k256_n4096_d16", |b| {
        b.iter(|| train(&train_set, 16, &KMeansConfig::new(256).with_seed(1)).unwrap())
    });
    group.bench_function("same_size_16x16_d16", |b| {
        b.iter(|| train_same_size(&centroids, 16, &SameSizeConfig::new(16).with_seed(1)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);

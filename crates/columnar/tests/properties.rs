//! Property-based tests of the §6 compressed-column machinery.

use pqfs_columnar::{approximate_mean, topk_max_fast, CompressedColumn, Dictionary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast top-k with maximum-table pruning returns exactly the same
    /// (row, value) list as the exhaustive scan, for arbitrary data,
    /// dictionary sizes and k.
    #[test]
    fn fast_topk_is_exact(
        data in prop::collection::vec(-1000.0f32..1000.0, 1..500),
        dict_size in prop::sample::select(vec![1usize, 3, 16, 17, 100, 256]),
        k in 0usize..40,
    ) {
        let column = CompressedColumn::compress(&data, dict_size);
        let fast = topk_max_fast(&column, k);
        prop_assert_eq!(fast.items, column.topk_max_exact(k));
        if k > 0 {
            prop_assert_eq!(
                fast.pruned + fast.verified,
                // Remainder rows are scanned individually; both paths count.
                column.len() as u64
            );
        }
    }

    /// The approximate mean always lands within its self-reported error
    /// bound.
    #[test]
    fn approximate_mean_respects_bound(
        data in prop::collection::vec(-500.0f32..500.0, 1..2000),
        dict_size in prop::sample::select(vec![2usize, 16, 64, 256]),
    ) {
        let column = CompressedColumn::compress(&data, dict_size);
        let approx = approximate_mean(&column);
        let exact = column.exact_mean();
        prop_assert!(
            (approx.value - exact).abs() <= approx.error_bound + 1e-3,
            "|{} - {exact}| > {}", approx.value, approx.error_bound
        );
    }

    /// Dictionary encoding picks the nearest entry (no closer entry
    /// exists), and decoding is its inverse on dictionary values.
    #[test]
    fn encode_is_nearest_entry(
        values in prop::collection::vec(-100.0f32..100.0, 1..50),
        probe in -150.0f32..150.0,
    ) {
        let dict = Dictionary::new(values);
        let code = dict.encode(probe);
        let chosen = dict.decode(code);
        for i in 0..dict.len() {
            prop_assert!(
                (chosen - probe).abs() <= (dict.decode(i as u8) - probe).abs() + 1e-4
            );
        }
    }

    /// Portion maxima/minima/means are consistent bounds of their portions.
    #[test]
    fn portion_summaries_are_bounds(
        values in prop::collection::vec(-100.0f32..100.0, 1..256),
    ) {
        let dict = Dictionary::new(values);
        let maxima = dict.portion_maxima();
        let minima = dict.portion_minima();
        let means = dict.portion_means();
        for (i, &v) in dict.values().iter().enumerate() {
            let p = i / 16;
            prop_assert!(minima[p] <= v && v <= maxima[p]);
            prop_assert!(minima[p] <= means[p] && means[p] <= maxima[p] + 1e-4);
        }
    }

    /// Compression reconstruction error is bounded by the largest gap
    /// between adjacent dictionary entries (half of it, plus clamp slack
    /// for out-of-range values — quantile dictionaries include min/max so
    /// there is no out-of-range).
    #[test]
    fn reconstruction_error_bounded_by_dictionary_gaps(
        data in prop::collection::vec(0.0f32..1000.0, 2..300),
    ) {
        let column = CompressedColumn::compress(&data, 256);
        let dict = column.dict();
        let max_gap = dict
            .values()
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f32, f32::max);
        prop_assert!(column.reconstruction_error(&data) <= max_gap / 2.0 + 1e-3);
    }
}

//! The naive PQ Scan (paper Algorithm 1).
//!
//! For every database code: `m` loads of centroid indexes (*mem1*), `m`
//! distance-table lookups (*mem2*), `m` scalar additions, one comparison.
//! This is the reference implementation — every other scan in the crate is
//! tested for result-set equality against it.

use crate::result::{ScanResult, ScanStats};
use pqfs_core::{DistanceTables, RowMajorCodes, TopK};

/// Scans `codes` and returns the `topk` nearest neighbors by ADC distance.
///
/// Vector ids are positions in `codes` (0-based). The result is the unique
/// set of `topk` smallest `(distance, id)` pairs.
///
/// # Panics
///
/// Panics if `topk == 0` or if `tables.m() != codes.m()`.
pub fn scan_naive(tables: &DistanceTables, codes: &RowMajorCodes, topk: usize) -> ScanResult {
    assert_eq!(tables.m(), codes.m(), "tables and codes must share m");
    let mut heap = TopK::new(topk);
    for (i, code) in codes.iter().enumerate() {
        let d = tables.distance(code);
        heap.push(d, i as u64);
    }
    ScanResult {
        neighbors: heap.into_sorted(),
        stats: ScanStats {
            scanned: codes.len() as u64,
            ..ScanStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built 2×4 tables: distances are index-dependent so ordering is
    /// easy to verify by hand.
    fn tiny_tables() -> DistanceTables {
        DistanceTables::from_raw(vec![0.0, 1.0, 2.0, 3.0, 0.0, 10.0, 20.0, 30.0], 2, 4)
    }

    #[test]
    fn finds_exact_nearest() {
        let tables = tiny_tables();
        // Codes: (0,0) => 0, (3,3) => 33, (1,1) => 11
        let codes = RowMajorCodes::new(vec![0, 0, 3, 3, 1, 1], 2);
        let result = scan_naive(&tables, &codes, 1);
        assert_eq!(result.ids(), vec![0]);
        assert_eq!(result.distances(), vec![0.0]);
        assert_eq!(result.stats.scanned, 3);
        assert_eq!(result.stats.pruned, 0);
    }

    #[test]
    fn topk_orders_by_distance_then_id() {
        let tables = tiny_tables();
        // Two vectors with identical distance 11, then one with 33.
        let codes = RowMajorCodes::new(vec![1, 1, 1, 1, 3, 3], 2);
        let result = scan_naive(&tables, &codes, 2);
        assert_eq!(result.ids(), vec![0, 1], "tie must resolve by id");
    }

    #[test]
    fn topk_larger_than_partition_returns_everything() {
        let tables = tiny_tables();
        let codes = RowMajorCodes::new(vec![0, 0, 1, 0], 2);
        let result = scan_naive(&tables, &codes, 10);
        assert_eq!(result.neighbors.len(), 2);
    }

    #[test]
    fn empty_partition_returns_empty() {
        let tables = tiny_tables();
        let codes = RowMajorCodes::new(vec![], 2);
        let result = scan_naive(&tables, &codes, 5);
        assert!(result.neighbors.is_empty());
        assert_eq!(result.stats.scanned, 0);
    }
}

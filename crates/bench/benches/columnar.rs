//! Criterion benchmark of the §6 compressed-column kernels: exact vs
//! small-table top-k and exact vs approximate mean.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pqfs_columnar::{approximate_mean, topk_max_fast, CompressedColumn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1_000_000;

fn bench_columnar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let data: Vec<f32> = (0..N).map(|_| rng.gen_range(0.0f32..1000.0)).collect();
    let column = CompressedColumn::compress(&data, 256);

    let mut group = c.benchmark_group("columnar");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("topk10_exact", |b| b.iter(|| column.topk_max_exact(10)));
    group.bench_function("topk10_small_tables", |b| {
        b.iter(|| topk_max_fast(&column, 10))
    });
    group.bench_function("mean_exact", |b| b.iter(|| column.exact_mean()));
    group.bench_function("mean_approximate", |b| b.iter(|| approximate_mean(&column)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_columnar
}
criterion_main!(benches);

//! Result and statistics types shared by every scan implementation.

use crate::scanner::Backend;
use pqfs_core::Neighbor;

/// Statistics of one scan execution.
///
/// The counters are algorithm facts, not timings: they feed the paper's
/// pruning-power plots (Figures 16–19) and the analytic performance-counter
/// model (Figures 3 and 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Vectors whose distance (or lower bound) was examined.
    pub scanned: u64,
    /// Vectors discarded by the lower-bound test without an exact
    /// `pqdistance` computation (always 0 for the PQ Scan baselines).
    pub pruned: u64,
    /// Vectors whose exact `pqdistance` was computed after surviving the
    /// lower-bound test (Fast Scan only).
    pub verified: u64,
    /// Vectors scanned by the scalar warm-up pass that seeds `qmax`
    /// (Fast Scan only; these are included in `scanned`).
    pub warmup: u64,
}

impl ScanStats {
    /// Accumulates another scan's counters into this one (multi-probe
    /// search and the bench harnesses sum stats over many scans).
    pub fn merge(&mut self, other: &ScanStats) {
        self.scanned += other.scanned;
        self.pruned += other.pruned;
        self.verified += other.verified;
        self.warmup += other.warmup;
    }

    /// Fraction of candidate vectors whose exact distance computation was
    /// pruned — the paper's "Pruned [%]" axis. The warm-up vectors are
    /// excluded from the denominator, matching §5.4's definition of the
    /// pruning power of the fast path.
    pub fn pruned_fraction(&self) -> f64 {
        let fast = self.scanned.saturating_sub(self.warmup);
        if fast == 0 {
            0.0
        } else {
            self.pruned as f64 / fast as f64
        }
    }
}

/// Scan statistics broken down by backend.
///
/// [`ScanStats::merge`] alone loses attribution when a multi-probe search
/// mixes backends (e.g. Fast Scan on large partitions, a scalar fallback on
/// small ones): the summed counters can no longer say *which* backend
/// scanned what. This keeps one [`ScanStats`] per [`Backend`] alongside the
/// flat sum, so traces and metrics can attribute per-backend work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerBackendStats {
    stats: [ScanStats; Backend::ALL.len()],
}

impl PerBackendStats {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(backend: Backend) -> usize {
        Backend::ALL
            .iter()
            .position(|&b| b == backend)
            .unwrap_or_else(|| unreachable!("Backend::ALL covers every variant"))
    }

    /// Accumulates one scan's counters under its backend.
    pub fn record(&mut self, backend: Backend, stats: &ScanStats) {
        self.stats[Self::slot(backend)].merge(stats);
    }

    /// The accumulated counters for `backend`.
    pub fn get(&self, backend: Backend) -> &ScanStats {
        &self.stats[Self::slot(backend)]
    }

    /// Accumulates another breakdown into this one, backend by backend.
    pub fn merge(&mut self, other: &PerBackendStats) {
        for (mine, theirs) in self.stats.iter_mut().zip(&other.stats) {
            mine.merge(theirs);
        }
    }

    /// The backends that recorded any scanned vectors, with their counters.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Backend, &ScanStats)> {
        Backend::ALL
            .iter()
            .zip(&self.stats)
            .filter(|(_, s)| s.scanned != 0)
            .map(|(&b, s)| (b, s))
    }

    /// The flat sum over all backends (what `ScanStats::merge` would have
    /// produced).
    pub fn total(&self) -> ScanStats {
        let mut total = ScanStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }
}

/// Neighbors plus execution statistics.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// The `topk` nearest neighbors, ascending by `(distance, id)`. Ids are
    /// positions within the scanned partition.
    pub neighbors: Vec<Neighbor>,
    /// Execution statistics.
    pub stats: ScanStats,
}

impl ScanResult {
    /// Ids of the neighbors in result order (convenience for tests).
    pub fn ids(&self) -> Vec<u64> {
        self.neighbors.iter().map(|n| n.id).collect()
    }

    /// Distances of the neighbors in result order.
    pub fn distances(&self) -> Vec<f32> {
        self.neighbors.iter().map(|n| n.dist).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = ScanStats {
            scanned: 10,
            pruned: 4,
            verified: 5,
            warmup: 1,
        };
        a.merge(&ScanStats {
            scanned: 100,
            pruned: 40,
            verified: 50,
            warmup: 10,
        });
        assert_eq!(
            a,
            ScanStats {
                scanned: 110,
                pruned: 44,
                verified: 55,
                warmup: 11,
            }
        );
        a.merge(&ScanStats::default());
        assert_eq!(a.scanned, 110);
    }

    #[test]
    fn pruned_fraction_excludes_warmup() {
        let stats = ScanStats {
            scanned: 1100,
            pruned: 900,
            verified: 100,
            warmup: 100,
        };
        assert!((stats.pruned_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pruned_fraction_of_empty_scan_is_zero() {
        assert_eq!(ScanStats::default().pruned_fraction(), 0.0);
        let all_warm = ScanStats {
            scanned: 10,
            pruned: 0,
            verified: 0,
            warmup: 10,
        };
        assert_eq!(all_warm.pruned_fraction(), 0.0);
    }

    #[test]
    fn per_backend_breakdown_keeps_attribution() {
        let mut by_backend = PerBackendStats::new();
        by_backend.record(
            Backend::FastScan,
            &ScanStats {
                scanned: 1000,
                pruned: 900,
                verified: 100,
                warmup: 10,
            },
        );
        by_backend.record(
            Backend::Naive,
            &ScanStats {
                scanned: 50,
                pruned: 0,
                verified: 0,
                warmup: 0,
            },
        );
        by_backend.record(
            Backend::Naive,
            &ScanStats {
                scanned: 25,
                pruned: 0,
                verified: 0,
                warmup: 0,
            },
        );
        assert_eq!(by_backend.get(Backend::FastScan).scanned, 1000);
        assert_eq!(by_backend.get(Backend::Naive).scanned, 75);
        assert_eq!(by_backend.get(Backend::Avx).scanned, 0);
        let nonzero: Vec<Backend> = by_backend.iter_nonzero().map(|(b, _)| b).collect();
        assert_eq!(nonzero, vec![Backend::Naive, Backend::FastScan]);
        // The flat sum still matches what ScanStats::merge would produce.
        assert_eq!(by_backend.total().scanned, 1075);
        assert_eq!(by_backend.total().pruned, 900);

        let mut merged = PerBackendStats::new();
        merged.merge(&by_backend);
        merged.merge(&by_backend);
        assert_eq!(merged.get(Backend::Naive).scanned, 150);
    }

    #[test]
    fn accessors_project_fields() {
        let r = ScanResult {
            neighbors: vec![Neighbor { dist: 1.0, id: 3 }, Neighbor { dist: 2.0, id: 1 }],
            stats: ScanStats::default(),
        };
        assert_eq!(r.ids(), vec![3, 1]);
        assert_eq!(r.distances(), vec![1.0, 2.0]);
    }
}

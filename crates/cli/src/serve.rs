//! `pqfs serve`: load an index once, serve it over TCP until SIGTERM.

use crate::args::Args;
use crate::{load_err, CliError, Outcome};
use pqfs_ivf::{IvfadcIndex, SearchBackend};
use pqfs_metrics::fmt_count;
use pqfs_server::server::{Server, ServerConfig};
use pqfs_server::signal;
use std::sync::Arc;
use std::time::Duration;

pub fn cmd_serve(args: &Args) -> Result<Outcome, CliError> {
    let index_path = args.require("index")?;
    let addr = args
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let backend: SearchBackend = args
        .get("backend")
        .map(String::as_str)
        .unwrap_or("fastscan")
        .parse()
        .map_err(CliError::Other)?;
    let max_batch = args.usize("max-batch", 32)?;
    let linger_us = args.u64("linger-us", 500)?;
    let queue_capacity = args.usize("queue", 256)?;
    if max_batch == 0 || queue_capacity == 0 {
        return Err(CliError::Other(
            "--max-batch and --queue must be positive".into(),
        ));
    }

    let index = IvfadcIndex::load_file(&index_path)
        .map_err(|e| load_err(&format!("loading {index_path}"), e))?;
    println!(
        "serving {} vectors, dim {}, {} partitions ({} threads, backend {backend})",
        fmt_count(index.len() as u64),
        index.dim(),
        index.num_partitions(),
        pqfs_pool::ThreadPool::global().threads()
    );

    let config = ServerConfig {
        addr,
        default_backend: backend,
        max_batch,
        max_linger: Duration::from_micros(linger_us),
        queue_capacity,
        ..ServerConfig::default()
    };
    let handle =
        Server::start(Arc::new(index), config).map_err(|e| CliError::Other(e.to_string()))?;

    // Install the SIGTERM/SIGINT latch *after* the server is up so a
    // signal racing startup still terminates the process.
    signal::install();
    // The readiness line scripts and CI wait for; flushed immediately.
    println!("listening on {}", handle.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    while !signal::triggered() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("signal received, draining in-flight requests");
    handle.shutdown_and_join();
    eprintln!("drained, exiting");
    // --metrics-out is written by the shared post-command path in main,
    // so the snapshot includes everything up to the drain.
    Ok(Outcome::Clean)
}

//! Bounded admission queue with batch-coalescing pops.
//!
//! The admission-control contract: [`RequestQueue::push`] **never
//! blocks**. A full queue rejects immediately with the observed depth so
//! the caller can send a typed overload response — under overload the
//! server sheds, it does not stack latency. The consumer side
//! ([`RequestQueue::pop_batch`]) blocks for the first item, then lingers
//! a bounded time to coalesce more work into one batch, which is where
//! ADC-table amortization comes from.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the request must be shed.
    Full {
        /// Configured capacity.
        capacity: usize,
        /// Depth observed at rejection (== capacity).
        depth: usize,
    },
    /// The queue was closed for shutdown; no new work is admitted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue: producers shed on full, the consumer coalesces.
pub struct RequestQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> RequestQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RequestQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy snapshot, for metrics).
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Enqueues one item without ever blocking.
    ///
    /// Returns the depth *after* the push on success.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity (the item is returned to the
    /// caller's ownership conceptually — it is dropped here, so callers
    /// must respond before pushing), [`PushError::Closed`] after
    /// [`RequestQueue::close`].
    pub fn push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
                depth: inner.items.len(),
            });
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pops a coalesced batch.
    ///
    /// Blocks until at least one item is available, then keeps collecting
    /// until the cumulative `weight_fn` total reaches `max_weight` or
    /// `linger` elapses without the batch filling. Returns `None` only
    /// when the queue is closed **and** drained — the natural shutdown
    /// signal for the consumer loop.
    pub fn pop_batch(
        &self,
        max_weight: usize,
        weight_fn: impl Fn(&T) -> usize,
        linger: Duration,
    ) -> Option<Vec<T>> {
        let max_weight = max_weight.max(1);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // Phase 1: wait for the first item (or closed-and-empty).
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut batch = Vec::new();
        let mut weight = 0usize;
        let deadline = Instant::now() + linger;
        // Phase 2: drain what is here, then linger for more until the
        // batch is full, the linger expires, or the queue closes.
        loop {
            while weight < max_weight {
                let Some(front_w) = inner.items.front().map(&weight_fn) else {
                    break;
                };
                // A single oversized item still ships alone; otherwise
                // stop before overflowing the weight budget.
                if !batch.is_empty() && weight + front_w.max(1) > max_weight {
                    return Some(batch);
                }
                // `front()` was `Some`, so `pop_front()` is too.
                if let Some(item) = inner.items.pop_front() {
                    weight += front_w.max(1);
                    batch.push(item);
                }
            }
            if weight >= max_weight || inner.closed {
                return Some(batch);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(batch);
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                return Some(batch);
            }
        }
    }

    /// Closes the queue: pushes fail with [`PushError::Closed`], and
    /// [`RequestQueue::pop_batch`] drains the remainder then returns
    /// `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// True once [`RequestQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_sheds_on_full_instead_of_blocking() {
        let q = RequestQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(
            q.push(3),
            Err(PushError::Full {
                capacity: 2,
                depth: 2
            })
        );
    }

    #[test]
    fn pop_batch_coalesces_up_to_weight() {
        let q = RequestQueue::new(16);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let batch = q
            .pop_batch(3, |_| 1, Duration::from_millis(1))
            .expect("open queue");
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q
            .pop_batch(8, |_| 1, Duration::from_millis(1))
            .expect("open queue");
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn oversized_item_ships_alone() {
        let q = RequestQueue::new(4);
        q.push(10).unwrap();
        q.push(1).unwrap();
        let batch = q
            .pop_batch(4, |&w| w, Duration::from_millis(1))
            .expect("open queue");
        assert_eq!(batch, vec![10]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(RequestQueue::new(8));
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(PushError::Closed));
        assert_eq!(
            q.pop_batch(4, |_| 1, Duration::from_millis(1)),
            Some(vec![7])
        );
        assert_eq!(q.pop_batch(4, |_| 1, Duration::from_millis(1)), None);
    }

    #[test]
    fn consumer_wakes_on_push_and_close() {
        let q = Arc::new(RequestQueue::new(8));
        let qc = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(batch) = qc.pop_batch(4, |_| 1, Duration::from_millis(5)) {
                seen.extend(batch);
            }
            seen
        });
        for i in 0..10 {
            while q.push(i).is_err() {
                thread::yield_now();
            }
        }
        q.close();
        let seen = consumer.join().expect("consumer thread");
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}

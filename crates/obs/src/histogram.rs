//! Log-bucketed latency histograms.
//!
//! Buckets are fixed powers of two over the nanosecond→seconds range:
//! bucket `i` (for `i < 36`) counts observations `v` with
//! `v <= 2^i` ns that fell in no earlier bucket, i.e. upper bounds of
//! 1 ns, 2 ns, 4 ns, … up to `2^35` ns (≈ 34 s); the final bucket is the
//! `+Inf` overflow. The fixed geometry means recording is a handful of
//! relaxed atomic operations — no locks, no allocation, no resizing — and
//! two snapshots can be subtracted bucket-wise.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets, including the final `+Inf` overflow bucket.
pub const BUCKET_COUNT: usize = 37;

/// The inclusive upper bound (ns) of bucket `i`, or `None` for `+Inf`.
pub fn bucket_le(i: usize) -> Option<u64> {
    if i + 1 < BUCKET_COUNT {
        Some(1u64 << i)
    } else {
        None
    }
}

/// The bucket index an observation of `ns` nanoseconds lands in.
pub fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        (64 - (ns - 1).leading_zeros() as usize).min(BUCKET_COUNT - 1)
    }
}

/// A point-in-time summary of one histogram.
///
/// The percentiles are upper-bound estimates: the value reported for a
/// quantile is the upper bound of the power-of-2 bucket containing it (the
/// recorded maximum for the overflow bucket), so they are exact to within
/// one bucket width (a factor of 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (ns).
    pub sum: u64,
    /// Largest observed value (ns).
    pub max: u64,
    /// Median estimate (ns).
    pub p50: u64,
    /// 90th-percentile estimate (ns).
    pub p90: u64,
    /// 99th-percentile estimate (ns).
    pub p99: u64,
}

/// A lock-free histogram of nanosecond observations.
#[cfg(feature = "telemetry")]
#[derive(Debug)]
pub struct Histogram {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

#[cfg(feature = "telemetry")]
impl Histogram {
    pub(crate) fn new(name: &'static str, help: &'static str) -> Self {
        Histogram {
            name,
            help,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds (three relaxed atomic
    /// RMW operations; callers check [`crate::enabled`] first).
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Per-bucket (non-cumulative) counts, in bucket order.
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Summarizes the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = self.bucket_counts();
        let count: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).max(1);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return bucket_le(i).unwrap_or(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_follows_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_bounds_cover_ns_to_seconds() {
        assert_eq!(bucket_le(0), Some(1));
        assert_eq!(bucket_le(30), Some(1 << 30)); // ≈ 1.07 s
        assert_eq!(bucket_le(35), Some(1 << 35)); // ≈ 34 s
        assert_eq!(bucket_le(BUCKET_COUNT - 1), None); // +Inf
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn snapshot_reports_count_sum_max_and_quantiles() {
        let h = Histogram::new("t", "");
        for ns in [10u64, 20, 30, 1000, 100_000] {
            h.observe_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 101_060);
        assert_eq!(s.max, 100_000);
        // p50 = 3rd of 5 → 30 lands in bucket le=32.
        assert_eq!(s.p50, 32);
        // p90 = 5th of 5 → 100_000 lands in bucket le=131072.
        assert_eq!(s.p90, 131_072);
        assert_eq!(s.p99, 131_072);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let h = Histogram::new("t", "");
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn overflow_bucket_quantile_falls_back_to_max() {
        let h = Histogram::new("t", "");
        h.observe_ns(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, u64::MAX / 2);
    }
}

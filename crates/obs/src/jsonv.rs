//! A minimal recursive-descent JSON parser.
//!
//! Exists so snapshot output and the CLI's `--metrics-out` file can be
//! validated in tests without adding a serde dependency (the container is
//! offline). It supports the full JSON grammar; numbers are kept as `f64`
//! plus an exact-`u64` fast path for the integers telemetry emits.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, key-sorted.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap_or_else(|_| unreachable!("number spans only ASCII bytes"));
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {:?} at byte {start}", text))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest
                        .chars()
                        .next()
                        .unwrap_or_else(|| unreachable!("peek saw a byte, so rest is non-empty"));
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": {"b": [1, 2.5, "x\"y", true, null]}, "n": -3}"#).unwrap();
        let b = v.get("a").and_then(|a| a.get("b")).unwrap();
        let items = b.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x\"y"));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Null);
        assert_eq!(v.get("n").and_then(|n| n.as_f64()), Some(-3.0));
        assert_eq!(v.get("n").and_then(|n| n.as_u64()), None);
    }

    #[test]
    fn parses_empty_containers_and_escapes() {
        let v = parse(r#"{"o": {}, "a": [], "s": "A\n\t"}"#).unwrap();
        assert_eq!(
            v.get("o").and_then(|o| o.as_object()).map(|m| m.len()),
            Some(0)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(0)
        );
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("A\n\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}

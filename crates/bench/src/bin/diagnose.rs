//! Diagnostic tool: dissects one Fast Scan query — qmax quality, bound
//! tightness per component, threshold evolution — to explain the observed
//! pruning power.

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, Fixture};
use pqfs_core::DistanceTables;
use pqfs_scan::fastscan::grouping::{group_key, GroupedCodes};
use pqfs_scan::fastscan::mintables::min_table;
use pqfs_scan::{Backend, DistanceQuantizer, FastScanIndex, FastScanOptions, ScanOpts, ScanParams};

fn main() {
    let n = env_usize("PQFS_N", 100_000);
    let topk = env_usize("PQFS_TOPK", 100);
    let mut fx = Fixture::train(42);
    let codes = fx.partition(n);
    let q = fx.queries(1);
    let tables: DistanceTables = fx.tables(&q);

    // True distance distribution.
    let exact = Backend::Naive
        .scanner(&ScanOpts::default())
        .scan(&tables, &codes, n.min(codes.len()))
        .unwrap();
    let dists = exact.distances();
    let pct = |p: f64| dists[((dists.len() - 1) as f64 * p) as usize];
    println!(
        "distance distribution: min {:.0}  p1 {:.0}  p10 {:.0}  p50 {:.0}  p99 {:.0}  max {:.0}",
        dists[0],
        pct(0.01),
        pct(0.10),
        pct(0.50),
        pct(0.99),
        *dists.last().unwrap()
    );
    let t_true = dists[topk - 1];
    println!("true topk({topk})-th distance: {t_true:.0}");

    // Strided warm-up sample quality.
    let keep = 0.005;
    let target = (keep * n as f64).ceil() as usize;
    let stride = (n / target).max(1);
    let mut sample: Vec<f32> = Vec::new();
    // Grouped order sample (as the scan does).
    let c = FastScanIndex::build(&codes, &FastScanOptions::default())
        .unwrap()
        .group_components();
    let grouped = GroupedCodes::build(&codes, c);
    for g in grouped.groups() {
        let mut pos = g.start.div_ceil(stride) * stride;
        while pos < g.start + g.len {
            sample.push(tables.distance(codes.code(grouped.id(pos) as usize)));
            pos += stride;
        }
    }
    sample.sort_by(f32::total_cmp);
    let qmax = if sample.len() >= topk {
        sample[topk - 1]
    } else {
        *sample.last().unwrap()
    };
    println!(
        "warm-up: {} samples, best {:.0}, topk-th {:.0}  -> qmax {:.0} ({}x the true topk-th)",
        sample.len(),
        sample[0],
        qmax,
        qmax,
        qmax / t_true
    );

    // Quantizer setup.
    let quant = DistanceQuantizer::new(&tables, qmax, 254);
    let biases = tables.per_table_min();
    let bias_sum: f32 = biases.iter().sum();
    println!(
        "sum of per-table mins: {bias_sum:.0}; qmax - biases = {:.0}",
        qmax - bias_sum
    );
    println!(
        "threshold at true topk-th: T = {}",
        quant.quantize_threshold(t_true)
    );

    // Bound tightness: for a sample of vectors, lower bound vs true
    // distance using exact portions for 0..c and min tables for c..8.
    let mins: Vec<Vec<f32>> = (0..8).map(|j| min_table(tables.table(j))).collect();
    let mut tight = Vec::new();
    let mut below = 0usize;
    let t_q = quant.quantize_threshold(t_true);
    for i in (0..n).step_by((n / 2000).max(1)) {
        let code = codes.code(i);
        let key = group_key(code, c);
        let mut lb_f = 0f32;
        let mut lb_q = 0u8;
        for j in 0..8 {
            let (v, bits) = if j < c {
                (tables.table(j)[code[j] as usize], code[j])
            } else {
                (mins[j][(code[j] >> 4) as usize], code[j])
            };
            let _ = (key, bits);
            lb_f += v;
            lb_q = lb_q.saturating_add(quant.quantize_value(j, v));
        }
        let d = tables.distance(code);
        tight.push((lb_f / d) as f64);
        if lb_q <= t_q {
            below += 1;
        }
    }
    tight.sort_by(f64::total_cmp);
    println!(
        "lower-bound tightness lb/d: p10 {:.3}  p50 {:.3}  p90 {:.3}",
        tight[tight.len() / 10],
        tight[tight.len() / 2],
        tight[9 * tight.len() / 10]
    );
    println!(
        "fraction of sampled vectors with quantized lb <= T(true topk-th): {:.3} \
         (ideal pruning = 1 - this)",
        below as f64 / tight.len() as f64
    );

    // Actual scan stats.
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
    let r = index
        .scan(&tables, &ScanParams::new(topk).with_keep(keep))
        .unwrap();
    println!(
        "actual scan: warmup {} pruned {} verified {} -> pruning power {:.3}",
        r.stats.warmup,
        r.stats.pruned,
        r.stats.verified,
        r.stats.pruned_fraction()
    );
}

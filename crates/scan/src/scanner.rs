//! The backend registry: every scan implementation behind one interface.
//!
//! The paper's §5 exactness claim — PQ Fast Scan returns *exactly* the
//! result set of the four PQ Scan baselines — is only demonstrable if the
//! implementations are interchangeable. This module makes them so:
//!
//! * [`Scanner`] — the object-safe interface (`scan`, `name`,
//!   `stats_supported`) plus [`Scanner::prepare`] for building
//!   partition-resident state (transposed layouts, grouped Fast Scan
//!   indexes) once and scanning many times;
//! * [`PreparedScanner`] — a partition bound to one backend, ready for
//!   repeated queries;
//! * [`Backend`] — the enumeration of all implementations.
//!   [`Backend::ALL`] drives table-driven exactness tests, [`FromStr`] makes
//!   every CLI/bench flag accept the same names, and
//!   [`Backend::scanner`] is the single dispatch point in the workspace
//!   (the `ivf`, `cli` and `bench` crates contain no per-backend match
//!   arms).
//!
//! New kernels (4-bit Quick ADC, batched variants, …) plug in by adding a
//! `Backend` variant and a `Scanner` impl here — every consumer picks them
//! up without code changes.
//!
//! ```
//! use pqfs_core::{DistanceTables, RowMajorCodes};
//! use pqfs_scan::{Backend, ScanOpts};
//!
//! let tables = DistanceTables::from_raw((0..8 * 256).map(|x| x as f32).collect(), 8, 256);
//! let codes = RowMajorCodes::new((0..64 * 8).map(|x| (x * 37 % 256) as u8).collect(), 8);
//!
//! let opts = ScanOpts::default();
//! let reference = Backend::Naive.scanner(&opts).scan(&tables, &codes, 5).unwrap();
//! for backend in Backend::ALL {
//!     let result = backend.scanner(&opts).scan(&tables, &codes, 5).unwrap();
//!     assert_eq!(result.ids(), reference.ids(), "{backend} must be exact");
//! }
//! ```

use crate::fastscan::{FastScanIndex, FastScanOptions, Kernel, ScanParams, ScanScratch};
use crate::quantize::DEFAULT_BINS;
use crate::result::ScanResult;
use crate::{scan_avx, scan_gather, scan_libpq, scan_naive, scan_quantize_only, ScanError};
use pqfs_core::{DistanceTables, RowMajorCodes, TransposedCodes};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Backend-construction options consumed by [`Backend::scanner`].
///
/// One bag of options covers every backend; each implementation reads only
/// the fields it understands (e.g. `bins` is ignored by the non-pruning
/// baselines).
#[derive(Debug, Clone)]
pub struct ScanOpts {
    /// Warm-up fraction for the pruning backends (paper §4.4 `keep`,
    /// default 0.5 %). [`PreparedScanner::scan`] overrides this per query
    /// through [`ScanParams::keep`].
    pub keep: f64,
    /// Distance-quantization bin count (pruning backends only).
    pub bins: u16,
    /// Fast Scan grouping components; `None` selects automatically from the
    /// partition size (`n_min(c) = 50·16^c`).
    pub group_components: Option<usize>,
    /// Fast Scan SIMD kernel back-end.
    pub kernel: Kernel,
}

impl Default for ScanOpts {
    fn default() -> Self {
        ScanOpts {
            keep: 0.005,
            bins: DEFAULT_BINS,
            group_components: None,
            kernel: Kernel::Auto,
        }
    }
}

impl ScanOpts {
    /// Replaces the warm-up fraction.
    pub fn with_keep(mut self, keep: f64) -> Self {
        self.keep = keep;
        self
    }

    /// Replaces the quantization bin count.
    pub fn with_bins(mut self, bins: u16) -> Self {
        self.bins = bins;
        self
    }

    /// Fixes the number of Fast Scan grouping components.
    pub fn with_group_components(mut self, c: usize) -> Self {
        self.group_components = Some(c);
        self
    }

    /// Replaces the Fast Scan kernel back-end.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The Fast Scan subset of these options.
    pub fn fastscan_options(&self) -> FastScanOptions {
        FastScanOptions {
            group_components: self.group_components,
            bins: self.bins,
            kernel: self.kernel,
        }
    }
}

/// A scan implementation behind a uniform, object-safe interface.
///
/// [`Scanner::scan`] is the one-shot entry point: it accepts the universal
/// row-major layout and performs any conversion (transposition, grouping,
/// quantization) internally. For repeated queries over the same partition,
/// [`Scanner::prepare`] performs the conversion once; the returned
/// [`PreparedScanner`] then serves queries at full speed.
pub trait Scanner: Send + Sync {
    /// Stable human-readable backend name (the same string
    /// [`Backend::name`] returns and [`FromStr`] accepts).
    fn name(&self) -> &'static str;

    /// Whether this backend fills the pruning counters
    /// (`pruned`/`verified`/`warmup`) of
    /// [`ScanStats`](crate::ScanStats). The exhaustive baselines only count
    /// `scanned`.
    fn stats_supported(&self) -> bool;

    /// Scans `codes` and returns the `topk` nearest neighbors by ADC
    /// distance — the exact same `(distance, id)` set for every backend.
    ///
    /// # Errors
    ///
    /// [`ScanError::TableCodeMismatch`] when `tables.m() != codes.m()`,
    /// [`ScanError::NeedsPq8x8`] for the `PQ 8×8`-specialized backends, and
    /// kernel resolution errors from Fast Scan.
    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError>;

    /// Converts `codes` into this backend's native layout once, for
    /// repeated scanning. The `Arc` lets row-major backends share the
    /// caller's storage instead of copying it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scanner::scan`], minus per-query failures.
    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError>;
}

/// A partition converted to one backend's native layout, ready for repeated
/// queries. Created by [`Scanner::prepare`].
pub trait PreparedScanner: fmt::Debug + Send + Sync {
    /// The backend this partition was prepared for.
    fn backend(&self) -> Backend;

    /// Scans the prepared partition. `params.keep` applies to the pruning
    /// backends; the exhaustive baselines ignore it.
    ///
    /// # Errors
    ///
    /// Kernel resolution errors and table-shape mismatches.
    fn scan(&self, tables: &DistanceTables, params: &ScanParams) -> Result<ScanResult, ScanError>;

    /// [`scan`](Self::scan) with a caller-held [`ScanScratch`]: backends
    /// that build per-query tables (Fast Scan) reuse the scratch buffers
    /// instead of allocating; the others ignore it. Batch drivers keep one
    /// scratch per worker thread. Results are identical to
    /// [`scan`](Self::scan).
    ///
    /// # Errors
    ///
    /// As [`scan`](Self::scan).
    fn scan_with(
        &self,
        tables: &DistanceTables,
        params: &ScanParams,
        scratch: &mut ScanScratch,
    ) -> Result<ScanResult, ScanError> {
        let _ = scratch;
        self.scan(tables, params)
    }

    /// Bytes of code storage held by this prepared layout (the paper's
    /// Figure 20 memory comparison).
    fn code_memory_bytes(&self) -> usize;

    /// Clones into a new box (enables `Clone` for containers of prepared
    /// partitions).
    fn clone_box(&self) -> Box<dyn PreparedScanner>;
}

impl Clone for Box<dyn PreparedScanner> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Every scan implementation in the workspace, as a value.
///
/// The variants follow the paper: four PQ Scan baselines (§3), the
/// quantization-only pruning study (§5.5), and PQ Fast Scan itself (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Algorithm 1: per-component table lookups, scalar adds.
    Naive,
    /// §3.1: one 64-bit code load + shifts (requires `PQ 8×8`).
    Libpq,
    /// §3.2 Figure 4: scalar lookups, SIMD vertical adds (transposed).
    Avx,
    /// §3.2 Figure 5: AVX2 `vpgatherdps` lookups (transposed).
    Gather,
    /// §5.5: full 256-entry tables quantized to 8 bits (pruning study).
    QuantizeOnly,
    /// §4: PQ Fast Scan — grouped codes, minimum tables, in-register
    /// `pshufb` lookups (requires `PQ 8×8`).
    #[default]
    FastScan,
}

impl Backend {
    /// All backends, in paper order. Drives table-driven exactness tests
    /// and `--backend` flag listings.
    pub const ALL: [Backend; 6] = [
        Backend::Naive,
        Backend::Libpq,
        Backend::Avx,
        Backend::Gather,
        Backend::QuantizeOnly,
        Backend::FastScan,
    ];

    /// The stable name accepted by [`FromStr`] and printed by `Display`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Naive => "naive",
            Backend::Libpq => "libpq",
            Backend::Avx => "avx",
            Backend::Gather => "gather",
            Backend::QuantizeOnly => "quantize-only",
            Backend::FastScan => "fastscan",
        }
    }

    /// Whether this backend only supports the paper's `PQ 8×8` shape
    /// (`m = 8`; Fast Scan additionally wants `ksub = 256` tables).
    pub fn requires_pq8x8(self) -> bool {
        matches!(self, Backend::Libpq | Backend::FastScan)
    }

    /// Builds the [`Scanner`] for this backend — the single dispatch point
    /// for every scan in the workspace.
    pub fn scanner(&self, opts: &ScanOpts) -> Box<dyn Scanner> {
        match self {
            Backend::Naive => Box::new(NaiveScanner),
            Backend::Libpq => Box::new(LibpqScanner),
            Backend::Avx => Box::new(AvxScanner),
            Backend::Gather => Box::new(GatherScanner),
            Backend::QuantizeOnly => Box::new(QuantizeOnlyScanner {
                keep: opts.keep,
                bins: opts.bins,
            }),
            Backend::FastScan => Box::new(FastScanScanner {
                opts: opts.fastscan_options(),
                keep: opts.keep,
            }),
        }
    }

    /// The comma-separated name list (for usage strings).
    pub fn names() -> String {
        Backend::ALL.map(Backend::name).join("|")
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parses a backend name as printed by [`Backend::name`]; underscores
    /// are accepted in place of dashes.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.to_ascii_lowercase().replace('_', "-");
        Backend::ALL
            .into_iter()
            .find(|b| b.name() == normalized)
            .ok_or_else(|| {
                format!(
                    "unknown backend '{s}' (expected one of: {})",
                    Backend::names()
                )
            })
    }
}

fn check_m(tables: &DistanceTables, code_m: usize) -> Result<(), ScanError> {
    if tables.m() != code_m {
        return Err(ScanError::TableCodeMismatch {
            table_m: tables.m(),
            code_m,
        });
    }
    Ok(())
}

fn check_pq8(m: usize, ksub: usize) -> Result<(), ScanError> {
    if m != 8 {
        return Err(ScanError::NeedsPq8x8 { m, ksub });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Naive
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct NaiveScanner;

#[derive(Debug, Clone)]
struct PreparedNaive {
    codes: Arc<RowMajorCodes>,
}

impl Scanner for NaiveScanner {
    fn name(&self) -> &'static str {
        Backend::Naive.name()
    }

    fn stats_supported(&self) -> bool {
        false
    }

    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError> {
        check_m(tables, codes.m())?;
        Ok(scan_naive(tables, codes, topk))
    }

    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError> {
        Ok(Box::new(PreparedNaive { codes }))
    }
}

impl PreparedScanner for PreparedNaive {
    fn backend(&self) -> Backend {
        Backend::Naive
    }

    fn scan(&self, tables: &DistanceTables, params: &ScanParams) -> Result<ScanResult, ScanError> {
        check_m(tables, self.codes.m())?;
        Ok(scan_naive(tables, &self.codes, params.topk))
    }

    fn code_memory_bytes(&self) -> usize {
        self.codes.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn PreparedScanner> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Libpq
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct LibpqScanner;

#[derive(Debug, Clone)]
struct PreparedLibpq {
    codes: Arc<RowMajorCodes>,
}

impl Scanner for LibpqScanner {
    fn name(&self) -> &'static str {
        Backend::Libpq.name()
    }

    fn stats_supported(&self) -> bool {
        false
    }

    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError> {
        check_pq8(codes.m(), tables.ksub())?;
        check_m(tables, codes.m())?;
        Ok(scan_libpq(tables, codes, topk))
    }

    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError> {
        check_pq8(codes.m(), 256)?;
        Ok(Box::new(PreparedLibpq { codes }))
    }
}

impl PreparedScanner for PreparedLibpq {
    fn backend(&self) -> Backend {
        Backend::Libpq
    }

    fn scan(&self, tables: &DistanceTables, params: &ScanParams) -> Result<ScanResult, ScanError> {
        check_pq8(self.codes.m(), tables.ksub())?;
        check_m(tables, self.codes.m())?;
        Ok(scan_libpq(tables, &self.codes, params.topk))
    }

    fn code_memory_bytes(&self) -> usize {
        self.codes.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn PreparedScanner> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Avx / Gather (transposed layout)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct AvxScanner;

#[derive(Debug, Clone, Copy)]
struct GatherScanner;

/// Shared prepared state for the two transposed-layout baselines.
#[derive(Debug, Clone)]
struct PreparedTransposed {
    backend: Backend,
    transposed: TransposedCodes,
}

impl PreparedTransposed {
    fn run(&self, tables: &DistanceTables, topk: usize) -> Result<ScanResult, ScanError> {
        check_m(tables, self.transposed.m())?;
        Ok(match self.backend {
            Backend::Avx => scan_avx(tables, &self.transposed, topk),
            _ => scan_gather(tables, &self.transposed, topk),
        })
    }
}

impl Scanner for AvxScanner {
    fn name(&self) -> &'static str {
        Backend::Avx.name()
    }

    fn stats_supported(&self) -> bool {
        false
    }

    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError> {
        check_m(tables, codes.m())?;
        Ok(scan_avx(
            tables,
            &TransposedCodes::from_row_major(codes),
            topk,
        ))
    }

    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError> {
        Ok(Box::new(PreparedTransposed {
            backend: Backend::Avx,
            transposed: TransposedCodes::from_row_major(&codes),
        }))
    }
}

impl Scanner for GatherScanner {
    fn name(&self) -> &'static str {
        Backend::Gather.name()
    }

    fn stats_supported(&self) -> bool {
        false
    }

    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError> {
        check_m(tables, codes.m())?;
        Ok(scan_gather(
            tables,
            &TransposedCodes::from_row_major(codes),
            topk,
        ))
    }

    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError> {
        Ok(Box::new(PreparedTransposed {
            backend: Backend::Gather,
            transposed: TransposedCodes::from_row_major(&codes),
        }))
    }
}

impl PreparedScanner for PreparedTransposed {
    fn backend(&self) -> Backend {
        self.backend
    }

    fn scan(&self, tables: &DistanceTables, params: &ScanParams) -> Result<ScanResult, ScanError> {
        self.run(tables, params.topk)
    }

    fn code_memory_bytes(&self) -> usize {
        self.transposed.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn PreparedScanner> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// QuantizeOnly
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct QuantizeOnlyScanner {
    keep: f64,
    bins: u16,
}

#[derive(Debug, Clone)]
struct PreparedQuantizeOnly {
    codes: Arc<RowMajorCodes>,
    bins: u16,
}

impl Scanner for QuantizeOnlyScanner {
    fn name(&self) -> &'static str {
        Backend::QuantizeOnly.name()
    }

    fn stats_supported(&self) -> bool {
        true
    }

    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError> {
        check_m(tables, codes.m())?;
        Ok(scan_quantize_only(
            tables, codes, topk, self.keep, self.bins,
        ))
    }

    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError> {
        Ok(Box::new(PreparedQuantizeOnly {
            codes,
            bins: self.bins,
        }))
    }
}

impl PreparedScanner for PreparedQuantizeOnly {
    fn backend(&self) -> Backend {
        Backend::QuantizeOnly
    }

    fn scan(&self, tables: &DistanceTables, params: &ScanParams) -> Result<ScanResult, ScanError> {
        check_m(tables, self.codes.m())?;
        Ok(scan_quantize_only(
            tables,
            &self.codes,
            params.topk,
            params.keep,
            self.bins,
        ))
    }

    fn code_memory_bytes(&self) -> usize {
        self.codes.memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn PreparedScanner> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// FastScan
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FastScanScanner {
    opts: FastScanOptions,
    keep: f64,
}

#[derive(Debug, Clone)]
struct PreparedFastScan {
    index: FastScanIndex,
}

impl Scanner for FastScanScanner {
    fn name(&self) -> &'static str {
        Backend::FastScan.name()
    }

    fn stats_supported(&self) -> bool {
        true
    }

    fn scan(
        &self,
        tables: &DistanceTables,
        codes: &RowMajorCodes,
        topk: usize,
    ) -> Result<ScanResult, ScanError> {
        let index = FastScanIndex::build(codes, &self.opts)?;
        index.scan(tables, &ScanParams::new(topk).with_keep(self.keep))
    }

    fn prepare(&self, codes: Arc<RowMajorCodes>) -> Result<Box<dyn PreparedScanner>, ScanError> {
        Ok(Box::new(PreparedFastScan {
            index: FastScanIndex::build(&codes, &self.opts)?,
        }))
    }
}

impl PreparedScanner for PreparedFastScan {
    fn backend(&self) -> Backend {
        Backend::FastScan
    }

    fn scan(&self, tables: &DistanceTables, params: &ScanParams) -> Result<ScanResult, ScanError> {
        self.index.scan(tables, params)
    }

    fn scan_with(
        &self,
        tables: &DistanceTables,
        params: &ScanParams,
        scratch: &mut ScanScratch,
    ) -> Result<ScanResult, ScanError> {
        self.index.scan_with(tables, params, scratch)
    }

    fn code_memory_bytes(&self) -> usize {
        self.index.code_memory_bytes()
    }

    fn clone_box(&self) -> Box<dyn PreparedScanner> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: usize) -> (DistanceTables, RowMajorCodes) {
        let mut data = Vec::with_capacity(8 * 256);
        for j in 0..8 {
            for i in 0..256 {
                data.push(((i * 31 + j * 97) % 1013) as f32 * 0.5);
            }
        }
        let tables = DistanceTables::from_raw(data, 8, 256);
        let bytes: Vec<u8> = (0..n * 8).map(|i| ((i * 131 + 17) % 256) as u8).collect();
        (tables, RowMajorCodes::new(bytes, 8))
    }

    #[test]
    fn every_backend_is_registered_exactly_once() {
        assert_eq!(Backend::ALL.len(), 6);
        let names: std::collections::HashSet<_> = Backend::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 6, "backend names must be unique");
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for backend in Backend::ALL {
            assert_eq!(backend.name().parse::<Backend>().unwrap(), backend);
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!(
            "quantize_only".parse::<Backend>().unwrap(),
            Backend::QuantizeOnly
        );
        assert_eq!("FASTSCAN".parse::<Backend>().unwrap(), Backend::FastScan);
        let err = "warp-drive".parse::<Backend>().unwrap_err();
        assert!(err.contains("naive"), "error must list valid names: {err}");
    }

    #[test]
    fn scanner_names_match_registry_names() {
        let opts = ScanOpts::default();
        for backend in Backend::ALL {
            assert_eq!(backend.scanner(&opts).name(), backend.name());
        }
    }

    #[test]
    fn all_backends_return_identical_results() {
        let (tables, codes) = fixture(3000);
        let opts = ScanOpts::default().with_keep(0.01);
        let reference = Backend::Naive
            .scanner(&opts)
            .scan(&tables, &codes, 25)
            .unwrap();
        for backend in Backend::ALL {
            let result = backend.scanner(&opts).scan(&tables, &codes, 25).unwrap();
            assert_eq!(result.ids(), reference.ids(), "{backend} ids differ");
            if !matches!(backend, Backend::Avx | Backend::Gather) {
                // Transposed baselines reassociate float adds; ids already
                // prove exactness of the result set.
                assert_eq!(result.distances(), reference.distances(), "{backend}");
            }
        }
    }

    #[test]
    fn prepared_scanners_match_one_shot_scans() {
        let (tables, codes) = fixture(2500);
        let opts = ScanOpts::default().with_keep(0.01);
        let shared = Arc::new(codes.clone());
        let params = ScanParams::new(25).with_keep(0.01);
        for backend in Backend::ALL {
            let scanner = backend.scanner(&opts);
            let one_shot = scanner.scan(&tables, &codes, 25).unwrap();
            let prepared = scanner.prepare(Arc::clone(&shared)).unwrap();
            assert_eq!(prepared.backend(), backend);
            let repeated = prepared.scan(&tables, &params).unwrap();
            assert_eq!(one_shot.ids(), repeated.ids(), "{backend}");
            let cloned = prepared.clone_box().scan(&tables, &params).unwrap();
            assert_eq!(one_shot.ids(), cloned.ids(), "{backend} (cloned)");
        }
    }

    #[test]
    fn stats_support_follows_pruning_capability() {
        let opts = ScanOpts::default();
        for backend in Backend::ALL {
            let expected = matches!(backend, Backend::QuantizeOnly | Backend::FastScan);
            assert_eq!(
                backend.scanner(&opts).stats_supported(),
                expected,
                "{backend}"
            );
        }
    }

    #[test]
    fn pruning_backends_actually_fill_stats() {
        let (tables, codes) = fixture(4000);
        let opts = ScanOpts::default().with_keep(0.01);
        for backend in [Backend::QuantizeOnly, Backend::FastScan] {
            let r = backend.scanner(&opts).scan(&tables, &codes, 10).unwrap();
            assert!(r.stats.pruned > 0, "{backend} pruned nothing");
            assert_eq!(
                r.stats.warmup + r.stats.pruned + r.stats.verified,
                r.stats.scanned,
                "{backend} accounting"
            );
        }
    }

    #[test]
    fn shape_mismatches_are_errors_not_panics() {
        let (tables, _) = fixture(10);
        let narrow = RowMajorCodes::new(vec![0u8; 40], 4);
        let opts = ScanOpts::default();
        for backend in Backend::ALL {
            let result = backend.scanner(&opts).scan(&tables, &narrow, 5);
            assert!(result.is_err(), "{backend} accepted mismatched shapes");
        }
    }

    #[test]
    fn default_backend_is_fastscan() {
        assert_eq!(Backend::default(), Backend::FastScan);
    }

    #[test]
    fn memory_accounting_reflects_layout() {
        let (_, codes) = fixture(50_000);
        let opts = ScanOpts::default().with_group_components(2);
        let shared = Arc::new(codes);
        let row = Backend::Naive
            .scanner(&opts)
            .prepare(Arc::clone(&shared))
            .unwrap()
            .code_memory_bytes();
        let grouped = Backend::FastScan
            .scanner(&opts)
            .prepare(Arc::clone(&shared))
            .unwrap()
            .code_memory_bytes();
        assert_eq!(row, shared.memory_bytes());
        assert!(
            grouped < row,
            "grouped {grouped} should undercut row-major {row} (§4.2)"
        );
    }
}

//! Figure 15 — CPU resource usage of PQ Fast Scan vs the libpq PQ Scan:
//! per-vector L1 loads, instructions and µops (operation-count model fed by
//! the *measured* pruning statistics), plus measured per-vector time.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig15
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scale, Fixture, DIM};
use pqfs_metrics::{
    fastscan_ops, fmt_f, measure_ms, pqscan_ops, FastScanProfile, PqScanImpl, Summary, TextTable,
};
use pqfs_scan::{Backend, FastScanIndex, FastScanOptions, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let n = (1_000_000.0 * scale()) as usize;
    let n_queries = env_usize("PQFS_QUERIES", 10);
    header(
        "fig15",
        "Figure 15, §5.3",
        &format!("partition {n}, keep 0.5%, topk 100, {n_queries} queries"),
    );

    let mut fx = Fixture::train(15);
    let codes = Arc::new(fx.partition(n));
    // The raw FastScanIndex (not just the registry handle) is kept for the
    // operation-count model, which needs grouping internals.
    let index = FastScanIndex::build(&codes, &FastScanOptions::default()).expect("index");
    let libpq = Backend::Libpq
        .scanner(&ScanOpts::default())
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    let queries = fx.queries(n_queries);
    let params = ScanParams::new(100).with_keep(0.005);

    let mut fast_times = Vec::new();
    let mut slow_times = Vec::new();
    let mut verified_fraction = 0.0;
    for q in queries.chunks_exact(DIM) {
        let tables = fx.tables(q);
        let f = measure_ms(3, || index.scan(&tables, &params).unwrap());
        fast_times.push(Summary::from_values(&f).median());
        let s = measure_ms(3, || libpq.scan(&tables, &params).unwrap());
        slow_times.push(Summary::from_values(&s).median());
        let stats = index.scan(&tables, &params).unwrap().stats;
        let fastpath = (stats.scanned - stats.warmup).max(1);
        verified_fraction += stats.verified as f64 / fastpath as f64;
    }
    verified_fraction /= n_queries as f64;

    let libpq_ops = pqscan_ops(PqScanImpl::Libpq, 8);
    let fast_ops = fastscan_ops(&FastScanProfile {
        group_components: index.group_components(),
        verified_fraction,
        groups_per_vector: index.num_groups() as f64 / n as f64,
    });

    let fast_ms = Summary::from_values(&fast_times).median();
    let slow_ms = Summary::from_values(&slow_times).median();
    let ns_per_vec = |ms: f64| ms * 1e6 / n as f64;

    let mut t = TextTable::new(vec!["counter (per vector)", "libpq", "fastpq", "ratio"]);
    let mut row = |name: &str, a: f64, b: f64| {
        t.row(vec![
            name.to_string(),
            fmt_f(a, 2),
            fmt_f(b, 2),
            fmt_f(a / b, 1),
        ]);
    };
    row("L1 loads", libpq_ops.l1_loads, fast_ops.l1_loads);
    row(
        "instructions",
        libpq_ops.instructions,
        fast_ops.instructions,
    );
    row("uops", libpq_ops.uops, fast_ops.uops);
    row(
        "time [ns] (measured)",
        ns_per_vec(slow_ms),
        ns_per_vec(fast_ms),
    );
    println!("{t}");

    println!(
        "measured verified fraction: {:.2}% (pruning power {:.2}%)",
        100.0 * verified_fraction,
        100.0 * (1.0 - verified_fraction)
    );
    println!(
        "\npaper: libpq 9 L1 loads & 34 instructions & 11 cycles per vector; \
         fastpq 1.3 L1 loads & 3.7 instructions & 1.9 cycles — an ~85-89 % \
         reduction. Expected shape here: the same order-of-magnitude ratios."
    );
}

//! Concurrency hammer: exactness of sharded counters and histograms under
//! parallel recording.
//!
//! Thread counts cover {1, 2, 8} (plus `PQFS_THREADS` when set, matching
//! how CI parameterizes the rest of the suite), with more threads than
//! counter shards in the 24-thread case to force shard sharing.

#![cfg(feature = "telemetry")]

use pqfs_obs::registry::Registry;
use std::thread;

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8, 24];
    if let Ok(v) = std::env::var("PQFS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

#[test]
fn counter_sums_are_exact_under_contention() {
    const INCS_PER_THREAD: u64 = 50_000;
    for threads in thread_counts() {
        let reg = Registry::new();
        let c = reg.counter("hammer_total", "hammered counter");
        let labeled = reg.counter_labeled("hammer_by_kind", "labeled", "kind", "x");
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for i in 0..INCS_PER_THREAD {
                        c.inc();
                        if i % 2 == 0 {
                            labeled.add(2);
                        }
                    }
                });
            }
        });
        assert_eq!(
            c.value(),
            threads as u64 * INCS_PER_THREAD,
            "lost counter increments with {threads} threads"
        );
        assert_eq!(
            labeled.value(),
            threads as u64 * INCS_PER_THREAD, // 2 per even i = INCS_PER_THREAD total
            "lost labeled increments with {threads} threads"
        );
    }
}

#[test]
fn histogram_totals_match_observations() {
    const OBS_PER_THREAD: u64 = 20_000;
    for threads in thread_counts() {
        let reg = Registry::new();
        let h = reg.histogram("hammer_lat_ns", "hammered histogram");
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for i in 0..OBS_PER_THREAD {
                        // Deterministic spread across buckets, max = 2^20.
                        h.observe_ns(1 << (i % 21));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(
            snap.count,
            threads as u64 * OBS_PER_THREAD,
            "lost histogram observations with {threads} threads"
        );
        // Every thread observes the same multiset of values, so the exact
        // sum is threads × one thread's sum.
        let one: u64 = (0..OBS_PER_THREAD).map(|i| 1u64 << (i % 21)).sum();
        assert_eq!(snap.sum, threads as u64 * one);
        assert_eq!(snap.max, 1 << 20);
        // Bucket counts must also sum to the observation count.
        let text = pqfs_obs::prometheus_text(&reg);
        assert!(text.contains(&format!(
            "hammer_lat_ns_bucket{{le=\"+Inf\"}} {}",
            snap.count
        )));
    }
}

#[test]
fn gauges_record_max_monotonically_under_contention() {
    for threads in thread_counts() {
        let reg = Registry::new();
        let g = reg.gauge("hammer_hwm", "high-water mark");
        thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        g.record_max(t as u64 * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(g.value(), (threads as u64 - 1) * 10_000 + 9_999);
    }
}

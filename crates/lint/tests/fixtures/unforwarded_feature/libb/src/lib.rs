//! Fixture: swallows the tracked feature.
#![forbid(unsafe_code)]

pub fn nothing() {}

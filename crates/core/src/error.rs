use std::fmt;

/// Errors reported by the product-quantization core.
#[derive(Debug, Clone, PartialEq)]
pub enum PqError {
    /// Invalid `PQ m×b` shape.
    BadConfig {
        /// Vector dimensionality.
        dim: usize,
        /// Number of sub-quantizers.
        m: usize,
        /// Bits per component.
        nbits: u8,
    },
    /// The configuration cannot be trained (e.g. `nbits > 8`).
    Untrainable {
        /// Bits per component of the offending configuration.
        nbits: u8,
    },
    /// A vector had the wrong dimensionality.
    DimMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Actual slice length.
        actual: usize,
    },
    /// A code had the wrong number of components.
    CodeLenMismatch {
        /// Expected number of components (`m`).
        expected: usize,
        /// Actual code length.
        actual: usize,
    },
    /// Training-set shape or size problem, wrapping the k-means diagnosis.
    Training(pqfs_kmeans::KMeansError),
    /// The optimized assignment needs `k*` divisible by the portion size.
    BadPortioning {
        /// Centroids per sub-quantizer.
        ksub: usize,
        /// Requested number of portions.
        portions: usize,
    },
}

impl fmt::Display for PqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqError::BadConfig { dim, m, nbits } => write!(
                f,
                "invalid PQ configuration: dim={dim}, m={m}, nbits={nbits} \
                 (need dim > 0, m > 0, 1 <= nbits <= 16, dim % m == 0)"
            ),
            PqError::Untrainable { nbits } => write!(
                f,
                "configuration with nbits={nbits} cannot be trained (codes are byte-packed, nbits <= 8)"
            ),
            PqError::DimMismatch { expected, actual } => {
                write!(f, "vector has {actual} dimensions, expected {expected}")
            }
            PqError::CodeLenMismatch { expected, actual } => {
                write!(f, "code has {actual} components, expected {expected}")
            }
            PqError::Training(e) => write!(f, "sub-quantizer training failed: {e}"),
            PqError::BadPortioning { ksub, portions } => write!(
                f,
                "cannot split {ksub} centroids into {portions} equal portions"
            ),
        }
    }
}

impl std::error::Error for PqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PqError::Training(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pqfs_kmeans::KMeansError> for PqError {
    fn from(e: pqfs_kmeans::KMeansError) -> Self {
        PqError::Training(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = PqError::BadConfig {
            dim: 130,
            m: 8,
            nbits: 8,
        };
        assert!(e.to_string().contains("130"));
        let e = PqError::Training(pqfs_kmeans::KMeansError::EmptyInput);
        assert!(e.to_string().contains("training failed"));
    }

    #[test]
    fn source_chains_to_kmeans_error() {
        use std::error::Error;
        let e = PqError::Training(pqfs_kmeans::KMeansError::EmptyInput);
        assert!(e.source().is_some());
        assert!(PqError::Untrainable { nbits: 16 }.source().is_none());
    }
}

//! Minimal aligned text tables for the experiment harnesses.
//!
//! Every `fig*`/`table*` binary prints its series through this type so the
//! output (and EXPERIMENTS.md) has one consistent format.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// extend the table width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}"));
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let sep: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(sep));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `digits` decimals (helper for harness rows).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a count with thousands separators (e.g. `25_000_000`).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "12345"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].contains("12345"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        let out = t.render();
        assert!(out.lines().count() == 3);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(1.2345, 2), "1.23");
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(25_000_000), "25_000_000");
        assert_eq!(fmt_count(1_234), "1_234");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}

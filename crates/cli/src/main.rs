//! `pqfs` — command-line front end for the PQ Fast Scan reproduction.
//!
//! ```text
//! pqfs gen     --out base.fvecs --n 100000 [--dim 128] [--seed 0]
//! pqfs build   --base base.fvecs --out index.pqiv [--train train.fvecs]
//!              [--partitions 8] [--seed 0] [--backends naive,libpq,fastscan]
//!              [--threads N]
//! pqfs info    --index index.pqiv
//! pqfs query   --index index.pqiv --queries q.fvecs [--topk 100]
//!              [--backend <name>] [--keep 0.005] [--nprobe 1]
//!              [--batch true] [--threads N] [--trace true]
//! pqfs serve   --index index.pqiv [--addr 127.0.0.1:7071] [--backend <name>]
//!              [--max-batch 32] [--linger-us 500] [--queue 256] [--threads N]
//! pqfs bench-client --addr 127.0.0.1:7071 [--n 1000] [--batch 1]
//!              [--connections 1] [--topk 10] [--nprobe 1] [--deadline-ms N]
//! ```
//!
//! `--backend` accepts any name from the scan registry (`pqfs query` run
//! with an unknown name lists them). `--threads` caps the shared worker
//! pool that build encoding, multi-probe search, and `--batch true` query
//! execution run on (default: all cores, or `PQFS_THREADS`).
//!
//! Every command accepts `--metrics-out FILE`: on exit the process-wide
//! telemetry registry is written there — Prometheus text exposition when
//! the file ends in `.prom`/`.txt`, a JSON snapshot otherwise. `query
//! --trace true` additionally prints a per-query stage waterfall (coarse
//! quantization, per-probe table build + scan, merge) to stderr.
//!
//! Vector files use the TEXMEX `.fvecs` format (ANN_SIFT1B's float format),
//! so the real corpus drops in directly.

#![forbid(unsafe_code)]

use pqfs_data::{read_fvecs, write_fvecs, SyntheticConfig, SyntheticDataset};
use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
use pqfs_metrics::{fmt_count, time_ms, Summary};
use std::process::ExitCode;
use std::time::Duration;

mod args;
mod bench_client;
mod serve;
use args::Args;

/// Exit code 1: usage mistakes, bad arguments, search/config failures.
const EXIT_ERROR: u8 = 1;
/// Exit code 2: an artifact (index or vector file) failed to load —
/// corruption, truncation, checksum mismatch, IO failure.
const EXIT_LOAD_ERROR: u8 = 2;
/// Exit code 3: queries answered, but degraded — some probes failed or
/// were skipped by the deadline budget, so result sets may be incomplete.
const EXIT_DEGRADED: u8 = 3;

/// What a successful command run produced.
enum Outcome {
    /// Everything ran at full fidelity.
    Clean,
    /// Queries answered with reduced probe coverage.
    Degraded,
}

/// Command failures, split by exit code.
enum CliError {
    /// An on-disk artifact could not be loaded (exit 2).
    Load(String),
    /// Anything else (exit 1).
    Other(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Other(msg)
    }
}

/// Shorthand for mapping artifact-load failures onto [`CliError::Load`].
fn load_err(context: &str, e: impl std::fmt::Display) -> CliError {
    CliError::Load(format!("{context}: {e}"))
}

fn main() -> ExitCode {
    let usage = usage();
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        eprintln!("{usage}");
        return ExitCode::from(EXIT_ERROR);
    };
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{usage}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    if let Err(e) = apply_threads(&args) {
        eprintln!("error: {e}");
        return ExitCode::from(EXIT_ERROR);
    }
    let result = match command.as_str() {
        "gen" => cmd_gen(&args),
        "build" => cmd_build(&args),
        "info" => cmd_info(&args),
        "query" => cmd_query(&args),
        "serve" => serve::cmd_serve(&args),
        "bench-client" => bench_client::cmd_bench_client(&args),
        "help" | "--help" | "-h" => {
            println!("{usage}");
            Ok(Outcome::Clean)
        }
        other => Err(CliError::Other(format!("unknown command '{other}'"))),
    };
    // Metrics are written even for failed/degraded runs: that is exactly
    // when the counters are most interesting.
    if let Some(path) = args.get("metrics-out") {
        if let Err(e) = write_metrics(path) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    }
    match result {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Degraded) => {
            eprintln!("warning: degraded results (probe failures or deadline skips)");
            ExitCode::from(EXIT_DEGRADED)
        }
        Err(CliError::Load(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_LOAD_ERROR)
        }
        Err(CliError::Other(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

/// Writes the global telemetry registry to `path`: Prometheus text for
/// `.prom`/`.txt` files, a JSON snapshot otherwise.
fn write_metrics(path: &str) -> std::io::Result<()> {
    let text = if path.ends_with(".prom") || path.ends_with(".txt") {
        pqfs_obs::global_prometheus_text()
    } else {
        pqfs_obs::global_json_snapshot()
    };
    std::fs::write(path, text)
}

/// The usage text, with the backend list pulled from the scan registry so
/// new kernels show up here automatically.
fn usage() -> String {
    format!(
        "pqfs — product-quantization fast scan toolbox

USAGE:
  pqfs gen    --out <file.fvecs> --n <count> [--dim 128] [--seed 0]
  pqfs build  --base <file.fvecs> --out <index.pqiv>
              [--train <file.fvecs>] [--partitions 8] [--seed 0]
              [--backends <name,name,...>] [--threads N]
  pqfs info   --index <index.pqiv>
  pqfs query  --index <index.pqiv> --queries <file.fvecs> [--topk 100]
              [--backend <name>] [--keep 0.005] [--nprobe 1]
              [--deadline-ms N] [--batch true] [--threads N]
              [--trace true]
  pqfs serve  --index <index.pqiv> [--addr 127.0.0.1:7071]
              [--backend <name>] [--max-batch 32] [--linger-us 500]
              [--queue 256] [--threads N]
  pqfs bench-client
              --addr <host:port> [--n 1000] [--batch 1] [--connections 1]
              [--topk 10] [--nprobe 1] [--keep 0.05] [--deadline-ms N]
              [--seed 0]

  --threads N  size of the shared worker pool used by build encoding,
               multi-probe (--nprobe > 1) and batch (--batch true) queries.
               Defaults to all cores; the PQFS_THREADS environment variable
               sets the same limit.
  --batch true answer all queries as one parallel batch and report
               aggregate throughput instead of per-query latency.
  --deadline-ms N
               per-query time budget for multi-probe search: the nearest
               probe always runs, further probes are skipped once the
               budget is spent (skips are reported and exit code 3 flags
               the degraded run).
  --trace true print a per-query stage waterfall (coarse quantization,
               per-probe tables + scan, merge) to stderr. Not available
               with --batch true.
  --metrics-out <file>
               write the telemetry registry on exit (any command,
               including serve's drain-then-exit): Prometheus text for
               .prom/.txt files, JSON otherwise.

  serve keeps the index hot in memory and answers the binary protocol
  (see docs/SERVING.md) until SIGTERM/ctrl-c, then drains in-flight
  requests and exits 0. It prints 'listening on <addr>' once ready.
  --max-batch and --linger-us bound the server-side batch coalescing;
  --queue caps the admission queue (overflow is shed with a typed
  Overloaded response, never queued unboundedly).

  bench-client sends synthetic load at a running serve and prints one
  JSON line: queries, qps, p50/p90/p99 latency (ms), errors, shed. It
  exits 1 if any request failed (shed responses are counted separately).

EXIT CODES: 0 success | 1 error (including any bench-client request
            failure) | 2 artifact load failure | 3 degraded results
            (probe failures or deadline skips; query command only —
            serve reports degradation per response, not via its exit
            code)

The PQFS_FAILPOINTS environment variable arms deterministic fault
injection at named IO/search sites (testing; see the pqfs_fault crate).

BACKENDS: {}",
        SearchBackend::names()
    )
}

/// Applies `--threads N` by exporting `PQFS_THREADS` before the lazily
/// created global pool first reads it (nothing touches the pool before
/// command dispatch).
fn apply_threads(args: &Args) -> Result<(), String> {
    if let Some(v) = args.get("threads") {
        let n: usize = v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--threads expects a positive integer, got '{v}'"))?;
        std::env::set_var("PQFS_THREADS", n.to_string());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<Outcome, CliError> {
    let out = args.require("out")?;
    let n = args.usize("n", 0)?;
    if n == 0 {
        return Err(CliError::Other("--n must be positive".into()));
    }
    let dim = args.usize("dim", 128)?;
    let seed = args.u64("seed", 0)?;
    let cfg = SyntheticConfig::sift_like().with_dim(dim).with_seed(seed);
    let data = SyntheticDataset::new(&cfg).sample(n);
    write_fvecs(&out, &data, dim).map_err(|e| CliError::Other(e.to_string()))?;
    println!(
        "wrote {} vectors of dim {dim} to {out}",
        fmt_count(n as u64)
    );
    Ok(Outcome::Clean)
}

fn cmd_build(args: &Args) -> Result<Outcome, CliError> {
    let base_path = args.require("base")?;
    let out = args.require("out")?;
    let partitions = args.usize("partitions", 8)?;
    let seed = args.u64("seed", 0)?;

    let base = read_fvecs(&base_path).map_err(|e| load_err(&format!("reading {base_path}"), e))?;
    if base.is_empty() {
        return Err(CliError::Other("base file holds no vectors".into()));
    }
    let dim = base.dim;
    if dim % 8 != 0 {
        return Err(CliError::Other(format!(
            "dim {dim} is not a multiple of 8 (PQ 8x8 requires it)"
        )));
    }

    // Training set: explicit file, or a sample of the base.
    let train: Vec<f32> = match args.get("train") {
        Some(path) => {
            let t = read_fvecs(path).map_err(|e| load_err(&format!("reading {path}"), e))?;
            if t.dim != dim {
                return Err(CliError::Other(format!(
                    "train dim {} != base dim {dim}",
                    t.dim
                )));
            }
            t.data
        }
        None => {
            let want = 20_000.min(base.len());
            let stride = (base.len() / want).max(1);
            let mut sample = Vec::with_capacity(want * dim);
            for i in (0..base.len()).step_by(stride) {
                sample.extend_from_slice(&base.data[i * dim..(i + 1) * dim]);
            }
            sample
        }
    };

    println!(
        "building: {} base vectors, dim {dim}, {partitions} partitions, {} threads",
        fmt_count(base.len() as u64),
        pqfs_pool::ThreadPool::global().threads()
    );
    let mut config = IvfadcConfig::new(dim, partitions).with_seed(seed);
    if let Some(spec) = args.get("backends") {
        let backends: Vec<SearchBackend> = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse())
            .collect::<Result<_, _>>()
            .map_err(CliError::Other)?;
        if backends.is_empty() {
            return Err(CliError::Other(
                "--backends must name at least one backend".into(),
            ));
        }
        config = config.with_backends(backends);
    }
    let (index, ms) = time_ms(|| IvfadcIndex::build(&train, &base.data, &config));
    let index = index.map_err(|e| CliError::Other(e.to_string()))?;
    println!("built in {:.1} s", ms / 1e3);
    index
        .save_file(&out)
        .map_err(|e| CliError::Other(e.to_string()))?;
    println!("saved to {out}");
    Ok(Outcome::Clean)
}

fn cmd_info(args: &Args) -> Result<Outcome, CliError> {
    let path = args.require("index")?;
    let index =
        IvfadcIndex::load_file(&path).map_err(|e| load_err(&format!("loading {path}"), e))?;
    let sizes = index.partition_sizes();
    println!("index: {path}");
    println!("  vectors     : {}", fmt_count(index.len() as u64));
    println!("  dim         : {}", index.coarse().dim());
    println!("  pq          : {}", index.pq().config());
    println!("  partitions  : {}", index.num_partitions());
    println!(
        "  sizes       : min {} / avg {} / max {}",
        sizes.iter().min().unwrap_or(&0),
        if sizes.is_empty() {
            0
        } else {
            sizes.iter().sum::<usize>() / sizes.len()
        },
        sizes.iter().max().unwrap_or(&0)
    );
    println!(
        "  fast scan   : {}",
        if index.has_fastscan() { "yes" } else { "no" }
    );
    println!(
        "  code memory : {} bytes (row-major) / {} bytes (grouped)",
        fmt_count(index.code_memory_bytes(SearchBackend::Naive) as u64),
        fmt_count(index.code_memory_bytes(SearchBackend::FastScan) as u64)
    );
    Ok(Outcome::Clean)
}

fn cmd_query(args: &Args) -> Result<Outcome, CliError> {
    let index_path = args.require("index")?;
    let query_path = args.require("queries")?;
    let topk = args.usize("topk", 100)?;
    let keep = args.f64("keep", 0.005)?;
    let nprobe = args.usize("nprobe", 1)?;
    let deadline = match args.get("deadline-ms") {
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| {
                CliError::Other(format!("--deadline-ms expects milliseconds, got '{v}'"))
            })?;
            Some(Duration::from_millis(ms))
        }
        None => None,
    };
    // Backend names come straight from the scan registry: every kernel the
    // workspace knows is selectable here with no CLI changes.
    let backend: SearchBackend = args
        .get("backend")
        .map(String::as_str)
        .unwrap_or("fastscan")
        .parse()
        .map_err(CliError::Other)?;

    let index = IvfadcIndex::load_file(&index_path)
        .map_err(|e| load_err(&format!("loading {index_path}"), e))?;
    let queries =
        read_fvecs(&query_path).map_err(|e| load_err(&format!("reading {query_path}"), e))?;
    if queries.dim != index.coarse().dim() {
        return Err(CliError::Other(format!(
            "query dim {} != index dim {}",
            queries.dim,
            index.coarse().dim()
        )));
    }

    let tracing = args.get("trace").map(String::as_str) == Some("true");
    if args.get("batch").map(String::as_str) == Some("true") {
        if tracing {
            return Err(CliError::Other(
                "--trace is per-query; it is not available with --batch true".into(),
            ));
        }
        return query_batch(&index, &queries.data, topk, backend, keep, nprobe, deadline);
    }

    let mut times = Vec::new();
    let mut degraded = false;
    // One trace reused across queries (reset keeps its allocation).
    let mut trace = pqfs_obs::QueryTrace::new();
    for (qi, q) in queries.data.chunks_exact(queries.dim).enumerate() {
        let (outcome, ms) = time_ms(|| {
            if tracing {
                index.search_probes_traced(
                    q,
                    topk,
                    backend,
                    keep,
                    nprobe,
                    deadline,
                    pqfs_pool::ThreadPool::global(),
                    &mut trace,
                )
            } else if nprobe > 1 || deadline.is_some() {
                index.search_probes_budgeted(q, topk, backend, keep, nprobe, deadline)
            } else {
                index.search(q, topk, backend, keep)
            }
        });
        let outcome = outcome.map_err(|e| CliError::Other(e.to_string()))?;
        if tracing {
            eprint!("query {qi} {}", trace.render_waterfall());
        }
        times.push(ms);
        let preview: Vec<String> = outcome
            .neighbors
            .iter()
            .take(5)
            .map(|n| format!("{}:{:.1}", n.id, n.dist))
            .collect();
        let health = outcome.health;
        let health_note = if health.degraded() {
            degraded = true;
            format!(
                " | probes ok {} failed {} skipped {}",
                health.probes_ok, health.probes_failed, health.probes_skipped
            )
        } else {
            String::new()
        };
        println!(
            "query {qi}: partition {} | {:.2} ms | pruned {:.1}%{health_note} | top: {}",
            outcome.partition,
            ms,
            100.0 * outcome.stats.pruned_fraction(),
            preview.join(" ")
        );
    }
    if times.len() > 1 {
        let s = Summary::from_values(&times);
        println!(
            "\n{} queries: mean {:.2} ms | median {:.2} ms | p95 {:.2} ms",
            times.len(),
            s.mean(),
            s.median(),
            s.percentile(95.0)
        );
    }
    Ok(if degraded {
        Outcome::Degraded
    } else {
        Outcome::Clean
    })
}

/// `pqfs query --batch true`: answer every query as one parallel batch on
/// the shared pool and report aggregate throughput.
#[allow(clippy::too_many_arguments)]
fn query_batch(
    index: &IvfadcIndex,
    queries: &[f32],
    topk: usize,
    backend: SearchBackend,
    keep: f64,
    nprobe: usize,
    deadline: Option<Duration>,
) -> Result<Outcome, CliError> {
    let dim = index.coarse().dim();
    let n = queries.len() / dim;
    let pool = pqfs_pool::ThreadPool::global();
    let (outcomes, ms) = time_ms(|| {
        if nprobe > 1 || deadline.is_some() {
            // Multi-probe has no batch entry point; each query fans its
            // probes across the same pool instead.
            queries
                .chunks_exact(dim)
                .map(|q| index.search_probes_budgeted(q, topk, backend, keep, nprobe, deadline))
                .collect::<Result<Vec<_>, _>>()
        } else {
            index.search_batch(queries, topk, backend, keep)
        }
    });
    let outcomes = outcomes.map_err(|e| CliError::Other(e.to_string()))?;
    let mut stats = pqfs_scan::ScanStats::default();
    let mut failed = 0usize;
    let mut skipped = 0usize;
    for o in &outcomes {
        stats.merge(&o.stats);
        failed += o.health.probes_failed;
        skipped += o.health.probes_skipped;
    }
    println!(
        "batch: {} queries | {} threads | {:.1} ms total | {:.0} queries/s | pruned {:.1}%",
        fmt_count(n as u64),
        pool.threads(),
        ms,
        n as f64 / (ms / 1e3),
        100.0 * stats.pruned_fraction()
    );
    if failed + skipped > 0 {
        println!("degraded: {failed} probe scans failed, {skipped} skipped by deadline");
        return Ok(Outcome::Degraded);
    }
    Ok(Outcome::Clean)
}

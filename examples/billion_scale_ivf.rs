//! Scaled-down reproduction of the paper's large-scale experiment (§5.7):
//! a 128-partition IVFADC index queried through the coarse index, comparing
//! PQ Scan and PQ Fast Scan response times and memory use.
//!
//! The paper runs 1 billion vectors (ANN_SIFT1B) on a 16 GB workstation;
//! this example defaults to 400 000 vectors so it runs anywhere, and scales
//! with `SCALE`:
//!
//! ```sh
//! cargo run --release --example billion_scale_ivf          # 400k vectors
//! SCALE=4000000 cargo run --release --example billion_scale_ivf
//! ```

use pq_fast_scan::metrics::{fmt_count, time_ms, Summary};
use pq_fast_scan::prelude::*;

fn main() {
    let dim = 128;
    let n_base: usize = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let n_queries = 40;
    let partitions = 128; // the paper's SIFT1B index shape

    println!("== large-scale IVFADC (paper §5.7, scaled) ==");
    println!(
        "base: {} vectors, {} partitions",
        fmt_count(n_base as u64),
        partitions
    );

    let mut dataset = SyntheticDataset::new(
        &SyntheticConfig::sift_like()
            .with_clusters(1024)
            .with_seed(31),
    );
    let train = dataset.sample(20_000);
    let base = dataset.sample(n_base);
    let queries = dataset.sample(n_queries);

    let config = IvfadcConfig::new(dim, partitions).with_seed(9);
    let (index, build_ms) = time_ms(|| IvfadcIndex::build(&train, &base, &config).expect("build"));
    let sizes = index.partition_sizes();
    println!(
        "built in {:.1} s; partition sizes: min {} / avg {} / max {}",
        build_ms / 1e3,
        sizes.iter().min().unwrap(),
        sizes.iter().sum::<usize>() / sizes.len(),
        sizes.iter().max().unwrap()
    );

    // Memory use (the Figure 20 memory plot): grouped+packed codes vs
    // row-major codes.
    let row = index.code_memory_bytes(SearchBackend::Naive);
    let packed = index.code_memory_bytes(SearchBackend::FastScan);
    println!("\ncode memory:");
    println!(
        "  PQ Scan (row-major)   {:>12} bytes",
        fmt_count(row as u64)
    );
    println!(
        "  Fast Scan (grouped)   {:>12} bytes  ({:+.1} %)",
        fmt_count(packed as u64),
        100.0 * (packed as f64 - row as f64) / row as f64
    );

    // Mean response time over the query set, per backend (keep=1%,
    // topk=100: the §5.7 parameters).
    let run = |backend: SearchBackend, keep: f64| -> (Summary, f64) {
        let mut times = Vec::new();
        let mut scanned = 0u64;
        for q in queries.chunks_exact(dim) {
            let (outcome, ms) = time_ms(|| index.search(q, 100, backend, keep).expect("search"));
            scanned += outcome.stats.scanned;
            times.push(ms);
        }
        (
            Summary::from_values(&times),
            scanned as f64 / times.len() as f64,
        )
    };

    let (slow, avg_scanned) = run(SearchBackend::Naive, 0.0);
    let (fast, _) = run(SearchBackend::FastScan, 0.01);
    println!(
        "\nmean response time (avg partition scanned: {:.0} vectors):",
        avg_scanned
    );
    println!("  PQ Scan   {:.2} ms", slow.mean());
    println!("  Fast Scan {:.2} ms", fast.mean());
    println!("  speedup   {:.1}x", slow.mean() / fast.mean());
    println!(
        "\n(the paper reports ~58 ms vs ~12 ms on 8 M-vector partitions of \
         SIFT1B — larger SCALE gets closer to that regime)"
    );
}

//! Figure 3 — scan times and per-vector operation counts for the four PQ
//! Scan implementations (naive, libpq, avx, gather).
//!
//! Wall-clock times are measured; the L1-load / instruction / µop columns
//! come from the exact operation-count model (`pqfs-metrics::counters`,
//! the hardware-counter substitute documented in DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig3
//! ```

use pqfs_bench::{env_usize, header, scale, Fixture, DIM};
use pqfs_core::TransposedCodes;
use pqfs_metrics::{fmt_f, measure_ms, mvecs_per_sec, pqscan_ops, PqScanImpl, Summary, TextTable};
use pqfs_scan::{scan_avx, scan_gather, scan_libpq, scan_naive};

fn main() {
    let n = (1_000_000.0 * scale()) as usize;
    let n_queries = env_usize("PQFS_QUERIES", 8);
    let topk = 100;
    header("fig3", "Figure 3, §3", &format!("partition {n}, topk {topk}, {n_queries} queries"));

    let mut fx = Fixture::train(3);
    let codes = fx.partition(n);
    let transposed = TransposedCodes::from_row_major(&codes);
    let queries = fx.queries(n_queries);

    let impls: [(&str, PqScanImpl); 4] = [
        ("naive", PqScanImpl::Naive),
        ("libpq", PqScanImpl::Libpq),
        ("avx", PqScanImpl::Avx),
        ("gather", PqScanImpl::Gather),
    ];

    let mut t = TextTable::new(vec![
        "impl",
        "scan time [ms]",
        "M vecs/s",
        "L1 loads/vec",
        "instr/vec",
        "uops/vec",
    ]);

    for (name, imp) in impls {
        let mut times = Vec::new();
        for q in queries.chunks_exact(DIM) {
            let tables = fx.tables(q);
            let reps = measure_ms(3, || match imp {
                PqScanImpl::Naive => scan_naive(&tables, &codes, topk),
                PqScanImpl::Libpq => scan_libpq(&tables, &codes, topk),
                PqScanImpl::Avx => scan_avx(&tables, &transposed, topk),
                PqScanImpl::Gather => scan_gather(&tables, &transposed, topk),
            });
            times.push(Summary::from_values(&reps).median());
        }
        let median = Summary::from_values(&times).median();
        let ops = pqscan_ops(imp, 8);
        t.row(vec![
            name.to_string(),
            fmt_f(median, 2),
            fmt_f(mvecs_per_sec(n, median), 0),
            fmt_f(ops.l1_loads, 1),
            fmt_f(ops.instructions, 1),
            fmt_f(ops.uops, 1),
        ]);
    }
    println!("{t}");
    println!(
        "paper shape (25 M vectors, Haswell laptop): all four implementations \
         are within ~2x of each other; libpq is not faster than naive despite \
         fewer loads; gather is the slowest despite the fewest instructions \
         (34 uops per gather). Expected ordering here: gather slowest, \
         naive/libpq/avx close together."
    );
}

//! Figure 14 + Table 4 — distribution of scan response times: PQ Fast Scan
//! vs the libpq PQ Scan on partition 0 (keep = 0.5 %, topk = 100).
//!
//! PQ Scan time is nearly constant across queries; Fast Scan time varies
//! with the achievable pruning, but its slowest quantiles still beat PQ
//! Scan by ~4x.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig14
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scale, Fixture, DIM};
use pqfs_metrics::{fmt_f, time_ms, Summary, TextTable};
use pqfs_scan::{Backend, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    let n = (1_000_000.0 * scale()) as usize;
    let n_queries = env_usize("PQFS_QUERIES", 60);
    header(
        "fig14+table4",
        "Figure 14 / Table 4, §5.2",
        &format!("partition {n}, keep 0.5%, topk 100, {n_queries} queries"),
    );

    let mut fx = Fixture::train(14);
    let codes = Arc::new(fx.partition(n));
    let opts = ScanOpts::default();
    let fastpq = Backend::FastScan
        .scanner(&opts)
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    let libpq = Backend::Libpq
        .scanner(&opts)
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    let queries = fx.queries(n_queries);
    let params = ScanParams::new(100).with_keep(0.005);

    let mut fast_times = Vec::new();
    let mut slow_times = Vec::new();
    for q in queries.chunks_exact(DIM) {
        let tables = fx.tables(q);
        let (fast, t_fast) = time_ms(|| fastpq.scan(&tables, &params).unwrap());
        let (slow, t_slow) = time_ms(|| libpq.scan(&tables, &params).unwrap());
        assert_eq!(fast.ids(), slow.ids(), "implementations must agree");
        fast_times.push(t_fast);
        slow_times.push(t_slow);
    }

    let fast = Summary::from_values(&fast_times);
    let slow = Summary::from_values(&slow_times);

    println!("Table 4 — response time distribution [ms]:");
    let mut t = TextTable::new(vec!["", "Mean", "25%", "Median", "75%", "95%"]);
    let row = |name: &str, s: &Summary| {
        let (mean, p25, med, p75, p95) = s.table4_row();
        vec![
            name.to_string(),
            fmt_f(mean, 2),
            fmt_f(p25, 2),
            fmt_f(med, 2),
            fmt_f(p75, 2),
            fmt_f(p95, 2),
        ]
    };
    t.row(row("PQ Scan", &slow));
    t.row(row("PQ Fast Scan", &fast));
    let speedup = |p: f64| slow.percentile(p) / fast.percentile(p);
    t.row(vec![
        "Speedup".to_string(),
        fmt_f(slow.mean() / fast.mean(), 1),
        fmt_f(speedup(25.0), 1),
        fmt_f(speedup(50.0), 1),
        fmt_f(speedup(75.0), 1),
        fmt_f(speedup(95.0), 1),
    ]);
    println!("{t}");

    println!("Figure 14 — empirical CDF of scan times (value ms, cumulative fraction):");
    let mut cdf = TextTable::new(vec!["ms", "libpq", "fastpq"]);
    // Sample both CDFs on a common grid spanning both distributions.
    let lo = fast.min().min(slow.min());
    let hi = fast.max().max(slow.max());
    for i in 0..=10 {
        let x = lo + (hi - lo) * i as f64 / 10.0;
        let frac = |s: &Summary| {
            let c = s.cdf(200);
            c.iter()
                .take_while(|(v, _)| *v <= x)
                .last()
                .map(|&(_, f)| f)
                .unwrap_or(0.0)
        };
        cdf.row(vec![
            fmt_f(x, 2),
            fmt_f(frac(&slow), 2),
            fmt_f(frac(&fast), 2),
        ]);
    }
    println!("{cdf}");
    println!(
        "paper (25 M vectors): PQ Scan ~73.9 ms constant; Fast Scan mean 13.7 ms, \
         median speedup 5.7x, 95th-percentile speedup 4.1x. Expected shape here: \
         PQ Scan nearly a step function, Fast Scan dispersed but 4-6x faster."
    );
}

//! The Fast Scan driver: warm-up, quantization, kernel invocation (paper
//! Figure 6).

use crate::fastscan::kernel::{scan_all_portable, ResolvedKernel, ScanTables};
use crate::fastscan::layout::{FS_M, PORTION};
use crate::fastscan::FastScanIndex;
use crate::quantize::DistanceQuantizer;
use crate::result::{ScanResult, ScanStats};
use crate::ScanError;
use pqfs_core::{DistanceTables, TopK};

/// Per-query scan parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScanParams {
    /// Number of nearest neighbors to return.
    pub topk: usize,
    /// Fraction of the database scanned with plain PQ Scan to find the
    /// temporary nearest neighbor that sets `qmax` (paper §4.4; `keep`).
    /// The paper recommends 0.1 %–1 %; the default is 0.5 %.
    ///
    /// The paper takes the *first* `keep%` of its (arbitrarily ordered)
    /// database; our storage is grouped — i.e. sorted by code prefix — so a
    /// prefix would be a maximally biased sample. The warm-up therefore
    /// scans a **strided** sample of the grouped storage, which preserves
    /// the paper's intent (a representative sample of distances) on any
    /// storage order (DESIGN.md §3).
    pub keep: f64,
}

impl ScanParams {
    /// Parameters with the paper's default `keep = 0.5 %`.
    pub fn new(topk: usize) -> Self {
        ScanParams { topk, keep: 0.005 }
    }

    /// Replaces the `keep` fraction (clamped to `[0, 1]` at scan time).
    pub fn with_keep(mut self, keep: f64) -> Self {
        self.keep = keep;
        self
    }
}

/// Reusable per-thread scan state: the quantized table buffers a Fast Scan
/// query fills (one 256-entry byte table per grouped component plus the
/// 16-entry small tables).
///
/// Building these tables is the only per-query heap allocation of a
/// prepared Fast Scan query; batch drivers keep one `ScanScratch` per
/// worker thread so steady-state scanning allocates nothing but the result
/// vector. A default-constructed scratch is always valid — buffers grow on
/// first use and are reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct ScanScratch {
    pub(crate) tables: ScanTables,
}

pub(crate) fn scan(
    index: &FastScanIndex,
    tables: &DistanceTables,
    params: &ScanParams,
) -> Result<ScanResult, ScanError> {
    scan_with(index, tables, params, &mut ScanScratch::default())
}

pub(crate) fn scan_with(
    index: &FastScanIndex,
    tables: &DistanceTables,
    params: &ScanParams,
    scratch: &mut ScanScratch,
) -> Result<ScanResult, ScanError> {
    if tables.m() != 8 || tables.ksub() != 256 {
        return Err(ScanError::NeedsPq8x8 {
            m: tables.m(),
            ksub: tables.ksub(),
        });
    }
    let kernel = index.kernel().resolve()?;
    let grouped = index.grouped();
    let c = grouped.layout().c();
    let n = grouped.len();
    let mut heap = TopK::new(params.topk.max(1));
    let mut stats = ScanStats {
        scanned: n as u64,
        ..ScanStats::default()
    };
    if n == 0 {
        return Ok(ScanResult {
            neighbors: Vec::new(),
            stats,
        });
    }

    // ---- Warm-up: plain PQ Scan over a strided keep% sample (§4.4). ----
    // Sampled vectors are pushed into the real heap and excluded from the
    // fast path, so the overall result is exactly PQ Scan's.
    let target = (params.keep.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    let stride = n.checked_div(target).map_or(0, |s| s.max(1));
    let mut warm = 0u64;
    if stride > 0 {
        for g in grouped.groups() {
            // First multiple of `stride` at or after the group start.
            let mut pos = g.start.div_ceil(stride) * stride;
            while pos < g.start + g.len {
                let code = grouped.read_code(g, pos - g.start);
                heap.push(tables.distance(&code), grouped.id(pos) as u64);
                warm += 1;
                pos += stride;
            }
        }
    }
    stats.warmup = warm;

    // ---- Quantization setup (§4.4): qmax = distance to the temporary
    // nearest neighbor, falling back to the maximum possible distance.
    let qmax = if heap.is_full() {
        heap.threshold()
    } else {
        tables.max_sum()
    };
    let quantizer = DistanceQuantizer::new(tables, qmax, index.bins());

    // Quantized full tables for the grouped components (their 16-entry
    // portions become S_0..S_{c-1}, selected per group by the kernel),
    // written into the reusable scratch buffers...
    let scan_tables = &mut scratch.tables;
    scan_tables.grouped.resize_with(c, Vec::new);
    for (j, buf) in scan_tables.grouped.iter_mut().enumerate() {
        quantizer.quantize_table_into(j, tables.table(j), buf);
    }
    // ...and the minimum tables S_c..S_7, constant for the whole query
    // (portion minima computed in float domain as in [`min_table`], then
    // quantized — monotone, so this equals the minimum of quantized
    // entries).
    for j in c..FS_M {
        for (slot, portion) in scan_tables.small[j]
            .iter_mut()
            .zip(tables.table(j).chunks_exact(PORTION))
        {
            let min = portion.iter().copied().fold(f32::INFINITY, f32::min);
            *slot = quantizer.quantize_value(j, min);
        }
    }

    let threshold = quantizer.quantize_threshold(heap.threshold());

    // ---- Fast path: the kernel walks every group/block; this closure
    // verifies each surviving candidate.
    let mut verified = 0u64;
    let groups = grouped.groups();
    let mut current_threshold = threshold;
    let mut visit = |gi: usize, idx: usize| -> u8 {
        let g = &groups[gi];
        let pos = g.start + idx;
        // Warm-up members were already pushed; skip to avoid duplicates.
        if stride > 0 && pos % stride == 0 {
            return current_threshold;
        }
        let code = grouped.read_code(g, idx);
        let d = tables.distance(&code);
        verified += 1;
        if heap.push(d, grouped.id(pos) as u64) {
            current_threshold = quantizer.quantize_threshold(heap.threshold());
        }
        current_threshold
    };

    match kernel {
        ResolvedKernel::Portable => {
            scan_all_portable(grouped, scan_tables, threshold, &mut visit);
        }
        #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
        ResolvedKernel::Ssse3 => {
            // SAFETY: resolution verified SSSE3 support.
            unsafe {
                crate::fastscan::kernel::x86::scan_all_ssse3(
                    grouped,
                    scan_tables,
                    threshold,
                    &mut visit,
                );
            }
        }
        #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
        ResolvedKernel::Avx2 => {
            // SAFETY: resolution verified AVX2 support.
            unsafe {
                crate::fastscan::kernel::x86::scan_all_avx2(
                    grouped,
                    scan_tables,
                    threshold,
                    &mut visit,
                );
            }
        }
    }
    stats.verified = verified;

    // Differential shadow execution (feature `checked-kernels`): on a
    // sampled subset of scans, re-run the partition with both the SIMD
    // kernel and the portable oracle under a frozen threshold and assert
    // the candidate sequences are identical. The threshold is frozen
    // because the AVX2 pair kernel shares one threshold snapshot across a
    // block pair, so only static-threshold runs are defined to be
    // bit-identical (see `kernels_agree_under_dynamic_thresholds` for the
    // dynamic-threshold equivalence of the SSSE3 kernel).
    #[cfg(all(target_arch = "x86_64", feature = "avx2", feature = "checked-kernels"))]
    if kernel != ResolvedKernel::Portable && crate::checked::should_check() {
        shadow_check(kernel, grouped, scan_tables, threshold);
    }

    // A vector is "pruned" when its exact pqdistance was never computed in
    // the fast path; warm-up members are accounted separately, so the
    // invariant `warmup + pruned + verified == scanned` always holds.
    stats.pruned = n as u64 - stats.warmup - stats.verified;

    Ok(ScanResult {
        neighbors: heap.into_sorted(),
        stats,
    })
}

/// Re-runs one partition with the resolved SIMD kernel and the portable
/// oracle under a frozen threshold, asserting identical candidate
/// sequences. Panics (via [`crate::checked::assert_visits_match`]) on the
/// first divergence.
#[cfg(all(target_arch = "x86_64", feature = "avx2", feature = "checked-kernels"))]
fn shadow_check(
    kernel: ResolvedKernel,
    grouped: &crate::fastscan::grouping::GroupedCodes,
    scan_tables: &ScanTables,
    threshold: u8,
) {
    use crate::fastscan::kernel::x86;
    let name = match kernel {
        ResolvedKernel::Ssse3 => "fastscan.ssse3",
        ResolvedKernel::Avx2 => "fastscan.avx2",
        ResolvedKernel::Portable => return,
    };
    let mut simd = Vec::new();
    // SAFETY: `kernel` came out of `Kernel::resolve`, which verified the
    // matching CPU feature at runtime.
    unsafe {
        match kernel {
            ResolvedKernel::Ssse3 => {
                x86::scan_all_ssse3(grouped, scan_tables, threshold, &mut |g, i| {
                    simd.push((g, i));
                    threshold
                })
            }
            ResolvedKernel::Avx2 => {
                x86::scan_all_avx2(grouped, scan_tables, threshold, &mut |g, i| {
                    simd.push((g, i));
                    threshold
                })
            }
            ResolvedKernel::Portable => 0,
        }
    };
    // The portable oracle refreshes the per-group scratch registers inside
    // `small[..c]`, so it runs on a clone.
    let mut oracle_tables = scan_tables.clone();
    let mut oracle = Vec::new();
    scan_all_portable(grouped, &mut oracle_tables, threshold, &mut |g, i| {
        oracle.push((g, i));
        threshold
    });
    crate::checked::assert_visits_match(name, &simd, &oracle);
}

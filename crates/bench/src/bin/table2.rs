//! Table 2 — instruction properties of `gather` vs `pshufb` (Haswell), plus
//! a live microbenchmark of the two lookup strategies on this host.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin table2
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, Fixture};
use pqfs_metrics::{measure_ms, Summary, TextTable, GATHER, PSHUFB};
use pqfs_scan::{Backend, ScanOpts, ScanParams};
use std::sync::Arc;

fn main() {
    header(
        "table2",
        "Table 2, §3.2/§4",
        "instruction model + host microbenchmark",
    );

    let mut t = TextTable::new(vec![
        "Inst.",
        "Lat.",
        "Through.",
        "uops",
        "# elem",
        "elem size",
    ]);
    for props in [GATHER, PSHUFB] {
        t.row(vec![
            props.name.to_string(),
            props.latency.to_string(),
            format!("{}", props.throughput),
            props.uops.to_string(),
            props
                .elements
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no limit".into()),
            format!("{} bits", props.elem_bits),
        ]);
    }
    println!("{t}");

    // Host microbenchmark: per-element lookup cost of the gather-based scan
    // vs the pshufb-based Fast Scan kernel on one partition.
    let n = env_usize("PQFS_N", 200_000);
    let reps = env_usize("PQFS_QUERIES", 5);
    println!("microbenchmark: {n} vectors, {reps} queries\n");

    let mut fx = Fixture::train(2);
    let codes = Arc::new(fx.partition(n));
    let opts = ScanOpts::default();
    let gather = Backend::Gather
        .scanner(&opts)
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    let index = Backend::FastScan
        .scanner(&opts)
        .prepare(Arc::clone(&codes))
        .expect("prepare");
    let queries = fx.queries(reps);
    let params = ScanParams::new(100);

    let mut gather_ns = Vec::new();
    let mut pshufb_ns = Vec::new();
    for q in queries.chunks_exact(pqfs_bench::DIM) {
        let tables = fx.tables(q);
        let g = measure_ms(3, || gather.scan(&tables, &params).unwrap());
        // gather performs m=8 lookups per vector.
        gather_ns.push(Summary::from_values(&g).median() * 1e6 / (n as f64 * 8.0));
        let f = measure_ms(3, || index.scan(&tables, &params).unwrap());
        // fast scan performs 8 in-register lookups per vector.
        pshufb_ns.push(Summary::from_values(&f).median() * 1e6 / (n as f64 * 8.0));
    }
    let g = Summary::from_values(&gather_ns).median();
    let p = Summary::from_values(&pshufb_ns).median();
    println!("measured cost per table lookup on this host:");
    println!("  gather-based scan : {g:.3} ns/lookup");
    println!("  pshufb fast scan  : {p:.3} ns/lookup");
    println!("  ratio             : {:.1}x", g / p);
    println!(
        "\npaper: gather decodes to 34 uops with 18-cycle latency, pshufb to 1 uop \
         with 1-cycle latency — the architectural reason Fast Scan wins."
    );
}

//! Lloyd's k-means with k-means++ initialization.
//!
//! This is the "Lloyd-optimal quantizer" builder of paper §2.1 (reference
//! \[20\]: S. Lloyd, *Least squares quantization in PCM*). It trains both the
//! `m` sub-quantizers of a product quantizer and the coarse quantizer of the
//! IVFADC index.

use crate::distance::{l2_sq, nearest_centroid};
use crate::KMeansError;
use pqfs_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows per assignment-step task. Fixed (never derived from the pool size)
/// so the chunk-local inertia partial sums — and therefore the whole
/// training run — are bit-identical for any thread count.
const ASSIGN_CHUNK: usize = 1024;

/// The Lloyd assignment step over fixed-size row chunks on the shared pool:
/// fills `assignment` and `dists` and returns the inertia as the chunk
/// partial sums added in chunk order.
fn assign_step(
    data: &[f32],
    dim: usize,
    centroids: &[f32],
    assignment: &mut [u32],
    dists: &mut [f32],
    pool: &ThreadPool,
) -> f64 {
    let mut pieces: Vec<(usize, &mut [u32], &mut [f32])> =
        Vec::with_capacity(assignment.len().div_ceil(ASSIGN_CHUNK));
    {
        let mut a = &mut *assignment;
        let mut d = &mut *dists;
        let mut offset = 0usize;
        while !a.is_empty() {
            let take = ASSIGN_CHUNK.min(a.len());
            let (a_head, a_tail) = a.split_at_mut(take);
            let (d_head, d_tail) = d.split_at_mut(take);
            pieces.push((offset, a_head, d_head));
            offset += take;
            a = a_tail;
            d = d_tail;
        }
    }
    let partials = pool.parallel_map_mut(&mut pieces, |_, (offset, a, d)| {
        let rows = &data[*offset * dim..(*offset + a.len()) * dim];
        let mut local = 0f64;
        for (k, v) in rows.chunks_exact(dim).enumerate() {
            let (c, dist) = nearest_centroid(v, centroids, dim);
            a[k] = c as u32;
            d[k] = dist;
            local += dist as f64;
        }
        local
    });
    partials.iter().sum()
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// k-means++ seeding (D² weighted sampling). Slower to initialize but
    /// converges in fewer Lloyd iterations and to better codebooks; the
    /// default everywhere in the reproduction.
    #[default]
    KMeansPlusPlus,
    /// Uniform sampling of `k` distinct input points.
    Random,
}

/// Training configuration for [`train`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of centroids (`k*` for a sub-quantizer, coarse `k` for IVF).
    pub k: usize,
    /// Upper bound on Lloyd iterations.
    pub max_iters: usize,
    /// Early-stop threshold: stop when the relative inertia improvement of
    /// one iteration falls below this value.
    pub tol: f64,
    /// RNG seed; identical seeds give identical codebooks.
    pub seed: u64,
    /// Centroid initialization strategy.
    pub init: InitMethod,
}

impl KMeansConfig {
    /// Configuration with library defaults (`max_iters = 25`, `tol = 1e-4`,
    /// k-means++ init, seed 0).
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 25,
            tol: 1e-4,
            seed: 0,
            init: InitMethod::default(),
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the iteration bound.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Replaces the initialization strategy.
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }
}

/// A trained k-means model: the codebook of a Lloyd-optimal quantizer.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<f32>,
    dim: usize,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Row-major `k × dim` centroid matrix (the codebook `C`).
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// The `i`-th centroid.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len() / self.dim
    }

    /// Dimensionality of the quantized space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Final sum of squared distances of every training point to its
    /// centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations actually run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Quantizes `v`: index and squared distance of its nearest centroid.
    /// This is `q(x) = argmin_{c_i} ||x − c_i||²` from paper §2.1.
    pub fn assign(&self, v: &[f32]) -> (usize, f32) {
        nearest_centroid(v, &self.centroids, self.dim)
    }

    /// Quantizes a batch of row-major vectors, returning one centroid index
    /// per row.
    pub fn assign_all(&self, data: &[f32]) -> Vec<u32> {
        data.chunks_exact(self.dim)
            .map(|v| self.assign(v).0 as u32)
            .collect()
    }

    /// Builds a model directly from a centroid matrix (used by tests and by
    /// the codebook-permutation step of the optimized assignment).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or not a multiple of `dim`.
    pub fn from_centroids(centroids: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0 && !centroids.is_empty() && centroids.len() % dim == 0);
        KMeans {
            centroids,
            dim,
            inertia: f64::NAN,
            iterations: 0,
        }
    }
}

fn validate(data: &[f32], dim: usize, k: usize) -> Result<usize, KMeansError> {
    if k == 0 {
        return Err(KMeansError::ZeroK);
    }
    if data.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if dim == 0 || data.len() % dim != 0 {
        return Err(KMeansError::BadShape {
            len: data.len(),
            dim,
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(KMeansError::NonFiniteInput);
    }
    let n = data.len() / dim;
    if n < k {
        return Err(KMeansError::KExceedsPoints { k, n });
    }
    Ok(n)
}

/// k-means++ seeding: the first centroid is uniform, each next one is drawn
/// with probability proportional to the squared distance to the nearest
/// centroid chosen so far.
fn init_plus_plus(data: &[f32], dim: usize, k: usize, rng: &mut StdRng) -> Vec<f32> {
    let n = data.len() / dim;
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);

    // Squared distance of every point to its nearest chosen centroid.
    let mut d2: Vec<f64> = data
        .chunks_exact(dim)
        .map(|v| l2_sq(v, &centroids[..dim]) as f64)
        .collect();

    for _ in 1..k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All remaining points coincide with chosen centroids; fall back
            // to uniform sampling so we still return k rows.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        let row = &data[chosen * dim..(chosen + 1) * dim];
        centroids.extend_from_slice(row);
        for (slot, v) in d2.iter_mut().zip(data.chunks_exact(dim)) {
            let d = l2_sq(v, row) as f64;
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

/// Uniform sampling of `k` distinct rows (partial Fisher–Yates).
fn init_random(data: &[f32], dim: usize, k: usize, rng: &mut StdRng) -> Vec<f32> {
    let n = data.len() / dim;
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        order.swap(i, j);
    }
    let mut centroids = Vec::with_capacity(k * dim);
    for &i in &order[..k] {
        centroids.extend_from_slice(&data[i * dim..(i + 1) * dim]);
    }
    centroids
}

/// Trains a k-means codebook on row-major `data` (`n × dim`, flattened).
///
/// Empty clusters are repaired each iteration by re-seeding them with the
/// point currently farthest from its assigned centroid, so the returned
/// model always has exactly `cfg.k` meaningful centroids.
///
/// # Errors
///
/// See [`KMeansError`] — empty input, shape mismatch, `k = 0`, `k > n`, or
/// non-finite coordinates.
pub fn train(data: &[f32], dim: usize, cfg: &KMeansConfig) -> Result<KMeans, KMeansError> {
    let n = validate(data, dim, cfg.k)?;
    let k = cfg.k;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut centroids = match cfg.init {
        InitMethod::KMeansPlusPlus => init_plus_plus(data, dim, k, &mut rng),
        InitMethod::Random => init_random(data, dim, k, &mut rng),
    };

    let mut assignment = vec![0u32; n];
    let mut dists = vec![0f32; n];
    let mut prev_inertia = f64::INFINITY;
    let mut inertia = f64::INFINITY;
    let mut iterations = 0usize;

    let mut sums = vec![0f64; k * dim];
    let mut counts = vec![0usize; k];

    let pool = ThreadPool::global();
    for iter in 0..cfg.max_iters.max(1) {
        iterations = iter + 1;

        // Assignment step — the hot loop of training, parallel over fixed
        // row chunks (decomposition never depends on the pool size, so
        // training is reproducible on any machine and thread count).
        inertia = assign_step(data, dim, &centroids, &mut assignment, &mut dists, pool);

        // Update step.
        sums.iter_mut().for_each(|s| *s = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, v) in data.chunks_exact(dim).enumerate() {
            let c = assignment[i] as usize;
            counts[c] += 1;
            let row = &mut sums[c * dim..(c + 1) * dim];
            for (s, &x) in row.iter_mut().zip(v) {
                *s += x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty-cluster repair: steal the point farthest from its
                // centroid. Deterministic (first maximal index).
                let (far, _) =
                    dists
                        .iter()
                        .enumerate()
                        .fold((0usize, f32::NEG_INFINITY), |acc, (i, &d)| {
                            if d > acc.1 {
                                (i, d)
                            } else {
                                acc
                            }
                        });
                centroids[c * dim..(c + 1) * dim]
                    .copy_from_slice(&data[far * dim..(far + 1) * dim]);
                dists[far] = 0.0; // don't steal the same point twice
            } else {
                let inv = 1.0 / counts[c] as f64;
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] * inv) as f32;
                }
            }
        }

        // Convergence check on relative improvement.
        if prev_inertia.is_finite() {
            let improvement = (prev_inertia - inertia) / prev_inertia.max(f64::MIN_POSITIVE);
            if improvement.abs() < cfg.tol {
                break;
            }
        }
        prev_inertia = inertia;
    }

    Ok(KMeans {
        centroids,
        dim,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(centers: &[[f32; 2]], per: usize, spread: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(centers.len() * per * 2);
        for c in centers {
            for _ in 0..per {
                data.push(c[0] + rng.gen_range(-spread..spread));
                data.push(c[1] + rng.gen_range(-spread..spread));
            }
        }
        data
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let centers = [[0.0f32, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0]];
        let data = blob_data(&centers, 50, 1.0, 42);
        let model = train(&data, 2, &KMeansConfig::new(4).with_seed(1)).unwrap();
        // Each true center must be within 2.0 of some learned centroid.
        for c in &centers {
            let (_, d) = model.assign(c);
            assert!(d < 4.0, "center {c:?} is {d} away from nearest centroid");
        }
        assert!(model.inertia() < 50.0 * 4.0 * 2.0 * 2.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blob_data(&[[0.0, 0.0], [10.0, 10.0]], 30, 1.0, 7);
        let a = train(&data, 2, &KMeansConfig::new(5).with_seed(9)).unwrap();
        let b = train(&data, 2, &KMeansConfig::new(5).with_seed(9)).unwrap();
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.iterations(), b.iterations());
    }

    #[test]
    fn different_seeds_may_differ_but_both_valid() {
        let data = blob_data(&[[0.0, 0.0], [10.0, 10.0]], 30, 2.0, 7);
        let a = train(&data, 2, &KMeansConfig::new(3).with_seed(1)).unwrap();
        let b = train(&data, 2, &KMeansConfig::new(3).with_seed(2)).unwrap();
        assert_eq!(a.k(), 3);
        assert_eq!(b.k(), 3);
    }

    #[test]
    fn k_equals_n_places_a_centroid_on_every_point() {
        let data = [0.0f32, 0.0, 5.0, 5.0, 9.0, 1.0];
        let model = train(&data, 2, &KMeansConfig::new(3).with_seed(3)).unwrap();
        for v in data.chunks_exact(2) {
            let (_, d) = model.assign(v);
            assert!(d < 1e-9, "point {v:?} not exactly represented");
        }
        assert!(model.inertia() < 1e-9);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let data = vec![1.0f32; 2 * 20]; // 20 identical 2-d points
        let model = train(&data, 2, &KMeansConfig::new(4).with_seed(0)).unwrap();
        assert_eq!(model.k(), 4);
        let (_, d) = model.assign(&[1.0, 1.0]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn random_init_also_works() {
        let data = blob_data(&[[0.0, 0.0], [50.0, 50.0]], 40, 1.0, 11);
        let cfg = KMeansConfig::new(2)
            .with_seed(5)
            .with_init(InitMethod::Random);
        let model = train(&data, 2, &cfg).unwrap();
        let (c0, _) = model.assign(&[0.0, 0.0]);
        let (c1, _) = model.assign(&[50.0, 50.0]);
        assert_ne!(c0, c1);
    }

    #[test]
    fn inertia_never_increases_with_more_iterations() {
        let data = blob_data(&[[0.0, 0.0], [8.0, 3.0], [1.0, 9.0]], 60, 3.0, 13);
        let short = train(
            &data,
            2,
            &KMeansConfig::new(6).with_seed(2).with_max_iters(1),
        )
        .unwrap();
        let long = train(
            &data,
            2,
            &KMeansConfig::new(6).with_seed(2).with_max_iters(30),
        )
        .unwrap();
        assert!(long.inertia() <= short.inertia() + 1e-9);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            train(&[], 2, &KMeansConfig::new(2)).unwrap_err(),
            KMeansError::EmptyInput
        );
        assert_eq!(
            train(&[1.0, 2.0, 3.0], 2, &KMeansConfig::new(1)).unwrap_err(),
            KMeansError::BadShape { len: 3, dim: 2 }
        );
        assert_eq!(
            train(&[1.0, 2.0], 2, &KMeansConfig::new(0)).unwrap_err(),
            KMeansError::ZeroK
        );
        assert_eq!(
            train(&[1.0, 2.0], 2, &KMeansConfig::new(2)).unwrap_err(),
            KMeansError::KExceedsPoints { k: 2, n: 1 }
        );
        assert_eq!(
            train(&[1.0, f32::NAN], 2, &KMeansConfig::new(1)).unwrap_err(),
            KMeansError::NonFiniteInput
        );
    }

    #[test]
    fn training_is_identical_for_any_pool_size() {
        // Over 2×ASSIGN_CHUNK points so the parallel path really splits.
        let data = blob_data(&[[0.0, 0.0], [40.0, 5.0], [5.0, 40.0]], 800, 4.0, 17);
        let cfg = KMeansConfig::new(8).with_seed(6);
        let serial = train(&data, 2, &cfg).unwrap();
        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let mut assignment = vec![0u32; data.len() / 2];
            let mut dists = vec![0f32; data.len() / 2];
            let par = assign_step(
                &data,
                2,
                serial.centroids(),
                &mut assignment,
                &mut dists,
                &pool,
            );
            let ser = assign_step(
                &data,
                2,
                serial.centroids(),
                &mut vec![0u32; data.len() / 2],
                &mut vec![0f32; data.len() / 2],
                &ThreadPool::new(1),
            );
            assert_eq!(par.to_bits(), ser.to_bits(), "{threads} threads");
            assert_eq!(assignment, serial.assign_all(&data), "{threads} threads");
        }
    }

    #[test]
    fn assign_all_matches_assign() {
        let data = blob_data(&[[0.0, 0.0], [10.0, 0.0]], 10, 1.0, 3);
        let model = train(&data, 2, &KMeansConfig::new(2).with_seed(4)).unwrap();
        let batch = model.assign_all(&data);
        for (i, v) in data.chunks_exact(2).enumerate() {
            assert_eq!(batch[i], model.assign(v).0 as u32);
        }
    }
}

//! Product quantization core for the PQ Fast Scan reproduction.
//!
//! This crate implements everything the paper's §2 ("Background") describes:
//!
//! * [`config`] — `PQ m×b` configurations ([`PqConfig`]): `m` sub-quantizers
//!   with `2^b` centroids each, including the paper's `PQ 16×4`, `PQ 8×8`
//!   and `PQ 4×16` trade-off points (Table 1);
//! * [`codebook`] — per-sub-quantizer codebooks with index permutation
//!   support (needed by the §4.3 optimized assignment);
//! * [`pq`] — the [`ProductQuantizer`]: training on sample vectors,
//!   encoding to compact codes, decoding (reconstruction), and the §4.3
//!   optimized centroid-index assignment;
//! * [`tables`] — per-query [`DistanceTables`] (paper Eq. 2) and the
//!   asymmetric distance computation (ADC, Eq. 1/3);
//! * [`layout`] — memory layouts for code storage: row-major (Figure 1),
//!   8-vector transposed (Figure 5, for gather-style access);
//! * [`topk`] — a bounded max-heap with deterministic tie-breaking, shared
//!   by every scan implementation so result sets are bit-comparable.
//!
//! # Quickstart
//!
//! ```
//! use pqfs_core::{PqConfig, ProductQuantizer, DistanceTables};
//!
//! // 8 sub-quantizers of 2^4 = 16 centroids over 16-dimensional vectors.
//! let config = PqConfig::new(16, 8, 4).unwrap();
//! let train: Vec<f32> = (0..64 * 16).map(|i| (i % 251) as f32).collect();
//! let pq = ProductQuantizer::train(&train, &config, 42).unwrap();
//!
//! let query = vec![1.5f32; 16];
//! let database = vec![2.0f32; 16];
//! let code = pq.encode(&database);
//! let tables = DistanceTables::compute(&pq, &query).unwrap();
//! let approx = tables.distance(&code);
//! assert!(approx.is_finite());
//! ```

#![forbid(unsafe_code)]

pub mod checksum;
pub mod codebook;
pub mod config;
mod error;
pub mod layout;
pub mod persist;
pub mod pq;
pub mod tables;
pub mod topk;

pub use checksum::{crc32, Crc32};
pub use codebook::Codebook;
pub use config::PqConfig;
pub use error::PqError;
pub use layout::{RowMajorCodes, TransposedCodes};
pub use persist::{load_pq, load_pq_file, save_pq, save_pq_file, PersistError};
pub use pq::ProductQuantizer;
pub use tables::DistanceTables;
pub use topk::{Neighbor, TopK};

//! The grouped, nibble-packed code layout of PQ Fast Scan (paper §4.2).
//!
//! Within a group, codes are stored in **blocks of 16 vectors**, transposed
//! component-major so one 16-byte SIMD load fetches the same component of
//! 16 vectors. Grouping fixes the high nibble of the first `c` components
//! (it *is* the group id), so only their low nibbles are stored — packed two
//! per byte. With the paper's `c = 4` this stores 6 bytes per vector instead
//! of 8, the §4.2 "25 % memory saving", and each lower-bound computation
//! loads exactly 6 bytes per vector.
//!
//! Block layout for grouping on `c` components (byte offsets within one
//! block of 16 vectors):
//!
//! ```text
//! [pair 0: comps 0&1 packed]  16 bytes   (low nibble = comp 0, high = comp 1)
//! …
//! [pair c/2−1]                16 bytes
//! [odd grouped comp]          16 bytes   (only when c is odd; low nibble)
//! [comp c   full bytes]       16 bytes
//! …
//! [comp 7   full bytes]       16 bytes
//! ```

use crate::fastscan::grouping::GroupKey;

/// Number of components Fast Scan codes must have (`PQ 8×8`).
pub const FS_M: usize = 8;

/// Vectors per packed block (one SIMD register width of bytes).
pub const FS_BLOCK: usize = 16;

/// Entries per small table / distance-table portion.
pub const PORTION: usize = 16;

/// Describes the packed block layout for a given number of grouping
/// components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    c: usize,
}

impl BlockLayout {
    /// Creates the layout for grouping on `c ∈ 0..=4` components.
    ///
    /// # Panics
    ///
    /// Panics if `c > 4`.
    pub fn new(c: usize) -> Self {
        assert!(c <= 4, "grouping is defined on at most 4 components");
        BlockLayout { c }
    }

    /// Number of grouping components.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of packed nibble pairs among the grouped components.
    pub fn pairs(&self) -> usize {
        self.c / 2
    }

    /// Whether an unpaired grouped component exists (odd `c`).
    pub fn has_odd(&self) -> bool {
        self.c % 2 == 1
    }

    /// Number of 16-byte arrays per block.
    pub fn arrays(&self) -> usize {
        self.pairs() + (self.c % 2) + (FS_M - self.c)
    }

    /// Bytes of one block of 16 vectors.
    pub fn bytes_per_block(&self) -> usize {
        self.arrays() * FS_BLOCK
    }

    /// Average stored bytes per vector (`6.0` for the paper's `c = 4`).
    pub fn bytes_per_vector(&self) -> f64 {
        self.bytes_per_block() as f64 / FS_BLOCK as f64
    }

    /// Byte offset of packed pair `p` (components `2p` and `2p+1`).
    #[inline]
    pub fn pair_offset(&self, p: usize) -> usize {
        debug_assert!(p < self.pairs());
        p * FS_BLOCK
    }

    /// Byte offset of the unpaired grouped component (odd `c` only).
    #[inline]
    pub fn odd_offset(&self) -> usize {
        debug_assert!(self.has_odd());
        self.pairs() * FS_BLOCK
    }

    /// Byte offset of ungrouped component `j` (`j ≥ c`), stored as full
    /// bytes.
    #[inline]
    pub fn ungrouped_offset(&self, j: usize) -> usize {
        debug_assert!(j >= self.c && j < FS_M);
        (self.pairs() + self.c % 2 + (j - self.c)) * FS_BLOCK
    }

    /// Writes the code of the vector at `lane` into `block`.
    ///
    /// Only the low nibbles of the first `c` components are stored; their
    /// high nibbles must equal the owning group's key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape violations.
    pub fn write_code(&self, block: &mut [u8], lane: usize, code: &[u8]) {
        debug_assert_eq!(block.len(), self.bytes_per_block());
        debug_assert!(lane < FS_BLOCK);
        debug_assert_eq!(code.len(), FS_M);
        for p in 0..self.pairs() {
            let lo = code[2 * p] & 0x0F;
            let hi = code[2 * p + 1] & 0x0F;
            block[self.pair_offset(p) + lane] = lo | (hi << 4);
        }
        if self.has_odd() {
            block[self.odd_offset() + lane] = code[self.c - 1] & 0x0F;
        }
        for j in self.c..FS_M {
            block[self.ungrouped_offset(j) + lane] = code[j];
        }
    }

    /// Reconstructs the full 8-component code of the vector at `lane`,
    /// restoring grouped high nibbles from the group `key`.
    #[inline]
    pub fn read_code(&self, block: &[u8], lane: usize, key: &GroupKey) -> [u8; FS_M] {
        debug_assert!(lane < FS_BLOCK);
        let mut code = [0u8; FS_M];
        for p in 0..self.pairs() {
            let byte = block[self.pair_offset(p) + lane];
            code[2 * p] = (key[2 * p] << 4) | (byte & 0x0F);
            code[2 * p + 1] = (key[2 * p + 1] << 4) | (byte >> 4);
        }
        if self.has_odd() {
            let byte = block[self.odd_offset() + lane];
            code[self.c - 1] = (key[self.c - 1] << 4) | (byte & 0x0F);
        }
        for j in self.c..FS_M {
            code[j] = block[self.ungrouped_offset(j) + lane];
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastscan::grouping::group_key;

    #[test]
    fn paper_layout_is_six_bytes_per_vector() {
        let l = BlockLayout::new(4);
        assert_eq!(l.arrays(), 6);
        assert_eq!(l.bytes_per_block(), 96);
        assert!((l.bytes_per_vector() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ungrouped_only_layout_is_eight_bytes() {
        let l = BlockLayout::new(0);
        assert_eq!(l.bytes_per_block(), 128);
        assert_eq!(l.pairs(), 0);
        assert!(!l.has_odd());
    }

    #[test]
    fn odd_c_layout_has_a_single_nibble_array() {
        let l = BlockLayout::new(3);
        assert_eq!(l.pairs(), 1);
        assert!(l.has_odd());
        // 1 pair + 1 odd + 5 full = 7 arrays.
        assert_eq!(l.arrays(), 7);
        assert_eq!(l.odd_offset(), 16);
        assert_eq!(l.ungrouped_offset(3), 32);
        assert_eq!(l.ungrouped_offset(7), 96);
    }

    #[test]
    fn write_read_roundtrip_for_every_c() {
        for c in 0..=4usize {
            let layout = BlockLayout::new(c);
            let mut block = vec![0u8; layout.bytes_per_block()];
            // Codes whose grouped high nibbles all equal the key.
            let mut codes = Vec::new();
            for lane in 0..FS_BLOCK {
                let mut code = [0u8; FS_M];
                for (j, slot) in code.iter_mut().enumerate() {
                    *slot = ((lane * 13 + j * 29) % 256) as u8;
                }
                // Force the grouped components into one group.
                for slot in code.iter_mut().take(c) {
                    *slot = (*slot & 0x0F) | 0xA0;
                }
                codes.push(code);
            }
            let key = group_key(&codes[0], c);
            for (lane, code) in codes.iter().enumerate() {
                layout.write_code(&mut block, lane, code);
            }
            for (lane, code) in codes.iter().enumerate() {
                assert_eq!(
                    layout.read_code(&block, lane, &key),
                    *code,
                    "c={c} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn offsets_do_not_overlap() {
        for c in 0..=4usize {
            let layout = BlockLayout::new(c);
            let mut seen = vec![false; layout.bytes_per_block()];
            let mut mark = |off: usize| {
                for b in &mut seen[off..off + FS_BLOCK] {
                    assert!(!*b, "overlap at array offset {off} (c={c})");
                    *b = true;
                }
            };
            for p in 0..layout.pairs() {
                mark(layout.pair_offset(p));
            }
            if layout.has_odd() {
                mark(layout.odd_offset());
            }
            for j in c..FS_M {
                mark(layout.ungrouped_offset(j));
            }
            assert!(
                seen.iter().all(|&b| b),
                "layout must cover the whole block (c={c})"
            );
        }
    }
}

//! End-to-end telemetry test: a full `gen → build → query` run must
//! produce a JSON metrics snapshot matching `metrics.schema.json`, a
//! Prometheus exposition that parses, and a `--trace` waterfall whose
//! stage sum accounts for the query wall time.
#![cfg(feature = "telemetry")]

use pqfs_obs::jsonv::{self, Value};
use std::path::PathBuf;
use std::process::{Command, Output};

/// Scratch directory for one test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("pqfs-metrics-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the `pqfs` binary with `args` and extra environment variables.
fn pqfs(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pqfs"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("pqfs binary runs")
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Builds a small index and returns (dir, index path, queries path).
fn build_fixture(tag: &str) -> (TempDir, String, String) {
    let dir = TempDir::new(tag);
    let base = dir.path("base.fvecs");
    let queries = dir.path("q.fvecs");
    let index = dir.path("ix.pqiv");
    assert_success(
        &pqfs(
            &[
                "gen", "--out", &base, "--n", "2000", "--dim", "16", "--seed", "1",
            ],
            &[],
        ),
        "gen base",
    );
    assert_success(
        &pqfs(
            &[
                "gen", "--out", &queries, "--n", "3", "--dim", "16", "--seed", "2",
            ],
            &[],
        ),
        "gen queries",
    );
    assert_success(
        &pqfs(
            &[
                "build",
                "--base",
                &base,
                "--out",
                &index,
                "--partitions",
                "4",
                "--threads",
                "2",
            ],
            &[],
        ),
        "build",
    );
    (dir, index, queries)
}

/// Validates `value` against the JSON Schema subset used by
/// `metrics.schema.json`: `type` (object/integer), `required`,
/// `properties`, `additionalProperties` (false or a schema), `minimum`.
fn validate_schema(value: &Value, schema: &Value, path: &str) -> Result<(), String> {
    let kind = schema
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: schema node lacks a 'type'"))?;
    match kind {
        "object" => {
            let obj = value
                .as_object()
                .ok_or_else(|| format!("{path}: expected an object"))?;
            if let Some(required) = schema.get("required").and_then(Value::as_array) {
                for name in required {
                    let name = name.as_str().unwrap();
                    if !obj.contains_key(name) {
                        return Err(format!("{path}: missing required key '{name}'"));
                    }
                }
            }
            let properties = schema.get("properties").and_then(Value::as_object);
            let additional = schema.get("additionalProperties");
            for (key, member) in obj {
                let child_path = format!("{path}/{key}");
                if let Some(prop) = properties.and_then(|p| p.get(key)) {
                    validate_schema(member, prop, &child_path)?;
                } else {
                    match additional {
                        Some(Value::Bool(false)) => {
                            return Err(format!("{path}: unexpected key '{key}'"));
                        }
                        Some(extra @ Value::Object(_)) => {
                            validate_schema(member, extra, &child_path)?;
                        }
                        _ => {}
                    }
                }
            }
            Ok(())
        }
        "integer" => {
            let n = value
                .as_u64()
                .ok_or_else(|| format!("{path}: expected a non-negative integer"))?;
            if let Some(min) = schema.get("minimum").and_then(Value::as_u64) {
                if n < min {
                    return Err(format!("{path}: {n} is below the minimum {min}"));
                }
            }
            Ok(())
        }
        other => Err(format!("{path}: unsupported schema type '{other}'")),
    }
}

/// A counter from the snapshot, summed over every labeled series of `name`.
fn counter_sum(snapshot: &Value, name: &str) -> u64 {
    snapshot
        .get("counters")
        .and_then(Value::as_object)
        .map(|counters| {
            counters
                .iter()
                .filter(|(k, _)| *k == name || k.starts_with(&format!("{name}{{")))
                .map(|(_, v)| v.as_u64().unwrap())
                .sum()
        })
        .unwrap_or(0)
}

#[test]
fn query_run_emits_schema_valid_json_metrics() {
    let (dir, index, queries) = build_fixture("json");
    let metrics = dir.path("metrics.json");
    // Multi-probe query with a fault injected into one partition's scan:
    // the run degrades (exit 3) and the snapshot must show pool, scan,
    // probe-outcome, and fault-site activity all at once.
    let out = pqfs(
        &[
            "query",
            "--index",
            &index,
            "--queries",
            &queries,
            "--topk",
            "5",
            "--nprobe",
            "4",
            "--metrics-out",
            &metrics,
        ],
        &[
            ("PQFS_THREADS", "2"),
            ("PQFS_FAILPOINTS", "ivf.search.scan.0=err"),
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "a faulted probe must degrade the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&metrics).unwrap();
    let snapshot = jsonv::parse(&text).expect("metrics snapshot parses as JSON");
    let schema_text = include_str!("metrics.schema.json");
    let schema = jsonv::parse(schema_text).expect("checked-in schema parses");
    validate_schema(&snapshot, &schema, "$").expect("snapshot matches metrics.schema.json");

    for name in [
        "pqfs_pool_tasks_total",
        "pqfs_scan_vectors_scanned_total",
        "pqfs_ivf_queries_total",
        "pqfs_ivf_tables_built_total",
    ] {
        assert!(counter_sum(&snapshot, name) > 0, "{name} must be nonzero");
    }
    assert_eq!(
        counter_sum(&snapshot, "pqfs_ivf_probes_total{outcome=\"ok\"}"),
        9
    );
    assert_eq!(
        counter_sum(&snapshot, "pqfs_ivf_probes_total{outcome=\"failed\"}"),
        3
    );
    assert_eq!(
        counter_sum(
            &snapshot,
            "pqfs_fault_injected_total{site=\"ivf.search.scan.0\"}"
        ),
        3
    );
    // Latency histograms observed every query and probe stage.
    let histograms = snapshot
        .get("histograms")
        .and_then(Value::as_object)
        .unwrap();
    let count_of = |name: &str| {
        histograms
            .get(name)
            .and_then(|h| h.get("count"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    assert_eq!(count_of("pqfs_ivf_query_ns"), 3);
    assert_eq!(count_of("pqfs_ivf_scan_ns"), 9);
}

#[test]
fn query_run_emits_parseable_prometheus_text() {
    let (dir, index, queries) = build_fixture("prom");
    let metrics = dir.path("metrics.prom");
    let out = pqfs(
        &[
            "query",
            "--index",
            &index,
            "--queries",
            &queries,
            "--topk",
            "5",
            "--nprobe",
            "2",
            "--metrics-out",
            &metrics,
        ],
        &[("PQFS_THREADS", "2")],
    );
    assert_success(&out, "query with --metrics-out");
    let text = std::fs::read_to_string(&metrics).unwrap();
    pqfs_obs::validate_prometheus(&text).expect("exposition passes the line-grammar check");
    assert!(text.contains("# TYPE pqfs_ivf_queries_total counter"));
    assert!(text.contains("# TYPE pqfs_ivf_query_ns histogram"));
    assert!(text.contains("pqfs_ivf_query_ns_bucket{le=\"+Inf\"} 3"));
}

#[test]
fn traced_query_waterfall_accounts_for_the_wall_time() {
    let (dir, index, queries) = build_fixture("trace");
    // Serial pool: every stage is a disjoint slice of the wall clock, so
    // the reported stage sum must account for (almost) all of it.
    let out = pqfs(
        &[
            "query",
            "--index",
            &index,
            "--queries",
            &queries,
            "--topk",
            "5",
            "--nprobe",
            "4",
            "--trace",
            "true",
        ],
        &[("PQFS_THREADS", "1")],
    );
    assert_success(&out, "query --trace true");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let mut checked = 0;
    for line in stderr.lines() {
        let Some(rest) = line.trim_start().strip_prefix("stage sum ") else {
            continue;
        };
        let pct: f64 = rest
            .split_once('(')
            .and_then(|(_, tail)| tail.strip_suffix("% of wall)"))
            .expect("stage-sum line has a percent-of-wall suffix")
            .parse()
            .expect("percent parses");
        // Sequential stages can only lose time to inter-stage overhead
        // (closure dispatch, trace bookkeeping); 15% slack absorbs CI
        // scheduling noise without letting real gaps through.
        assert!(
            (85.0..=110.0).contains(&pct),
            "stage sum covers {pct}% of wall, outside 85–110%:\n{stderr}"
        );
        checked += 1;
    }
    assert_eq!(checked, 3, "one waterfall per query:\n{stderr}");
    drop(dir);
}

//! CRC-32 (IEEE 802.3) for persistence integrity checking.
//!
//! The persist formats checksum every section and the whole file (see
//! `docs/FORMAT.md`), so a torn write, truncated download or bit flip in a
//! served artifact fails the load with a typed error instead of silently
//! corrupting query results. CRC-32 detects every single-bit and
//! single-byte error and all burst errors up to 32 bits — exactly the
//! corruption classes the torture suite injects.

/// The CRC-32 lookup table (reflected polynomial `0xEDB88320`), built at
/// compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// An incremental CRC-32 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The checksum of everything fed so far (the digest stays usable).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(bytes);
    digest.finish()
}

/// A [`std::io::Write`] adapter that digests every byte it forwards; used
/// by the persist writers to compute the whole-file footer checksum.
#[derive(Debug)]
pub struct CrcWrite<W> {
    inner: W,
    digest: Crc32,
}

impl<W: std::io::Write> CrcWrite<W> {
    /// Wraps `inner` with a fresh digest.
    pub fn new(inner: W) -> Self {
        CrcWrite {
            inner,
            digest: Crc32::new(),
        }
    }

    /// The checksum of everything written so far.
    pub fn crc(&self) -> u32 {
        self.digest.finish()
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: std::io::Write> std::io::Write for CrcWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.digest.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A [`std::io::Read`] adapter that digests every byte it yields; used by
/// the persist readers to verify the whole-file footer checksum.
#[derive(Debug)]
pub struct CrcRead<R> {
    inner: R,
    digest: Crc32,
}

impl<R: std::io::Read> CrcRead<R> {
    /// Wraps `inner` with a fresh digest.
    pub fn new(inner: R) -> Self {
        CrcRead {
            inner,
            digest: Crc32::new(),
        }
    }

    /// The checksum of everything read so far.
    pub fn crc(&self) -> u32 {
        self.digest.finish()
    }

    /// The wrapped reader (to read past the digested region, e.g. the
    /// stored footer checksum itself).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: std::io::Read> std::io::Read for CrcRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let mut digest = Crc32::new();
        for chunk in data.chunks(7) {
            digest.update(chunk);
        }
        assert_eq!(digest.finish(), crc32(&data));
    }

    #[test]
    fn every_single_byte_change_changes_the_crc() {
        let data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut mutated = data.clone();
            mutated[i] ^= 1;
            assert_ne!(crc32(&mutated), base, "flip at {i} undetected");
        }
    }

    #[test]
    fn adapters_digest_what_passes_through() {
        let data = b"checksummed payload";
        let mut w = CrcWrite::new(Vec::new());
        w.write_all(data).unwrap();
        assert_eq!(w.crc(), crc32(data));
        assert_eq!(w.into_inner(), data);

        let mut r = CrcRead::new(&data[..]);
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(r.crc(), crc32(data));
    }
}

//! Per-sub-quantizer codebooks.
//!
//! A codebook is the centroid set `C_j = (c_{j,0}, …, c_{j,k*−1})` of one
//! sub-quantizer (paper §2.1). Besides nearest-centroid assignment, the type
//! supports *index permutation*: the §4.3 optimized assignment relabels
//! centroids so that each 16-index portion holds mutually close centroids.
//! Permuting indexes changes nothing semantically — it is a bijective
//! renaming — which is exactly why Fast Scan can adopt it for free.

use pqfs_kmeans::distance::{distances_to_all, nearest_centroid};

/// The centroid set of one sub-quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    /// Row-major `ksub × dsub` centroid matrix.
    centroids: Vec<f32>,
    dsub: usize,
}

impl Codebook {
    /// Wraps a row-major `ksub × dsub` centroid matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or its length is not a multiple of
    /// `dsub`.
    pub fn new(centroids: Vec<f32>, dsub: usize) -> Self {
        assert!(
            dsub > 0 && !centroids.is_empty() && centroids.len() % dsub == 0,
            "centroid matrix must be a non-empty ksub x dsub"
        );
        Codebook { centroids, dsub }
    }

    /// Number of centroids `k*`.
    pub fn ksub(&self) -> usize {
        self.centroids.len() / self.dsub
    }

    /// Sub-vector dimensionality `d*`.
    pub fn dsub(&self) -> usize {
        self.dsub
    }

    /// The full row-major centroid matrix.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// The centroid with index `i` (`C_j[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= ksub`.
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.centroids[i * self.dsub..(i + 1) * self.dsub]
    }

    /// Index and squared distance of the centroid nearest to the sub-vector
    /// `v` — the sub-quantizer function `q_j`.
    pub fn quantize(&self, v: &[f32]) -> (usize, f32) {
        nearest_centroid(v, &self.centroids, self.dsub)
    }

    /// Fills `out[i] = ||v − C_j[i]||²` for every centroid — one row `D_j`
    /// of the distance tables (paper Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != ksub`.
    pub fn distances(&self, v: &[f32], out: &mut [f32]) {
        distances_to_all(v, &self.centroids, self.dsub, out);
    }

    /// Applies a permutation of centroid indexes: the centroid currently at
    /// index `perm[i]` moves to index `i`. Used by the §4.3 optimized
    /// assignment (`perm` lists old indexes in new order).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..ksub`.
    pub fn permute(&mut self, perm: &[usize]) {
        let k = self.ksub();
        assert_eq!(perm.len(), k, "permutation length must equal ksub");
        let mut seen = vec![false; k];
        for &p in perm {
            assert!(p < k && !seen[p], "perm must be a permutation of 0..ksub");
            seen[p] = true;
        }
        let mut permuted = Vec::with_capacity(self.centroids.len());
        for &old in perm {
            permuted.extend_from_slice(&self.centroids[old * self.dsub..(old + 1) * self.dsub]);
        }
        self.centroids = permuted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Codebook {
        // 4 centroids in 2-d at the corners of a square.
        Codebook::new(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 2)
    }

    #[test]
    fn quantize_finds_nearest() {
        let cb = sample();
        assert_eq!(cb.quantize(&[0.1, 0.1]).0, 0);
        assert_eq!(cb.quantize(&[0.9, 0.1]).0, 1);
        assert_eq!(cb.quantize(&[0.1, 0.9]).0, 2);
        assert_eq!(cb.quantize(&[0.9, 0.9]).0, 3);
    }

    #[test]
    fn distances_matches_manual_computation() {
        let cb = sample();
        let mut out = [0f32; 4];
        cb.distances(&[0.0, 0.0], &mut out);
        assert_eq!(out, [0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn permute_relabels_without_changing_geometry() {
        let mut cb = sample();
        let before = cb.quantize(&[0.9, 0.9]);
        cb.permute(&[3, 2, 1, 0]);
        let after = cb.quantize(&[0.9, 0.9]);
        // Same distance, new label.
        assert_eq!(before.1, after.1);
        assert_eq!(after.0, 0);
        assert_eq!(cb.centroid(0), &[1.0, 1.0]);
    }

    #[test]
    fn permute_identity_is_noop() {
        let mut cb = sample();
        let orig = cb.clone();
        cb.permute(&[0, 1, 2, 3]);
        assert_eq!(cb, orig);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permute_rejects_wrong_length() {
        sample().permute(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn permute_rejects_duplicates() {
        sample().permute(&[0, 1, 1, 3]);
    }
}

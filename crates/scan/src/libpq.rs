//! The `libpq`-style PQ Scan (paper §3.1).
//!
//! The libpq library distributed by the authors of \[14\] loads the whole
//! 8-byte `PQ 8×8` code as **one 64-bit word** and extracts the 8 centroid
//! indexes with shifts, cutting *mem1* accesses from 8 to 1 per vector
//! (the *mem2* table lookups remain 8). The paper observes it is not
//! actually faster than the naive scan on Haswell — the extra shift
//! instructions offset the saved loads — which our Figure 3 harness
//! reproduces.

use crate::result::{ScanResult, ScanStats};
use pqfs_core::{DistanceTables, RowMajorCodes, TopK};

/// Number of components this implementation is specialized for.
pub const LIBPQ_M: usize = 8;

/// Scans `PQ 8×8` codes using one 64-bit load + shifts per vector.
///
/// Returns exactly the same neighbors as [`crate::scan_naive`].
///
/// # Panics
///
/// Panics if `topk == 0`, `codes.m() != 8` or `tables.m() != 8`.
pub fn scan_libpq(tables: &DistanceTables, codes: &RowMajorCodes, topk: usize) -> ScanResult {
    assert_eq!(codes.m(), LIBPQ_M, "libpq scan is specialized for PQ 8x8");
    assert_eq!(tables.m(), LIBPQ_M, "tables must have m=8");
    let ksub = tables.ksub();
    let raw = tables.raw();
    let bytes = codes.as_bytes();
    let mut heap = TopK::new(topk);

    for (i, chunk) in bytes.chunks_exact(LIBPQ_M).enumerate() {
        // mem1: a single 64-bit load.
        let word = u64::from_le_bytes(
            chunk
                .try_into()
                .unwrap_or_else(|_| unreachable!("chunks_exact yields 8 bytes")),
        );
        // mem2: 8 table lookups addressed by shift+mask.
        let mut d = 0f32;
        for j in 0..LIBPQ_M {
            let index = ((word >> (8 * j)) & 0xFF) as usize;
            d += raw[j * ksub + index];
        }
        heap.push(d, i as u64);
    }

    ScanResult {
        neighbors: heap.into_sorted(),
        stats: ScanStats {
            scanned: codes.len() as u64,
            ..ScanStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::scan_naive;

    fn tables_8x16() -> DistanceTables {
        // 8 tables of 16 entries: D_j[i] = (j + 1) * i as float.
        let mut data = Vec::with_capacity(8 * 16);
        for j in 0..8 {
            for i in 0..16 {
                data.push(((j + 1) * i) as f32);
            }
        }
        DistanceTables::from_raw(data, 8, 16)
    }

    fn codes(n: usize) -> RowMajorCodes {
        let bytes: Vec<u8> = (0..n * 8).map(|i| ((i * 11 + 3) % 16) as u8).collect();
        RowMajorCodes::new(bytes, 8)
    }

    #[test]
    fn matches_naive_exactly() {
        let tables = tables_8x16();
        let codes = codes(100);
        for topk in [1usize, 5, 17, 100] {
            let a = scan_naive(&tables, &codes, topk);
            let b = scan_libpq(&tables, &codes, topk);
            assert_eq!(a.ids(), b.ids(), "topk={topk}");
            assert_eq!(a.distances(), b.distances(), "topk={topk}");
        }
    }

    #[test]
    fn word_extraction_is_little_endian_component_order() {
        let tables = tables_8x16();
        // A single code with distinct components 0..8.
        let codes = RowMajorCodes::new(vec![0, 1, 2, 3, 4, 5, 6, 7], 8);
        let expect: f32 = (0..8).map(|j| ((j + 1) * j) as f32).sum();
        let result = scan_libpq(&tables, &codes, 1);
        assert_eq!(result.distances(), vec![expect]);
    }

    #[test]
    #[should_panic(expected = "specialized for PQ 8x8")]
    fn rejects_non_pq8_codes() {
        let tables = tables_8x16();
        let bad = RowMajorCodes::new(vec![0, 0], 2);
        scan_libpq(&tables, &bad, 1);
    }
}

//! Binary persistence for a built IVFADC index.
//!
//! Building an index over a large base set costs minutes of training and
//! encoding; serving processes load the finished artifact instead. The
//! format is little-endian and versioned (`docs/FORMAT.md` has the full
//! specification):
//!
//! ```text
//! magic   "PQIV"           4 bytes
//! version u32              currently 3
//! header  section          dim u64, partitions u64, backend mask u8,
//!                          scan options (12 bytes)
//! centroids section        partitions × dim × f32
//! quantizer section        embedded pqfs-core persist format (v3)
//! partition sections       one per partition: count u64, ids, codes
//! footer  u32              CRC-32 of every preceding byte
//! ```
//!
//! Every *section* is length-prefixed (`u64`) and CRC-32-checksummed;
//! lengths and counts are validated against each other and against sanity
//! limits **before** allocation, so a corrupt prefix yields a typed error
//! instead of an OOM abort. The footer covers the whole file: any
//! single-byte flip or truncation fails the load. Version 1 and 2 files
//! (no checksums) are still read back losslessly.
//!
//! [`IvfadcIndex::save_file`] writes **atomically** (temp file + fsync +
//! rename): a crash mid-save never corrupts the published artifact.
//!
//! Backend scan state (transposed layouts, Fast Scan grouping) is *rebuilt*
//! on load through the scan registry (preparation is deterministic and
//! costs a small fraction of what decoding the codes from disk does).
//!
//! Failpoint sites (see `pqfs_fault`): `ivf.persist.read`,
//! `ivf.persist.write`, `ivf.persist.create`, `ivf.persist.fsync`,
//! `ivf.persist.rename`.

use crate::coarse::CoarseQuantizer;
use crate::index::{IvfadcConfig, IvfadcIndex, SearchBackend};
use pqfs_core::checksum::{crc32, CrcRead, CrcWrite};
use pqfs_core::persist::{
    atomic_write_file, decode_f32s, expect_eof, load_pq, read_exact_vec, read_section, save_pq,
    write_section, AtomicWriteSites, PersistError,
};
use pqfs_fault::FaultRead;
use pqfs_scan::{Kernel, ScanOpts};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PQIV";
const VERSION: u32 = 3;

/// Sanity limits applied before any size-driven allocation.
const MAX_DIM: u64 = 1 << 20;
const MAX_PARTITIONS: u64 = 1 << 24;
const MAX_QUANTIZER_SECTION: u64 = 1 << 32;
const MAX_PARTITION_SECTION: u64 = 1 << 40;

/// Encodes a backend set as a bitmask over [`SearchBackend::ALL`] order.
fn backends_to_mask(backends: &[SearchBackend]) -> u8 {
    let mut mask = 0u8;
    for (bit, b) in SearchBackend::ALL.iter().enumerate() {
        if backends.contains(b) {
            mask |= 1 << bit;
        }
    }
    mask
}

/// Encodes the scan options as the fixed 12-byte block.
fn write_scan_opts(w: &mut impl Write, opts: &ScanOpts) -> io::Result<()> {
    w.write_all(&opts.keep.to_le_bytes())?;
    w.write_all(&opts.bins.to_le_bytes())?;
    let gc = match opts.group_components {
        Some(c) if c <= 4 => c as u8,
        _ => u8::MAX,
    };
    w.write_all(&[gc])?;
    let kernel = match opts.kernel {
        Kernel::Auto => 0u8,
        Kernel::Portable => 1,
        Kernel::Ssse3 => 2,
        Kernel::Avx2 => 3,
    };
    w.write_all(&[kernel])?;
    Ok(())
}

/// Little-endian `u64` from an 8-byte slice (callers slice exact lengths
/// out of already length-checked buffers, so the conversion cannot fail).
fn le_u64(bytes: &[u8]) -> u64 {
    let arr: [u8; 8] = bytes
        .try_into()
        .unwrap_or_else(|_| unreachable!("caller slices exactly 8 bytes"));
    u64::from_le_bytes(arr)
}

/// Little-endian `f64`, same contract as [`le_u64`].
fn le_f64(bytes: &[u8]) -> f64 {
    let arr: [u8; 8] = bytes
        .try_into()
        .unwrap_or_else(|_| unreachable!("caller slices exactly 8 bytes"));
    f64::from_le_bytes(arr)
}

/// Decodes the fixed 12-byte scan-options block.
fn read_scan_opts(r: &mut impl Read) -> Result<ScanOpts, PersistError> {
    let mut buf = [0u8; 12];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Format("truncated scan options".into()))?;
    let keep = le_f64(&buf[0..8]);
    if !(0.0..=1.0).contains(&keep) {
        return Err(PersistError::Format(format!("keep {keep} outside [0, 1]")));
    }
    let bins = u16::from_le_bytes([buf[8], buf[9]]);
    let group_components = match buf[10] {
        u8::MAX => None,
        c if c <= 4 => Some(c as usize),
        c => return Err(PersistError::Format(format!("bad group_components {c}"))),
    };
    let kernel = match buf[11] {
        0 => Kernel::Auto,
        1 => Kernel::Portable,
        2 => Kernel::Ssse3,
        3 => Kernel::Avx2,
        k => return Err(PersistError::Format(format!("bad kernel tag {k}"))),
    };
    Ok(ScanOpts {
        keep,
        bins,
        group_components,
        kernel,
    })
}

/// Decodes a backend bitmask (unknown future bits are ignored).
fn mask_to_backends(mask: u8) -> Vec<SearchBackend> {
    SearchBackend::ALL
        .into_iter()
        .enumerate()
        .filter(|(bit, _)| mask & (1 << bit) != 0)
        .map(|(_, b)| b)
        .collect()
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Maps an EOF during a structured read to a typed truncation error.
fn truncated(what: &'static str, e: io::Error) -> PersistError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        PersistError::Format(format!("truncated {what}"))
    } else {
        PersistError::Io(e)
    }
}

/// Reads a checksummed section whose length is not known a priori, bounded
/// by `max` (rejected before allocation when exceeded).
fn read_section_bounded(
    r: &mut impl Read,
    what: &'static str,
    max: u64,
) -> Result<Vec<u8>, PersistError> {
    let len = read_u64(r).map_err(|e| truncated(what, e))?;
    if len > max {
        return Err(PersistError::Limit {
            what,
            value: len,
            max,
        });
    }
    let bytes = read_exact_vec(r, len, what)?;
    let stored = read_u32(r).map_err(|e| truncated(what, e))?;
    let computed = crc32(&bytes);
    if stored != computed {
        return Err(PersistError::Checksum {
            section: what,
            stored,
            computed,
        });
    }
    Ok(bytes)
}

impl IvfadcIndex {
    /// Writes the index to `w` in format v3 (checksummed sections plus a
    /// whole-file footer checksum).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on write failures.
    pub fn save(&self, w: &mut impl Write) -> Result<(), PersistError> {
        let dim = self.coarse().dim();
        let parts = self.num_partitions();
        let mut cw = CrcWrite::new(&mut *w);
        cw.write_all(MAGIC)?;
        cw.write_all(&VERSION.to_le_bytes())?;

        let mut header = Vec::with_capacity(29);
        header.extend_from_slice(&(dim as u64).to_le_bytes());
        header.extend_from_slice(&(parts as u64).to_le_bytes());
        header.push(backends_to_mask(&self.prepared_backends()));
        write_scan_opts(&mut header, self.scan_opts())?;
        write_section(&mut cw, &header)?;

        let mut centroids = Vec::with_capacity(parts * dim * 4);
        for p in 0..parts {
            for &v in self.coarse().centroid(p) {
                centroids.extend_from_slice(&v.to_le_bytes());
            }
        }
        write_section(&mut cw, &centroids)?;

        let mut pq_bytes = Vec::new();
        save_pq(self.pq(), &mut pq_bytes)?;
        write_section(&mut cw, &pq_bytes)?;

        for p in 0..parts {
            let (ids, codes) = self.partition_raw(p);
            let mut payload = Vec::with_capacity(8 + ids.len() * 8 + codes.as_bytes().len());
            payload.extend_from_slice(&(ids.len() as u64).to_le_bytes());
            for &id in ids {
                payload.extend_from_slice(&id.to_le_bytes());
            }
            payload.extend_from_slice(codes.as_bytes());
            write_section(&mut cw, &payload)?;
        }

        let footer = cw.crc();
        w.write_all(&footer.to_le_bytes())?;
        Ok(())
    }

    /// Reads an index previously written by [`save`](Self::save) (v3) or
    /// by the v1/v2 writers (no checksums).
    ///
    /// # Errors
    ///
    /// [`PersistError`] on IO failures, bad magic/version, truncation,
    /// checksum mismatches, absurd stored sizes, or an invalid embedded
    /// quantizer — never a panic.
    pub fn load(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut cr = CrcRead::new(&mut *r);
        let mut magic = [0u8; 4];
        cr.read_exact(&mut magic)
            .map_err(|e| truncated("magic", e))?;
        if &magic != MAGIC {
            return Err(PersistError::Format(format!("bad magic {magic:?}")));
        }
        let version = read_u32(&mut cr).map_err(|e| truncated("version", e))?;
        match version {
            1 | 2 => Self::load_legacy(&mut cr, version),
            3 => Self::load_v3(cr),
            v => Err(PersistError::Format(format!(
                "unsupported version {v} (this build reads 1, 2 and {VERSION})"
            ))),
        }
    }

    /// The v3 body: checksummed sections plus the whole-file footer.
    fn load_v3(mut cr: CrcRead<&mut impl Read>) -> Result<Self, PersistError> {
        let header = read_section(&mut cr, "index header", 29)?;
        let dim = le_u64(&header[0..8]);
        let parts = le_u64(&header[8..16]);
        let backends = mask_to_backends(header[16]);
        let opts = read_scan_opts(&mut &header[17..29])?;
        if dim == 0 || parts == 0 {
            return Err(PersistError::Format(
                "empty dimension or partition count".into(),
            ));
        }
        if dim > MAX_DIM {
            return Err(PersistError::Limit {
                what: "dimension",
                value: dim,
                max: MAX_DIM,
            });
        }
        if parts > MAX_PARTITIONS {
            return Err(PersistError::Limit {
                what: "partition count",
                value: parts,
                max: MAX_PARTITIONS,
            });
        }

        let centroid_len = parts * dim * 4; // ≤ 2^46 by the limits above
        let bytes = read_section(&mut cr, "coarse centroids", centroid_len)?;
        let centroids = decode_f32s(&bytes, "coarse centroids")?;

        let pq_bytes = read_section_bounded(&mut cr, "quantizer", MAX_QUANTIZER_SECTION)?;
        let pq = load_pq(&mut pq_bytes.as_slice())?;
        if pq.config().dim() as u64 != dim {
            return Err(PersistError::Format(format!(
                "quantizer dim {} != index dim {dim}",
                pq.config().dim()
            )));
        }

        let m = pq.config().m();
        let mut partitions = Vec::with_capacity(parts as usize);
        for _ in 0..parts {
            let payload = read_section_bounded(&mut cr, "partition", MAX_PARTITION_SECTION)?;
            if payload.len() < 8 {
                return Err(PersistError::Format("partition section too short".into()));
            }
            let len = le_u64(&payload[0..8]);
            let expected = len.checked_mul(8 + m as u64).and_then(|b| b.checked_add(8));
            if expected != Some(payload.len() as u64) {
                return Err(PersistError::Format(format!(
                    "partition claims {len} vectors but holds {} payload bytes",
                    payload.len()
                )));
            }
            let len = len as usize;
            let ids: Vec<u64> = payload[8..8 + len * 8]
                .chunks_exact(8)
                .map(le_u64)
                .collect();
            let codes = payload[8 + len * 8..].to_vec();
            partitions.push((ids, codes));
        }

        let computed = cr.crc();
        let inner = cr.into_inner();
        let stored = read_u32(inner).map_err(|e| truncated("file footer", e))?;
        if stored != computed {
            return Err(PersistError::Checksum {
                section: "file",
                stored,
                computed,
            });
        }
        expect_eof(inner)?;

        IvfadcIndex::from_parts(
            CoarseQuantizer::from_centroids(centroids, dim as usize),
            pq,
            partitions,
            &backends,
            opts,
        )
        .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// The legacy v1/v2 body (raw fields, no checksums), kept for lossless
    /// read-back of artifacts written before format v3.
    fn load_legacy(r: &mut impl Read, version: u32) -> Result<Self, PersistError> {
        let dim = read_u64(r).map_err(|e| truncated("header", e))? as usize;
        let parts = read_u64(r).map_err(|e| truncated("header", e))? as usize;
        if dim == 0 || parts == 0 {
            return Err(PersistError::Format(
                "empty dimension or partition count".into(),
            ));
        }
        if dim as u64 > MAX_DIM {
            return Err(PersistError::Limit {
                what: "dimension",
                value: dim as u64,
                max: MAX_DIM,
            });
        }
        if parts as u64 > MAX_PARTITIONS {
            return Err(PersistError::Limit {
                what: "partition count",
                value: parts as u64,
                max: MAX_PARTITIONS,
            });
        }
        let bytes = read_exact_vec(r, (parts * dim * 4) as u64, "coarse centroids")?;
        let centroids = decode_f32s(&bytes, "coarse centroids")?;

        let pq_len = read_u64(r).map_err(|e| truncated("quantizer length", e))?;
        if pq_len > MAX_QUANTIZER_SECTION {
            return Err(PersistError::Limit {
                what: "quantizer length",
                value: pq_len,
                max: MAX_QUANTIZER_SECTION,
            });
        }
        let pq_bytes = read_exact_vec(r, pq_len, "quantizer")?;
        let pq = load_pq(&mut pq_bytes.as_slice())?;
        if pq.config().dim() != dim {
            return Err(PersistError::Format(format!(
                "quantizer dim {} != index dim {dim}",
                pq.config().dim()
            )));
        }

        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)
            .map_err(|e| truncated("backend flag", e))?;
        let (backends, opts) = if version == 1 {
            // v1 stored a single fastscan-enabled flag and no options.
            let backends = if flag[0] != 0 {
                IvfadcConfig::default_backends()
            } else {
                vec![SearchBackend::Naive, SearchBackend::Libpq]
            };
            (backends, ScanOpts::default())
        } else {
            // An empty mask is legal: an index whose configured backends
            // were all shape-skipped roundtrips to one that (faithfully)
            // serves no backend.
            (mask_to_backends(flag[0]), read_scan_opts(r)?)
        };

        let m = pq.config().m();
        let mut partitions = Vec::with_capacity(parts);
        for _ in 0..parts {
            let len = read_u64(r).map_err(|e| truncated("partition length", e))? as usize;
            let idbuf = read_exact_vec(r, (len * 8) as u64, "partition ids")?;
            let ids: Vec<u64> = idbuf.chunks_exact(8).map(le_u64).collect();
            let codes = read_exact_vec(r, (len * m) as u64, "partition codes")?;
            partitions.push((ids, codes));
        }

        IvfadcIndex::from_parts(
            CoarseQuantizer::from_centroids(centroids, dim),
            pq,
            partitions,
            &backends,
            opts,
        )
        .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Saves to a file, atomically (temp file + fsync + rename): on any
    /// failure the previously published artifact is left untouched.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on any IO failure.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        atomic_write_file(
            path,
            AtomicWriteSites {
                create: "ivf.persist.create",
                write: "ivf.persist.write",
                fsync: "ivf.persist.fsync",
                rename: "ivf.persist.rename",
            },
            |w| self.save(w),
        )
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// As [`load`](Self::load), plus [`PersistError::Io`] for open/read
    /// failures.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        let mut r = io::BufReader::new(FaultRead::new(file, "ivf.persist.read"));
        Self::load(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IvfadcConfig, SearchBackend};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 16;

    fn build() -> (IvfadcIndex, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(55);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 1000);
        let base = gen(&mut rng, 400);
        let index = IvfadcIndex::build(&train, &base, &IvfadcConfig::new(DIM, 4)).unwrap();
        (index, base)
    }

    /// Writes `index` in the legacy v2 layout (raw fields, no checksums),
    /// replicating the pre-v3 writer so legacy read-back stays covered.
    fn v2_bytes(index: &IvfadcIndex) -> Vec<u8> {
        let dim = index.coarse().dim();
        let parts = index.num_partitions();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&(dim as u64).to_le_bytes());
        buf.extend_from_slice(&(parts as u64).to_le_bytes());
        for p in 0..parts {
            for &v in index.coarse().centroid(p) {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        // The embedded quantizer uses the *current* (v3) pqfs-core format;
        // real v2 files embedded v1, which load_pq also still reads.
        let mut pq_bytes = Vec::new();
        save_pq(index.pq(), &mut pq_bytes).unwrap();
        buf.extend_from_slice(&(pq_bytes.len() as u64).to_le_bytes());
        buf.extend_from_slice(&pq_bytes);
        buf.push(super::backends_to_mask(&index.prepared_backends()));
        write_scan_opts(&mut buf, index.scan_opts()).unwrap();
        for p in 0..parts {
            let (ids, codes) = index.partition_raw(p);
            buf.extend_from_slice(&(ids.len() as u64).to_le_bytes());
            for &id in ids {
                buf.extend_from_slice(&id.to_le_bytes());
            }
            buf.extend_from_slice(codes.as_bytes());
        }
        buf
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let (index, base) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.partition_sizes(), index.partition_sizes());
        for qi in (0..400).step_by(37) {
            let q = &base[qi * DIM..(qi + 1) * DIM];
            for backend in [SearchBackend::Naive, SearchBackend::FastScan] {
                let a = index.search(q, 7, backend, 0.01).unwrap();
                let b = loaded.search(q, 7, backend, 0.01).unwrap();
                let ids = |o: &crate::index::SearchOutcome| {
                    o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
                };
                assert_eq!(ids(&a), ids(&b), "query {qi}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_the_prepared_backend_set() {
        let mut rng = StdRng::seed_from_u64(56);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 1000);
        let base = gen(&mut rng, 300);
        let config = IvfadcConfig::new(DIM, 2).with_backends(SearchBackend::ALL.to_vec());
        let index = IvfadcIndex::build(&train, &base, &config).unwrap();
        assert_eq!(index.prepared_backends(), SearchBackend::ALL.to_vec());

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.prepared_backends(), SearchBackend::ALL.to_vec());
        // Every persisted backend still answers queries after the roundtrip.
        for backend in SearchBackend::ALL {
            assert!(
                loaded.search(&base[..DIM], 3, backend, 0.01).is_ok(),
                "{backend}"
            );
        }
    }

    #[test]
    fn v2_files_still_load_losslessly() {
        let (index, base) = build();
        let buf = v2_bytes(&index);
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.partition_sizes(), index.partition_sizes());
        assert_eq!(loaded.prepared_backends(), index.prepared_backends());
        let q = &base[..DIM];
        let ids =
            |o: &crate::index::SearchOutcome| o.neighbors.iter().map(|n| n.id).collect::<Vec<_>>();
        let a = index.search(q, 7, SearchBackend::FastScan, 0.01).unwrap();
        let b = loaded.search(q, 7, SearchBackend::FastScan, 0.01).unwrap();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn v1_fastscan_flag_still_loads() {
        // A v1 writer stored `1` for naive+libpq+fastscan; synthesize that
        // file from a v2 buffer by patching version and mask bytes.
        let (index, _) = build();
        let mut buf = v2_bytes(&index);
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        let mask_pos = backend_mask_position(&buf);
        buf[mask_pos] = 1;
        // v1 had no scan-options block: drop the 12 bytes after the flag.
        buf.drain(mask_pos + 1..mask_pos + 13);
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.prepared_backends(), IvfadcConfig::default_backends());
    }

    /// Byte offset of the backend mask in a *legacy* buffer: after magic,
    /// version, dim, partitions, centroids, and the length-prefixed
    /// quantizer.
    fn backend_mask_position(buf: &[u8]) -> usize {
        let dim = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let parts = u64::from_le_bytes(buf[16..24].try_into().unwrap()) as usize;
        let pq_len_pos = 24 + parts * dim * 4;
        let pq_len =
            u64::from_le_bytes(buf[pq_len_pos..pq_len_pos + 8].try_into().unwrap()) as usize;
        pq_len_pos + 8 + pq_len
    }

    #[test]
    fn roundtrip_preserves_scan_options() {
        use pqfs_scan::{Kernel, ScanOpts};
        let mut rng = StdRng::seed_from_u64(57);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
        };
        let train = gen(&mut rng, 800);
        let base = gen(&mut rng, 200);
        let opts = ScanOpts::default()
            .with_keep(0.02)
            .with_bins(126)
            .with_group_components(1)
            .with_kernel(Kernel::Portable);
        let config = IvfadcConfig::new(DIM, 2).with_scan_opts(opts);
        let index = IvfadcIndex::build(&train, &base, &config).unwrap();

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        let roundtripped = loaded.scan_opts();
        assert_eq!(roundtripped.keep, 0.02);
        assert_eq!(roundtripped.bins, 126);
        assert_eq!(roundtripped.group_components, Some(1));
        assert_eq!(roundtripped.kernel, Kernel::Portable);
        // Identical options => identical prepared state => identical memory
        // accounting (the Figure 20 number survives persistence).
        assert_eq!(
            loaded.code_memory_bytes(SearchBackend::FastScan),
            index.code_memory_bytes(SearchBackend::FastScan)
        );
    }

    #[test]
    fn empty_base_index_roundtrips() {
        let mut rng = StdRng::seed_from_u64(58);
        let train: Vec<f32> = (0..1000 * DIM)
            .map(|_| rng.gen_range(0.0f32..255.0))
            .collect();
        let index = IvfadcIndex::build(&train, &[], &IvfadcConfig::new(DIM, 2)).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.prepared_backends(), IvfadcConfig::default_backends());

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.prepared_backends(), IvfadcConfig::default_backends());
    }

    #[test]
    fn file_roundtrip() {
        let (index, _) = build();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-ivf-{}.pqiv", std::process::id()));
        index.save_file(&path).unwrap();
        let loaded = IvfadcIndex::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), index.len());
    }

    #[test]
    fn rejects_corruption() {
        let (index, _) = build();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'Z';
        assert!(IvfadcIndex::load(&mut bad_magic.as_slice()).is_err());

        let truncated = &buf[..buf.len() / 2];
        assert!(IvfadcIndex::load(&mut &truncated[..]).is_err());
    }

    #[test]
    fn rejects_absurd_counts_before_allocating() {
        // A legacy header claiming 2^50 partitions must fail on the Limit
        // check, not OOM allocating centroid or partition buffers.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&16u64.to_le_bytes()); // dim
        buf.extend_from_slice(&(1u64 << 50).to_le_bytes()); // partitions
        assert!(matches!(
            IvfadcIndex::load(&mut buf.as_slice()),
            Err(PersistError::Limit { .. })
        ));
    }

    #[test]
    fn failed_save_leaves_the_previous_artifact_intact() {
        let _lock = pqfs_fault::exclusive();
        let (index, _) = build();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-ivf-atomic-{}.pqiv", std::process::id()));
        index.save_file(&path).unwrap();
        for site in [
            "ivf.persist.create",
            "ivf.persist.write",
            "ivf.persist.fsync",
            "ivf.persist.rename",
        ] {
            let _g = pqfs_fault::scoped(site, pqfs_fault::FaultAction::Error);
            assert!(index.save_file(&path).is_err(), "{site}");
            assert!(IvfadcIndex::load_file(&path).is_ok(), "{site}");
        }
        {
            let _g = pqfs_fault::scoped(
                "ivf.persist.write",
                pqfs_fault::FaultAction::ShortWrite(1000),
            );
            assert!(index.save_file(&path).is_err());
            assert!(IvfadcIndex::load_file(&path).is_ok());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_read_faults_surface_as_typed_errors() {
        let _lock = pqfs_fault::exclusive();
        let (index, _) = build();
        let mut path = std::env::temp_dir();
        path.push(format!("pqfs-ivf-readfault-{}.pqiv", std::process::id()));
        index.save_file(&path).unwrap();

        {
            let _g = pqfs_fault::scoped("ivf.persist.read", pqfs_fault::FaultAction::Error);
            assert!(matches!(
                IvfadcIndex::load_file(&path),
                Err(PersistError::Io(_))
            ));
        }
        {
            let _g =
                pqfs_fault::scoped("ivf.persist.read", pqfs_fault::FaultAction::ShortRead(200));
            assert!(IvfadcIndex::load_file(&path).is_err());
        }
        {
            let _g = pqfs_fault::scoped("ivf.persist.read", pqfs_fault::FaultAction::BitFlip(321));
            assert!(IvfadcIndex::load_file(&path).is_err());
        }
        // Disarmed again: the artifact is fine.
        assert!(IvfadcIndex::load_file(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }
}

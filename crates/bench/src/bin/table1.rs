//! Table 1 — cache level properties (Nehalem–Haswell) and which PQ
//! configurations' distance tables each level can hold.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin table1
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::header;
use pqfs_core::PqConfig;
use pqfs_metrics::{table_cache_level, CacheLevel, TextTable};

fn main() {
    header(
        "table1",
        "Table 1, §3.1",
        "static cost model + PQ table sizes",
    );

    let configs = [
        PqConfig::pq16x4(128),
        PqConfig::pq8x8(128),
        PqConfig::pq4x16(128),
    ];

    let mut t = TextTable::new(vec!["", "L1", "L2", "L3"]);
    let lat = |l: CacheLevel| {
        let r = l.latency_cycles();
        format!("{}-{}", r.start(), r.end())
    };
    t.row(vec![
        "Latency (cycles)".to_string(),
        lat(CacheLevel::L1),
        lat(CacheLevel::L2),
        lat(CacheLevel::L3),
    ]);
    t.row(vec![
        "Size".to_string(),
        "32KiB".to_string(),
        "256KiB".to_string(),
        "2-3MiB x cores".to_string(),
    ]);
    let mut per_level: [Vec<String>; 3] = Default::default();
    for cfg in &configs {
        let level = table_cache_level(cfg.table_bytes());
        let slot = match level {
            CacheLevel::L1 => 0,
            CacheLevel::L2 => 1,
            CacheLevel::L3 => 2,
        };
        per_level[slot].push(format!("PQ {}x{}", cfg.m(), cfg.nbits()));
    }
    t.row(vec![
        "PQ Configurations".to_string(),
        per_level[0].join(" "),
        per_level[1].join(" "),
        per_level[2].join(" "),
    ]);
    println!("{t}");

    println!("distance-table sizes behind the mapping:");
    for cfg in &configs {
        println!(
            "  {cfg}: {} KiB ({} tables x {} entries x 4 B) -> {}",
            cfg.table_bytes() / 1024,
            cfg.m(),
            cfg.ksub(),
            table_cache_level(cfg.table_bytes()).name()
        );
    }
    println!(
        "\npaper: PQ 16x4 and PQ 8x8 tables fit L1; PQ 4x16 tables only fit L3 \
         (5x the latency), so PQ 8x8 is the best trade-off and the paper's focus."
    );
}

//! Minimum tables (paper §4.3, Figure 10).
//!
//! For the components that are *not* grouped, Fast Scan cannot load the
//! exact table portion per group. Instead, each 256-entry distance table is
//! folded into 16 values: the minimum of each 16-entry portion, indexed by
//! the **high nibble** of the stored component. The minimum is a valid lower
//! bound for any entry of its portion, and the §4.3 optimized centroid-index
//! assignment makes portions hold mutually close values so these minima are
//! tight.

use crate::fastscan::layout::PORTION;
use crate::quantize::DistanceQuantizer;
use pqfs_core::DistanceTables;

/// Minimum of each 16-entry portion of one distance table, in float domain.
///
/// # Panics
///
/// Panics if `table.len()` is not a multiple of [`PORTION`].
pub fn min_table(table: &[f32]) -> Vec<f32> {
    assert_eq!(
        table.len() % PORTION,
        0,
        "table must divide into 16-entry portions"
    );
    table
        .chunks_exact(PORTION)
        .map(|p| p.iter().copied().fold(f32::INFINITY, f32::min))
        .collect()
}

/// Quantized minimum tables for components `c..m`, ready to be used as the
/// small tables `S_c … S_{m−1}`.
///
/// The minimum is computed in float domain and quantized afterwards; since
/// quantization is monotone this equals the minimum of the quantized
/// entries, and rounding down preserves the lower-bound property.
pub fn quantized_min_tables(
    tables: &DistanceTables,
    quantizer: &DistanceQuantizer,
    c: usize,
) -> Vec<[u8; PORTION]> {
    (c..tables.m())
        .map(|j| {
            let mins = min_table(tables.table(j));
            let mut out = [0u8; PORTION];
            for (slot, &v) in out.iter_mut().zip(mins.iter()) {
                *slot = quantizer.quantize_value(j, v);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_table_takes_portion_minima() {
        // 32-entry table: portion 0 = 16..32 reversed, portion 1 = 100+i.
        let mut table: Vec<f32> = (0..16).map(|i| (31 - i) as f32).collect();
        table.extend((0..16).map(|i| (100 + i) as f32));
        let mins = min_table(&table);
        assert_eq!(mins, vec![16.0, 100.0]);
    }

    #[test]
    fn min_is_lower_bound_for_every_entry() {
        let table: Vec<f32> = (0..256).map(|i| ((i * 97 + 13) % 509) as f32).collect();
        let mins = min_table(&table);
        for (i, &v) in table.iter().enumerate() {
            assert!(mins[i / PORTION] <= v);
        }
    }

    #[test]
    fn quantized_min_tables_cover_requested_components() {
        let data: Vec<f32> = (0..4 * 256).map(|i| (i % 100) as f32).collect();
        let tables = DistanceTables::from_raw(data, 4, 256);
        let q = DistanceQuantizer::new(&tables, 300.0, 254);
        let all = quantized_min_tables(&tables, &q, 0);
        assert_eq!(all.len(), 4);
        let tail = quantized_min_tables(&tables, &q, 3);
        assert_eq!(tail.len(), 1);
        assert_eq!(all[3], tail[0]);
    }

    #[test]
    fn quantized_min_is_lower_bound_of_quantized_entries() {
        let data: Vec<f32> = (0..2 * 256)
            .map(|i| ((i * 37) % 997) as f32 * 0.25)
            .collect();
        let tables = DistanceTables::from_raw(data, 2, 256);
        let q = DistanceQuantizer::new(&tables, 150.0, 254);
        let qmins = quantized_min_tables(&tables, &q, 0);
        for (j, qmin) in qmins.iter().enumerate().take(2) {
            for (i, &v) in tables.table(j).iter().enumerate() {
                assert!(qmin[i / PORTION] <= q.quantize_value(j, v), "j={j}, i={i}");
            }
        }
    }
}

//! Corruption torture suite for the v3 persist format.
//!
//! A served index artifact can be damaged anywhere — a torn write, a
//! truncated copy, a flipped bit on a failing disk. The contract of
//! [`IvfadcIndex::load`] is that **every** such mutation yields a typed
//! error: no panic, no OOM, and never a silent wrong load. These tests
//! enforce that contract exhaustively over a real index image built with
//! every registered backend: every single-byte flip, every truncation
//! length, and trailing garbage.

use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

const DIM: usize = 16;

/// Builds a small but fully featured index (all registered backends
/// prepared) and returns its serialized v3 image.
fn index_bytes() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(99);
    let mut gen =
        |n: usize| -> Vec<f32> { (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect() };
    let train = gen(1000);
    let base = gen(300);
    let config = IvfadcConfig::new(DIM, 4).with_backends(SearchBackend::ALL.to_vec());
    let index = IvfadcIndex::build(&train, &base, &config).unwrap();
    let mut buf = Vec::new();
    index.save(&mut buf).unwrap();
    buf
}

/// Loading must return `Err` — not panic, and not succeed — for the given
/// mutated image.
fn assert_rejected(bytes: &[u8], what: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        IvfadcIndex::load(&mut &bytes[..]).map(|ix| ix.len())
    }));
    match result {
        Ok(Ok(n)) => panic!("{what}: loaded 'successfully' ({n} vectors) from a corrupt image"),
        Ok(Err(_)) => {}
        Err(_) => panic!("{what}: load panicked instead of returning an error"),
    }
}

#[test]
fn pristine_image_loads_and_serves_every_backend() {
    let buf = index_bytes();
    let index = IvfadcIndex::load(&mut buf.as_slice()).unwrap();
    assert_eq!(index.prepared_backends(), SearchBackend::ALL.to_vec());
    let query = vec![128.0f32; DIM];
    for backend in SearchBackend::ALL {
        let outcome = index.search(&query, 5, backend, 0.01).unwrap();
        assert!(!outcome.neighbors.is_empty(), "{backend}");
    }
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let buf = index_bytes();
    // Low-bit and high-bit flips at every byte offset: covers corruption
    // in the magic, version, every length prefix, every section payload,
    // every section CRC, and the footer itself.
    for mask in [0x01u8, 0x80] {
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= mask;
            assert_rejected(&bad, &format!("byte {i} ^ {mask:#04x}"));
        }
    }
}

#[test]
fn every_byte_overwrite_with_ff_is_rejected() {
    // Overwrites (not just flips) model a stuck-at-one disk sector; skip
    // offsets that already hold 0xFF since that is no mutation.
    let buf = index_bytes();
    for i in 0..buf.len() {
        if buf[i] == 0xFF {
            continue;
        }
        let mut bad = buf.clone();
        bad[i] = 0xFF;
        assert_rejected(&bad, &format!("byte {i} := 0xFF"));
    }
}

#[test]
fn every_truncation_length_is_rejected() {
    let buf = index_bytes();
    for end in 0..buf.len() {
        assert_rejected(&buf[..end], &format!("truncated to {end} bytes"));
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut buf = index_bytes();
    buf.push(0);
    assert_rejected(&buf, "one trailing byte");
}

#[test]
fn corrupt_embedded_quantizer_bytes_are_rejected() {
    // The quantizer codebooks are the largest section; damage deep inside
    // it (a NaN pattern over a float) must be caught by the section CRC
    // long before the floats are interpreted.
    let buf = index_bytes();
    let mid = buf.len() / 2;
    let mut bad = buf.clone();
    bad[mid..mid + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    assert_rejected(&bad, "NaN spliced into the middle of the image");
}

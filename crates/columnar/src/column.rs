//! Dictionary-compressed columns and their exact scans.

use crate::dict::Dictionary;

/// A column stored as one byte per row plus a shared dictionary.
#[derive(Debug, Clone)]
pub struct CompressedColumn {
    dict: Dictionary,
    codes: Vec<u8>,
}

impl CompressedColumn {
    /// Compresses raw values with a quantile dictionary of `dict_size`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `dict_size ∉ 1..=256`.
    pub fn compress(data: &[f32], dict_size: usize) -> Self {
        let dict = Dictionary::from_quantiles(data, dict_size);
        let codes = data.iter().map(|&v| dict.encode(v)).collect();
        CompressedColumn { dict, codes }
    }

    /// Wraps pre-encoded codes.
    ///
    /// # Panics
    ///
    /// Panics if any code is out of dictionary range.
    pub fn from_codes(dict: Dictionary, codes: Vec<u8>) -> Self {
        assert!(
            codes.iter().all(|&c| (c as usize) < dict.len()),
            "code out of dictionary range"
        );
        CompressedColumn { dict, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The raw codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Decoded value of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.dict.decode(self.codes[i])
    }

    /// Exact mean via per-row dictionary lookups (the cache-resident
    /// baseline the §6 approximate aggregate is compared against).
    pub fn exact_mean(&self) -> f32 {
        if self.codes.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.codes.iter().map(|&c| self.dict.decode(c) as f64).sum();
        (sum / self.codes.len() as f64) as f32
    }

    /// Exact top-k **largest** values as `(row, value)`, ordered by
    /// descending value with ascending-row tie-break. Baseline for the
    /// fast top-k.
    pub fn topk_max_exact(&self, k: usize) -> Vec<(u32, f32)> {
        let mut all: Vec<(u32, f32)> = self
            .codes
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u32, self.dict.decode(c)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Maximum compression error of this column (half the largest gap
    /// between adjacent dictionary entries bounds it for in-range values).
    pub fn reconstruction_error(&self, original: &[f32]) -> f32 {
        assert_eq!(original.len(), self.codes.len());
        original
            .iter()
            .zip(&self.codes)
            .map(|(&v, &c)| (v - self.dict.decode(c)).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 31) % 997) as f32).collect()
    }

    #[test]
    fn compress_roundtrips_within_dictionary_error() {
        let data = ramp(5000);
        let col = CompressedColumn::compress(&data, 256);
        assert_eq!(col.len(), 5000);
        // 256 quantiles over 997 distinct values: max error ~ half a bin.
        assert!(col.reconstruction_error(&data) <= 4.0);
    }

    #[test]
    fn exact_mean_matches_decoded_average() {
        let data = ramp(1000);
        let col = CompressedColumn::compress(&data, 64);
        let manual: f64 = (0..1000).map(|i| col.get(i) as f64).sum::<f64>() / 1000.0;
        assert!((col.exact_mean() as f64 - manual).abs() < 1e-3);
    }

    #[test]
    fn topk_exact_is_sorted_and_tie_broken() {
        let dict = Dictionary::new(vec![1.0, 2.0, 3.0]);
        let col = CompressedColumn::from_codes(dict, vec![0, 2, 1, 2, 0]);
        let top = col.topk_max_exact(3);
        assert_eq!(top, vec![(1, 3.0), (3, 3.0), (2, 2.0)]);
    }

    #[test]
    fn empty_topk_and_small_k() {
        let dict = Dictionary::new(vec![5.0]);
        let col = CompressedColumn::from_codes(dict, vec![0, 0]);
        assert_eq!(col.topk_max_exact(0).len(), 0);
        assert_eq!(col.topk_max_exact(10).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of dictionary range")]
    fn from_codes_validates_range() {
        CompressedColumn::from_codes(Dictionary::new(vec![1.0]), vec![0, 1]);
    }
}

//! Fixture: unsafe-allowlisted crate missing the deny header.

pub fn nothing() {}

//! Client↔server integration over a real loopback socket: single and
//! batch answers match direct index calls, deadlines degrade instead of
//! failing, overload sheds with a typed response, and shutdown drains
//! in-flight work.
//!
//! Every test takes [`pqfs_fault::exclusive`]: the failpoint registry is
//! process-global, so fault-arming tests must not interleave.

use pqfs_fault::{scoped, FaultAction};
use pqfs_ivf::{IvfadcConfig, IvfadcIndex, SearchBackend};
use pqfs_server::proto::{ErrorCode, QueryParams, Response};
use pqfs_server::server::{Server, ServerConfig, ServerHandle};
use pqfs_server::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const DIM: usize = 16;
const PARTITIONS: usize = 4;

fn fixture_index() -> Arc<IvfadcIndex> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut gen =
        |n: usize| -> Vec<f32> { (0..n * DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect() };
    let train = gen(1200);
    let base = gen(400);
    let config = IvfadcConfig::new(DIM, PARTITIONS);
    Arc::new(IvfadcIndex::build(&train, &base, &config).expect("fixture index builds"))
}

fn start(config: ServerConfig) -> (Arc<IvfadcIndex>, ServerHandle) {
    let index = fixture_index();
    let handle = Server::start(Arc::clone(&index), config).expect("bind loopback");
    (index, handle)
}

fn query_vec(seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..DIM).map(|_| rng.gen_range(0.0f32..255.0)).collect()
}

#[test]
fn single_query_matches_direct_search() {
    let _lock = pqfs_fault::exclusive();
    let (index, handle) = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let health = client.health().expect("health");
    assert_eq!(health.dim as usize, DIM);
    assert_eq!(health.partitions as usize, PARTITIONS);
    assert_eq!(health.vectors as usize, index.len());

    for seed in 0..5 {
        let q = query_vec(seed);
        let params = QueryParams {
            topk: 10,
            nprobe: 1,
            keep: 0.05,
            ..QueryParams::default()
        };
        let response = client.query(&q, params).expect("transport ok");
        let Response::Query(answer) = response else {
            panic!("expected a query answer, got {response:?}");
        };
        let direct = index
            .search(&q, 10, SearchBackend::FastScan, 0.05)
            .expect("direct search");
        let got: Vec<u64> = answer.neighbors.iter().map(|n| n.id).collect();
        let want: Vec<u64> = direct.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, want, "served ids equal direct search (seed {seed})");
        assert!(!answer.degraded());
    }
    handle.shutdown_and_join();
}

#[test]
fn batch_query_matches_search_batch() {
    let _lock = pqfs_fault::exclusive();
    let (index, handle) = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let count = 6usize;
    let mut queries = Vec::with_capacity(count * DIM);
    for seed in 100..100 + count as u64 {
        queries.extend(query_vec(seed));
    }
    let params = QueryParams {
        topk: 5,
        nprobe: 1,
        keep: 0.05,
        ..QueryParams::default()
    };
    let response = client
        .batch(&queries, DIM as u32, params)
        .expect("transport ok");
    let Response::Batch(answers) = response else {
        panic!("expected batch answers, got {response:?}");
    };
    assert_eq!(answers.len(), count);
    let direct = index
        .search_batch(&queries, 5, SearchBackend::FastScan, 0.05)
        .expect("direct batch");
    for (i, (answer, outcome)) in answers.iter().zip(&direct).enumerate() {
        let got: Vec<u64> = answer.neighbors.iter().map(|n| n.id).collect();
        let want: Vec<u64> = outcome.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, want, "batch member {i}");
    }
    handle.shutdown_and_join();
}

#[test]
fn expired_deadline_degrades_instead_of_failing() {
    let _lock = pqfs_fault::exclusive();
    let (_index, handle) = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let q = query_vec(55);
    let params = QueryParams {
        topk: 10,
        nprobe: PARTITIONS as u32,
        keep: 0.05,
        deadline_us: 1, // expires in the queue; only the nearest probe runs
        ..QueryParams::default()
    };
    let response = client.query(&q, params).expect("transport ok");
    let Response::Query(answer) = response else {
        panic!("expected a query answer, got {response:?}");
    };
    assert!(
        answer.probes_skipped > 0,
        "deadline must shed probes: {answer:?}"
    );
    assert!(
        answer.probes_ok >= 1,
        "the nearest probe always runs: {answer:?}"
    );
    assert!(!answer.neighbors.is_empty(), "degraded, not empty");
    handle.shutdown_and_join();
}

#[test]
fn overload_sheds_with_typed_response() {
    let _lock = pqfs_fault::exclusive();
    let config = ServerConfig {
        queue_capacity: 1,
        max_batch: 1,
        max_linger: Duration::ZERO,
        ..ServerConfig::default()
    };
    let (_index, handle) = start(config);
    // Every batch execution stalls 150 ms, so concurrent requests pile
    // into the 1-slot queue and the rest must shed.
    let _stall = scoped("server.batch.execute", FaultAction::Delay(150));

    let addr = handle.local_addr();
    let workers: Vec<_> = (0..6)
        .map(|seed| {
            thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, Some(Duration::from_secs(10))).expect("connect");
                let q = query_vec(seed);
                let params = QueryParams {
                    topk: 3,
                    nprobe: 1,
                    keep: 0.05,
                    ..QueryParams::default()
                };
                client.query(&q, params).expect("transport ok")
            })
        })
        .collect();

    let mut answered = 0usize;
    let mut shed = 0usize;
    for w in workers {
        match w.join().expect("worker thread") {
            Response::Query(_) => answered += 1,
            Response::Overloaded { capacity, depth } => {
                assert_eq!(capacity, 1);
                assert!(depth >= 1);
                shed += 1;
            }
            other => panic!("unexpected response under overload: {other:?}"),
        }
    }
    assert!(answered >= 1, "some requests must still be served");
    assert!(shed >= 1, "a full queue must shed, not stack up");
    #[cfg(feature = "telemetry")]
    assert!(
        pqfs_obs::counter_value("pqfs_server_shed_total", None) >= shed as u64,
        "shed counter records admission rejections"
    );
    handle.shutdown_and_join();
}

#[test]
fn stats_frame_returns_parseable_json() {
    let _lock = pqfs_fault::exclusive();
    let (_index, handle) = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let _ = client
        .query(
            &query_vec(9),
            QueryParams {
                topk: 3,
                nprobe: 1,
                keep: 0.05,
                ..QueryParams::default()
            },
        )
        .expect("transport ok");
    let json = client.stats().expect("stats frame");
    #[cfg(feature = "telemetry")]
    {
        let _value = pqfs_obs::jsonv::parse(&json).expect("stats snapshot parses as JSON");
        assert!(
            json.contains("pqfs_server_requests_total"),
            "snapshot carries server metrics: {json}"
        );
    }
    #[cfg(not(feature = "telemetry"))]
    assert!(!json.is_empty());
    handle.shutdown_and_join();
}

#[test]
fn bad_requests_get_typed_errors_and_connection_survives() {
    let _lock = pqfs_fault::exclusive();
    let (_index, handle) = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Wrong dimensionality.
    let response = client
        .query(&[1.0f32; 3], QueryParams::default())
        .expect("transport ok");
    let Response::Error { code, message } = response else {
        panic!("expected an error, got {response:?}");
    };
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(message.contains("dim"), "{message}");

    // Unknown backend name.
    let response = client
        .query(
            &query_vec(1),
            QueryParams {
                backend: "warp-drive".to_string(),
                ..QueryParams::default()
            },
        )
        .expect("transport ok");
    assert!(
        matches!(
            response,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "unknown backend rejected: {response:?}"
    );

    // Bad keep fraction.
    let response = client
        .query(
            &query_vec(2),
            QueryParams {
                keep: 0.0,
                ..QueryParams::default()
            },
        )
        .expect("transport ok");
    assert!(
        matches!(
            response,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "keep=0 rejected: {response:?}"
    );

    // The connection is still usable after request-level errors.
    let health = client.health().expect("connection survived");
    assert_eq!(health.dim as usize, DIM);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_answers_in_flight_work_then_drains() {
    let _lock = pqfs_fault::exclusive();
    let (_index, handle) = start(ServerConfig {
        max_linger: Duration::ZERO,
        ..ServerConfig::default()
    });
    // Stall execution long enough that shutdown fires while the request
    // is in flight.
    let _stall = scoped("server.batch.execute", FaultAction::Delay(150));

    let addr = handle.local_addr();
    let inflight = thread::spawn(move || {
        let mut client =
            Client::connect_with(addr, Some(Duration::from_secs(10))).expect("connect");
        client
            .query(
                &query_vec(3),
                QueryParams {
                    topk: 3,
                    nprobe: 1,
                    keep: 0.05,
                    ..QueryParams::default()
                },
            )
            .expect("transport ok")
    });
    // Let the request reach the batcher, then start draining.
    thread::sleep(Duration::from_millis(40));
    handle.trigger_shutdown();

    let response = inflight.join().expect("in-flight worker");
    assert!(
        matches!(response, Response::Query(_)),
        "in-flight request answered during drain: {response:?}"
    );

    // After the queue closed, fresh work is refused with a typed error
    // (as long as the connection is admitted before the acceptor stops).
    if let Ok(mut late) = Client::connect_with(addr, Some(Duration::from_secs(2))) {
        if let Ok(response) = late.query(&query_vec(4), QueryParams::default()) {
            assert!(
                matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        ..
                    }
                ),
                "late request refused: {response:?}"
            );
        }
    }
    handle.shutdown_and_join();
    assert!(handle.is_shutting_down());
    assert_eq!(handle.queue_depth(), 0, "queue fully drained");
}

//! `pqfs_server` — a std-only network serving layer for IVFADC indexes.
//!
//! The ROADMAP north star is a production system serving heavy query
//! traffic; after the kernels (`pqfs_scan`), the executor (`pqfs_pool`),
//! deadlines (`search_probes_budgeted`) and telemetry (`pqfs_obs`), this
//! crate is the front door. André's thesis and the GPU ANN literature both
//! make the same observation: once the scan kernels are fast, throughput
//! is won by *batching at the server* so per-query fixed costs (ADC table
//! computation, dispatch) are amortized across concurrent clients.
//!
//! The design, in one pass through a request's life:
//!
//! 1. **Protocol** ([`proto`]): a small length-prefixed binary protocol —
//!    versioned 12-byte header, CRC-32-checked payload (reusing the
//!    persist checksum), typed request/response frames (query, batch,
//!    health, stats, error, overloaded). Decoding is bounds-checked and
//!    panic-free; a torn or corrupted frame is a typed error, never UB or
//!    a hang.
//! 2. **Admission** ([`queue`]): a bounded request queue. When it is full
//!    the request is *shed immediately* with a typed `Overloaded` response
//!    carrying the capacity and observed depth — latency under overload
//!    stays bounded because work never stacks up invisibly.
//! 3. **Batching** ([`server`]): a coalescing stage pops the queue,
//!    lingers up to a configurable bound to accumulate up to `max_batch`
//!    queries, and executes them as one parallel wave on the shared
//!    [`pqfs_pool::ThreadPool`]. Per-request deadlines (measured from
//!    arrival, so queue wait counts) flow into the budgeted multi-probe
//!    search.
//! 4. **Shutdown** ([`signal`]): SIGTERM/SIGINT set a flag; the acceptor
//!    stops admitting, the queue closes, in-flight requests drain and are
//!    answered, then every thread is joined.
//!
//! Failure injection covers the accept/read/write/decode paths via
//! `pqfs_fault` sites (`server.*` in `failpoints.sites`), and every stage
//! reports through `pqfs_obs` (`pqfs_server_*` metrics, exposed on the
//! stats frame and the CLI `--metrics-out` flag).
//!
//! The only `unsafe` in the crate is the two-line SIGTERM handler
//! registration in [`signal`]; everything else is safe std.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod queue;
pub mod server;
pub mod signal;

pub use client::{Client, ClientError};
pub use proto::{
    read_frame, write_frame, ErrorCode, Frame, FrameKind, HealthInfo, ProtoError, QueryAnswer,
    QueryParams, QueryRequest, Request, Response,
};
pub use queue::{PushError, RequestQueue};
pub use server::{Server, ServerConfig, ServerHandle};

//! Offline drop-in replacement for the subset of the [`rand` crate] API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range`, `gen_bool` and `gen_ratio`.
//!
//! The build environment has no network access, so the real crates.io `rand`
//! cannot be fetched; this crate keeps the same import paths so swapping the
//! real dependency back in is a one-line `Cargo.toml` change. The generator
//! is xoshiro256++ seeded through SplitMix64 — not `rand`'s ChaCha12, so
//! streams differ from upstream for the same seed, but every use in the
//! workspace only relies on determinism per seed and uniformity, not on the
//! exact stream.
//!
//! [`rand` crate]: https://crates.io/crates/rand

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range that can produce a uniformly distributed sample.
///
/// Implemented for `Range` and `RangeInclusive` over the primitive integer
/// and float types, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio requires numerator <= denominator ({numerator} > {denominator})"
        );
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `f64` uniform in `[0, 1)` from the top 53 bits of a word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `f32` uniform in `[0, 1)` from the top 24 bits of a word.
#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Primitive types with a uniform sampling procedure. The single generic
/// [`SampleRange`] impl below routes through this trait so type inference can
/// flow from the usage site into the range literal (as with `rand`'s
/// `SampleUniform`): `c[0] + rng.gen_range(-2.0..2.0)` infers `f32` ranges.
pub trait UniformSampled: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: UniformSampled> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: UniformSampled> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_uniform_sampled {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_uniform_sampled!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_sampled {
    ($($t:ty => $unit:ident),*) => {$(
        impl UniformSampled for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let sample = lo + (hi - lo) * $unit(rng.next_u64());
                // Guard against `hi` being reached through rounding.
                if sample >= hi { lo } else { sample }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}

float_uniform_sampled!(f32 => unit_f32, f64 => unit_f64);

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Statistically strong for simulation/test workloads; **not**
    /// cryptographically secure (neither use exists in this workspace).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro: guarantees a non-zero state for every seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000))
            .count();
        assert!(same < 16, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&x));
            let y = rng.gen_range(5usize..17);
            assert!((5..17).contains(&y));
            let z = rng.gen_range(0.0f32..=255.0);
            assert!((0.0..=255.0).contains(&z));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (9_000..11_000).contains(&b),
                "bucket count {b} far from 10k"
            );
        }
    }

    #[test]
    fn gen_bool_and_ratio_match_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "gen_bool(0.25) hit {hits}/100k"
        );
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "gen_ratio(1,4) hit {hits}/100k"
        );
    }
}

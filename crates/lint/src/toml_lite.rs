//! A tiny TOML-subset parser for `Cargo.toml` and `pqfs_lint.toml`.
//!
//! Supports exactly what the workspace manifests use: `[table.headers]`,
//! `key = "string"`, `key = true/false`, `key = ["array", "of", "strings"]`,
//! dotted keys (`version.workspace = true`), and inline tables
//! (`{ path = "…", default-features = false, features = ["x"] }`). Values
//! the lint does not need (numbers, dates, multi-line strings, arrays of
//! tables) are stored as [`Value::Other`] so the parser never fails on
//! them.

use std::collections::BTreeMap;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array of strings (non-string elements are dropped).
    Array(Vec<String>),
    /// An inline table.
    Table(BTreeMap<String, Value>),
    /// Anything else, kept verbatim.
    Other(String),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string elements, if this is an array.
    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The inline table, if this is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// A parsed document: `table path → key → value`. The root table has the
/// empty path `""`; nested headers join with `.` (`"workspace.dependencies"`).
#[derive(Debug, Default, Clone)]
pub struct Doc {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Doc {
    /// The keys of table `path`, if present.
    pub fn table(&self, path: &str) -> Option<&BTreeMap<String, Value>> {
        self.tables.get(path)
    }

    /// One value: `doc.get("package", "name")`.
    pub fn get(&self, path: &str, key: &str) -> Option<&Value> {
        self.tables.get(path).and_then(|t| t.get(key))
    }

    /// All table paths with the given prefix segment (e.g. every
    /// `features` subtable).
    pub fn tables_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a BTreeMap<String, Value>)> {
        let with_dot = format!("{prefix}.");
        self.tables
            .iter()
            .filter_map(move |(k, v)| k.strip_prefix(&with_dot).map(|rest| (rest, v)))
    }
}

/// Parses a TOML-subset document. Unrecognized constructs are skipped, not
/// errors — the lint only reads the keys it understands.
pub fn parse(src: &str) -> Doc {
    let mut doc = Doc::default();
    let mut current = String::new();
    doc.tables.entry(current.clone()).or_default();

    let mut lines = src.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("[[") {
            // Array-of-tables ([[bin]], [[bench]]): collapse to the path.
            let path = line.trim_matches(['[', ']']).trim().to_string();
            current = path;
            doc.tables.entry(current.clone()).or_default();
            continue;
        }
        if line.starts_with('[') {
            let path = line.trim_matches(['[', ']']).trim().to_string();
            current = path;
            doc.tables.entry(current.clone()).or_default();
            continue;
        }
        let Some(eq) = find_top_level_eq(&line) else {
            continue;
        };
        let key_part = line[..eq].trim().to_string();
        let mut value_part = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while unbalanced(&value_part) {
            match lines.next() {
                Some(next) => {
                    value_part.push(' ');
                    value_part.push_str(strip_comment(next).trim());
                }
                None => break,
            }
        }
        let value = parse_value(&value_part);
        // Dotted key: `a.b = v` inside `[t]` lands at table `t.a`, key `b`.
        let (table_path, key) = match key_part.rsplit_once('.') {
            Some((head, tail)) => {
                let head = head.trim_matches('"').to_string();
                let path = if current.is_empty() {
                    head
                } else {
                    format!("{current}.{head}")
                };
                (path, tail.trim_matches('"').to_string())
            }
            None => (current.clone(), key_part.trim_matches('"').to_string()),
        };
        doc.tables.entry(table_path).or_default().insert(key, value);
    }
    doc
}

/// Removes a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Position of the key/value `=` (outside quotes and brackets).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            '[' | '{' if !in_str => return None,
            _ => {}
        }
    }
    None
}

/// True while an array/inline-table value still has unclosed brackets.
fn unbalanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

fn parse_value(s: &str) -> Value {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('"') {
        if let Some(end) = inner.find('"') {
            return Value::Str(inner[..end].to_string());
        }
    }
    if s == "true" {
        return Value::Bool(true);
    }
    if s == "false" {
        return Value::Bool(false);
    }
    if s.starts_with('[') {
        let inner = s.trim_start_matches('[').trim_end_matches(']');
        let items = split_top_level(inner)
            .into_iter()
            .filter_map(|item| {
                let item = item.trim();
                item.strip_prefix('"')
                    .and_then(|r| r.rfind('"').map(|e| r[..e].to_string()))
            })
            .collect();
        return Value::Array(items);
    }
    if s.starts_with('{') {
        let inner = s.trim_start_matches('{').trim_end_matches('}');
        let mut table = BTreeMap::new();
        for part in split_top_level(inner) {
            if let Some(eq) = find_eq_anywhere(&part) {
                let key = part[..eq].trim().trim_matches('"').to_string();
                let val = parse_value(part[eq + 1..].trim());
                table.insert(key, val);
            }
        }
        return Value::Table(table);
    }
    Value::Other(s.to_string())
}

/// `=` position allowing array/table values after it.
fn find_eq_anywhere(s: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Splits on commas outside quotes and brackets.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' | '{' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cargo_manifest_shapes() {
        let doc = parse(
            r#"
[package]
name = "pqfs_demo" # trailing comment
version.workspace = true

[dependencies]
pqfs_core.workspace = true
pqfs_obs = { path = "../obs", default-features = false, features = ["telemetry"] }

[features]
default = ["avx2", "telemetry"]
avx2 = [
    "pqfs_scan/avx2",
    "pqfs_columnar/avx2",
]
"#,
        );
        assert_eq!(
            doc.get("package", "name").unwrap().as_str(),
            Some("pqfs_demo")
        );
        assert_eq!(
            doc.get("package.version", "workspace").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            doc.get("dependencies.pqfs_core", "workspace")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let obs = doc
            .get("dependencies", "pqfs_obs")
            .unwrap()
            .as_table()
            .unwrap();
        assert_eq!(obs.get("default-features").unwrap().as_bool(), Some(false));
        assert_eq!(
            obs.get("features").unwrap().as_array(),
            Some(&["telemetry".to_string()][..])
        );
        assert_eq!(
            doc.get("features", "avx2").unwrap().as_array().unwrap(),
            &[
                "pqfs_scan/avx2".to_string(),
                "pqfs_columnar/avx2".to_string()
            ]
        );
    }

    #[test]
    fn ignores_unknown_values() {
        let doc = parse("[a]\nx = 3\ny = \"keep\"");
        assert!(matches!(doc.get("a", "x"), Some(Value::Other(_))));
        assert_eq!(doc.get("a", "y").unwrap().as_str(), Some("keep"));
    }
}

//! Figure 19 — impact of partition size on pruning power and scan speed
//! (keep = 0.5 %, topk = 100).
//!
//! Pruning power is size-independent, but small partitions spend a growing
//! share of time loading small tables at group boundaries: speed collapses
//! once groups shrink below ~50 vectors (§4.2's `n_min(c) = 50·16^c` rule).
//! Below ~3 M vectors (scaled here) the right fix is grouping on 3
//! components instead of 4 — shown in the second table.
//!
//! ```sh
//! cargo run --release -p pqfs-bench --bin fig19
//! ```

#![forbid(unsafe_code)]

use pqfs_bench::{env_usize, header, scaled_partition_sizes, Fixture};
use pqfs_core::RowMajorCodes;
use pqfs_metrics::{fmt_count, fmt_f, mvecs_per_sec, time_ms, Summary, TextTable};
use pqfs_scan::{Backend, FastScanIndex, FastScanOptions, PreparedScanner, ScanOpts, ScanParams};
use std::sync::Arc;

fn libpq_scanner(codes: &Arc<RowMajorCodes>) -> Box<dyn PreparedScanner> {
    Backend::Libpq
        .scanner(&ScanOpts::default())
        .prepare(Arc::clone(codes))
        .expect("prepare")
}

fn measure(
    fx: &mut Fixture,
    codes: &RowMajorCodes,
    index: &FastScanIndex,
    libpq: &dyn PreparedScanner,
    queries: usize,
) -> (f64, f64, f64) {
    let params = ScanParams::new(100).with_keep(0.005);
    let mut pruned = Vec::new();
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    for _ in 0..queries {
        let q = fx.queries(1);
        let tables = fx.tables(&q);
        let (r, ms) = time_ms(|| index.scan(&tables, &params).unwrap());
        pruned.push(100.0 * r.stats.pruned_fraction());
        fast.push(mvecs_per_sec(index.len(), ms));
        let (_, ms) = time_ms(|| libpq.scan(&tables, &params).unwrap());
        slow.push(mvecs_per_sec(codes.len(), ms));
    }
    (
        Summary::from_values(&pruned).median(),
        Summary::from_values(&fast).median(),
        Summary::from_values(&slow).median(),
    )
}

fn main() {
    let mut sizes = scaled_partition_sizes();
    sizes.sort_by_key(|&n| std::cmp::Reverse(n));
    let queries = env_usize("PQFS_QUERIES", 3);
    header(
        "fig19",
        "Figure 19, §5.6",
        &format!("partitions ordered by size {sizes:?}, keep 0.5%, topk 100"),
    );

    let mut fx = Fixture::train(19);

    println!("partition scan (auto grouping, paper setting c = 4 at scale):");
    let mut t = TextTable::new(vec![
        "# vectors",
        "c",
        "avg group",
        "pruned [%]",
        "fastpq [Mv/s]",
        "libpq [Mv/s]",
    ]);
    let mut stored: Vec<(usize, Arc<RowMajorCodes>)> = Vec::new();
    for &n in &sizes {
        let codes = Arc::new(fx.partition(n));
        let index = FastScanIndex::build(&codes, &FastScanOptions::default()).expect("index");
        let (pruned, fast, slow) = measure(
            &mut fx,
            &codes,
            &index,
            libpq_scanner(&codes).as_ref(),
            queries,
        );
        t.row(vec![
            fmt_count(n as u64),
            index.group_components().to_string(),
            fmt_f(n as f64 / index.num_groups() as f64, 1),
            fmt_f(pruned, 2),
            fmt_f(fast, 0),
            fmt_f(slow, 0),
        ]);
        stored.push((n, codes));
    }
    println!("{t}");

    // The §5.6 point: for the smallest partitions, forcing the at-scale
    // grouping (c = 4 in the paper; the auto choice of our largest
    // partition here) hurts, while one fewer component recovers speed.
    let c_large = FastScanIndex::build(&stored[0].1, &FastScanOptions::default())
        .expect("index")
        .group_components();
    let c_small = c_large.saturating_sub(1);
    println!("small partitions: grouping on c={c_large} (at-scale) vs c={c_small}:");
    let mut t2 = TextTable::new(vec![
        "# vectors",
        &format!("c={c_large} [Mv/s]"),
        &format!("c={c_small} [Mv/s]"),
        &format!("avg group at c={c_large}"),
    ]);
    for (n, codes) in stored.iter().rev().take(3) {
        let big = FastScanIndex::build(
            codes,
            &FastScanOptions::default().with_group_components(c_large),
        )
        .expect("index");
        let small = FastScanIndex::build(
            codes,
            &FastScanOptions::default().with_group_components(c_small),
        )
        .expect("index");
        let libpq = libpq_scanner(codes);
        let (_, fast_big, _) = measure(&mut fx, codes, &big, libpq.as_ref(), queries);
        let (_, fast_small, _) = measure(&mut fx, codes, &small, libpq.as_ref(), queries);
        t2.row(vec![
            fmt_count(*n as u64),
            fmt_f(fast_big, 0),
            fmt_f(fast_small, 0),
            fmt_f(*n as f64 / big.num_groups() as f64, 1),
        ]);
    }
    println!("{t2}");
    println!(
        "paper shape: speed is flat for the large partitions and drops for the \
         smallest ones as groups approach the ~50-vector threshold; grouping \
         on one fewer component restores it."
    );
}

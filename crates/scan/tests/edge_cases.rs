//! Deterministic edge-case regression tests for PQ Fast Scan — the
//! boundary shapes a fuzzer finds occasionally but a regression suite
//! should pin down permanently.

use pqfs_core::{DistanceTables, RowMajorCodes};
use pqfs_scan::{scan_naive, FastScanIndex, FastScanOptions, Kernel, ScanParams};

const M: usize = 8;
const KSUB: usize = 256;

fn tables(seed: u32) -> DistanceTables {
    let data: Vec<f32> = (0..M * KSUB)
        .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 100_000) as f32 / 10.0)
        .collect();
    DistanceTables::from_raw(data, M, KSUB)
}

fn codes(n: usize, seed: u32) -> RowMajorCodes {
    let bytes: Vec<u8> = (0..n * M)
        .map(|i| ((i as u32).wrapping_mul(40503).wrapping_add(seed) >> 8) as u8)
        .collect();
    RowMajorCodes::new(bytes, M)
}

fn assert_exact(codes: &RowMajorCodes, topk: usize, keep: f64, c: usize, tag: &str) {
    let tables = tables(7);
    let opts = FastScanOptions::default().with_group_components(c);
    let index = FastScanIndex::build(codes, &opts).unwrap();
    let fast = index
        .scan(&tables, &ScanParams::new(topk).with_keep(keep))
        .unwrap();
    let slow = scan_naive(&tables, codes, topk);
    assert_eq!(fast.ids(), slow.ids(), "{tag}: ids");
    assert_eq!(fast.distances(), slow.distances(), "{tag}: distances");
    assert_eq!(
        fast.stats.warmup + fast.stats.pruned + fast.stats.verified,
        fast.stats.scanned,
        "{tag}: accounting"
    );
}

#[test]
fn single_vector_partition() {
    assert_exact(&codes(1, 1), 1, 0.005, 4, "n=1");
    assert_exact(&codes(1, 1), 10, 0.5, 0, "n=1 topk>n");
}

#[test]
fn partition_smaller_than_one_block() {
    for n in 2..16 {
        assert_exact(&codes(n, 3), 3.min(n), 0.01, 4, &format!("n={n}"));
    }
}

#[test]
fn partition_sizes_around_block_boundaries() {
    for n in [15usize, 16, 17, 31, 32, 33, 255, 256, 257] {
        assert_exact(&codes(n, 9), 5, 0.005, 2, &format!("n={n}"));
    }
}

#[test]
fn topk_equals_partition_size() {
    let c = codes(200, 11);
    assert_exact(&c, 200, 0.005, 3, "topk==n");
    assert_exact(&c, 500, 0.005, 3, "topk>n");
}

#[test]
fn keep_extremes() {
    let c = codes(300, 13);
    assert_exact(&c, 10, 0.0, 4, "keep=0");
    assert_exact(&c, 10, 1.0, 4, "keep=1");
    assert_exact(&c, 10, 2.0, 4, "keep>1 clamps");
    assert_exact(&c, 10, -0.5, 4, "keep<0 clamps");
}

#[test]
fn all_identical_codes() {
    // Every vector encodes to the same code: massive ties, single group.
    let bytes = vec![0xABu8; 64 * M];
    let c = RowMajorCodes::new(bytes, M);
    assert_exact(&c, 7, 0.01, 4, "identical codes");
}

#[test]
fn two_distance_levels_with_ties_across_groups() {
    // Half the vectors share code A, half code B, alternating, so ties
    // straddle group boundaries and the id tie-break is exercised.
    let mut bytes = Vec::with_capacity(128 * M);
    for i in 0..128 {
        let c = if i % 2 == 0 { 0x11u8 } else { 0xEE };
        bytes.extend(std::iter::repeat(c).take(M));
    }
    let c = RowMajorCodes::new(bytes, M);
    assert_exact(&c, 70, 0.01, 4, "two-level ties");
}

#[test]
fn every_kernel_handles_the_empty_partition() {
    let empty = RowMajorCodes::new(vec![], M);
    for kernel in [Kernel::Auto, Kernel::Portable] {
        let index =
            FastScanIndex::build(&empty, &FastScanOptions::default().with_kernel(kernel)).unwrap();
        let r = index.scan(&tables(1), &ScanParams::new(5)).unwrap();
        assert!(r.neighbors.is_empty());
        assert_eq!(r.stats.scanned, 0);
    }
}

#[test]
fn zero_distance_tables() {
    // All distances zero: every vector ties at 0; exactness must hold and
    // nothing may be pruned incorrectly.
    let tables = DistanceTables::from_raw(vec![0.0; M * KSUB], M, KSUB);
    let c = codes(100, 17);
    let index = FastScanIndex::build(&c, &FastScanOptions::default()).unwrap();
    let fast = index.scan(&tables, &ScanParams::new(10)).unwrap();
    let slow = scan_naive(&tables, &c, 10);
    assert_eq!(fast.ids(), slow.ids());
    assert_eq!(
        fast.ids(),
        (0..10).collect::<Vec<u64>>(),
        "ties resolve by id"
    );
}

#[test]
fn huge_distance_range_saturates_safely() {
    // One table entry dwarfs everything else: quantization saturates but
    // results stay exact.
    let mut data = vec![1.0f32; M * KSUB];
    data[0] = 1e30;
    data[KSUB + 5] = 1e-30;
    let tables = DistanceTables::from_raw(data, M, KSUB);
    let c = codes(500, 19);
    let index = FastScanIndex::build(&c, &FastScanOptions::default()).unwrap();
    let fast = index
        .scan(&tables, &ScanParams::new(5).with_keep(0.01))
        .unwrap();
    let slow = scan_naive(&tables, &c, 5);
    assert_eq!(fast.ids(), slow.ids());
}

#[test]
fn explicit_bins_one_still_exact() {
    let c = codes(400, 23);
    let tables = tables(3);
    let index = FastScanIndex::build(&c, &FastScanOptions::default().with_bins(1)).unwrap();
    let fast = index
        .scan(&tables, &ScanParams::new(10).with_keep(0.01))
        .unwrap();
    assert_eq!(fast.ids(), scan_naive(&tables, &c, 10).ids());
}

#[test]
fn rejects_wrong_shapes() {
    let bad_codes = RowMajorCodes::new(vec![0u8; 12], 4);
    assert!(FastScanIndex::build(&bad_codes, &FastScanOptions::default()).is_err());
    let index = FastScanIndex::build(&codes(10, 1), &FastScanOptions::default()).unwrap();
    let small_tables = DistanceTables::from_raw(vec![0.0; 8 * 16], 8, 16);
    assert!(index.scan(&small_tables, &ScanParams::new(1)).is_err());
    assert!(FastScanIndex::build(
        &codes(10, 1),
        &FastScanOptions::default().with_group_components(5)
    )
    .is_err());
}

//! The executor: worker threads, per-worker deques, scoped task groups.

use pqfs_obs::{LazyCounter, LazyGauge};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

static TASKS: LazyCounter = LazyCounter::new(
    "pqfs_pool_tasks_total",
    "Pool tasks executed (by workers and by helping submitter threads)",
);
static STEALS: LazyCounter = LazyCounter::new(
    "pqfs_pool_steals_total",
    "Pool tasks taken from another thread's deque",
);
static BUSY_NS: LazyCounter = LazyCounter::new(
    "pqfs_pool_busy_ns_total",
    "Nanoseconds spent executing pool tasks",
);
static QUEUE_HWM: LazyGauge = LazyGauge::new(
    "pqfs_pool_queue_depth_hwm",
    "High-water mark of tasks queued across all deques",
);

/// Executes one job, counting it and its busy time.
fn run_job(job: Job) {
    run_inline(job)
}

/// [`run_job`] for un-boxed thunks (the serial inline path counts too, so
/// the task counters are pool-size-independent).
fn run_inline(thunk: impl FnOnce()) {
    TASKS.inc();
    if pqfs_obs::enabled() {
        let start = std::time::Instant::now();
        thunk();
        BUSY_NS.add(start.elapsed().as_nanos() as u64);
    } else {
        thunk();
    }
}

/// A type-erased unit of work. Scoped borrows are transmuted to `'static`
/// before a job enters a deque; soundness is argued at the transmute site.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Target number of tasks generated per participating thread. More tasks
/// than threads is what makes stealing balance skewed workloads; 8 keeps
/// per-task overhead negligible while bounding the skew any single task can
/// contribute to the critical path.
const TASKS_PER_THREAD: usize = 8;

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker. Owners pop from the back (most recently pushed,
    /// cache-warm); thieves — siblings and submitting threads — steal from
    /// the front (oldest first, likely the largest remaining work).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs currently sitting in some deque (not yet picked up).
    pending: AtomicUsize,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Parking lot for idle workers; the guarded flag is the shutdown signal.
    lot: Mutex<bool>,
    wake: Condvar,
}

impl Shared {
    /// Enqueues a job on the next deque in round-robin order and wakes a
    /// sleeping worker.
    fn push(&self, job: Job) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
        let depth = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        QUEUE_HWM.record_max(depth as u64);
        // Taking the lot lock orders this wake-up against a worker that just
        // observed `pending == 0` and is about to sleep.
        let _lot = self.lot.lock().unwrap_or_else(PoisonError::into_inner);
        self.wake.notify_all();
    }

    /// Worker `me` looks for work: own deque from the back, then steals
    /// from siblings' fronts.
    fn grab(&self, me: usize) -> Option<Job> {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return None;
        }
        if let Some(job) = self.deques[me]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
        {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for k in 1..self.deques.len() {
            let i = (me + k) % self.deques.len();
            if let Some(job) = self.deques[i]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                STEALS.inc();
                return Some(job);
            }
        }
        None
    }

    /// A non-worker (submitting thread) steals from any deque front.
    fn steal_any(&self) -> Option<Job> {
        if self.deques.is_empty() || self.pending.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let start = self.next.load(Ordering::Relaxed);
        for k in 0..self.deques.len() {
            let i = (start + k) % self.deques.len();
            if let Some(job) = self.deques[i]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                STEALS.inc();
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.grab(me) {
            run_job(job);
            continue;
        }
        let lot = shared.lot.lock().unwrap_or_else(PoisonError::into_inner);
        if *lot {
            return; // shutdown
        }
        if shared.pending.load(Ordering::SeqCst) == 0 {
            // Rechecked under the lot lock: `push` takes the same lock
            // before notifying, so this wait cannot miss a wake-up.
            drop(
                shared
                    .wake
                    .wait(lot)
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
    }
}

/// Completion tracking for one group of scoped tasks.
struct ScopeState {
    remaining: AtomicUsize,
    /// Set by the first panicking task; later tasks skip their payload and
    /// only decrement `remaining`.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl ScopeState {
    fn new(tasks: usize) -> Self {
        ScopeState {
            remaining: AtomicUsize::new(tasks),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }
}

/// A persistent work-stealing thread pool (see the crate docs for the
/// design). Cheap to share by reference; [`ThreadPool::global`] provides the
/// process-wide instance.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total participants: `threads - 1`
    /// background workers plus the submitting thread, which always helps
    /// execute. `threads <= 1` spawns nothing and runs every task inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let worker_count = threads - 1;
        let shared = Arc::new(Shared {
            deques: (0..worker_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            lot: Mutex::new(false),
            wake: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pqfs-worker-{me}"))
                    .spawn(move || worker_loop(shared, me))
                    // Failing to spawn a worker leaves the pool unable to
                    // uphold its parallelism contract; documented panic.
                    // pqfs-lint: allow(forbidden-panic)
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total participating threads (workers plus the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Task length for `n` items: enough tasks for stealing to balance skew
    /// (`TASKS_PER_THREAD` per participant), independent of which thread
    /// runs what.
    fn task_len(&self, n: usize) -> usize {
        n.div_ceil(self.threads * TASKS_PER_THREAD).max(1)
    }

    /// Runs a group of scoped tasks to completion, on workers and the
    /// calling thread. Returns only after every task has finished; re-raises
    /// the first observed panic.
    fn scope<'scope, G>(&self, thunks: Vec<G>)
    where
        G: FnOnce() + Send + 'scope,
    {
        if thunks.is_empty() {
            return;
        }
        if self.workers.is_empty() || thunks.len() == 1 {
            // Serial baseline: run inline, panics propagate natively.
            for thunk in thunks {
                run_inline(thunk);
            }
            return;
        }
        let state = Arc::new(ScopeState::new(thunks.len()));
        for thunk in thunks {
            let state = Arc::clone(&state);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if !state.poisoned.load(Ordering::Relaxed) {
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(thunk)) {
                        state.poisoned.store(true, Ordering::Relaxed);
                        let mut slot = state.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some(annotate_panic(payload));
                        }
                    }
                }
                if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut done = state.done.lock().unwrap_or_else(PoisonError::into_inner);
                    *done = true;
                    state.done_cv.notify_all();
                }
            });
            // SAFETY: the job borrows data living on this call's stack (the
            // `'scope` captures). The wait loop below blocks this function
            // until `remaining == 0`, i.e. until every job has *finished
            // executing* — jobs leave a deque only by running — so no borrow
            // outlives its referent. The transmute only erases the lifetime;
            // layout of `Box<dyn FnOnce() + Send>` is lifetime-invariant.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            self.shared.push(job);
        }
        // Help with queued work (this scope's or any other's — draining
        // someone else's task still makes global progress and is what makes
        // nested scopes deadlock-free) until this scope completes.
        while state.remaining.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.shared.steal_any() {
                run_job(job);
            } else {
                // Nothing queued anywhere: our stragglers are running on
                // workers. Park until the last one flips `done`. The timeout
                // is defensive only — the flag is set under the same lock.
                let done = state.done.lock().unwrap_or_else(PoisonError::into_inner);
                if !*done {
                    let _ = state
                        .done_cv
                        .wait_timeout(done, Duration::from_millis(1))
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        let payload = state
            .panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// Maps `f` over `items` in parallel, preserving input order. `f`
    /// receives `(index, &item)`. Panics in `f` propagate to the caller
    /// after all tasks settle.
    pub fn parallel_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        enum Never {}
        match self.try_parallel_map(items, |i, item| Ok::<U, Never>(f(i, item))) {
            Ok(out) => out,
            Err(never) => match never {},
        }
    }

    /// Fallible [`parallel_map`](Self::parallel_map): the first `Err` aborts
    /// all work at higher input indices and is returned. The error with the
    /// lowest input index always wins — items below it are still evaluated,
    /// so the reported error does not depend on thread scheduling.
    pub fn try_parallel_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let task = self.task_len(n);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(task)
            .map(|start| (start, (start + task).min(n)))
            .collect();
        let slots: Vec<Mutex<Option<Vec<U>>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
        // Lowest input index known to have errored. Tasks stop before any
        // item at a higher index, but items at lower indices keep being
        // evaluated — so the lowest-index error always wins, independent of
        // thread scheduling.
        let err_index = AtomicUsize::new(usize::MAX);
        let f = &f;
        let err_index_ref = &err_index;
        let err_ref = &first_err;
        self.scope(
            ranges
                .iter()
                .zip(&slots)
                .map(|(&(start, end), slot)| {
                    move || {
                        let mut out = Vec::with_capacity(end - start);
                        for (i, item) in items[start..end].iter().enumerate() {
                            if start + i > err_index_ref.load(Ordering::Relaxed) {
                                break;
                            }
                            match f(start + i, item) {
                                Ok(value) => out.push(value),
                                Err(e) => {
                                    err_index_ref.fetch_min(start + i, Ordering::Relaxed);
                                    let mut slot =
                                        err_ref.lock().unwrap_or_else(PoisonError::into_inner);
                                    match slot.as_ref() {
                                        Some((j, _)) if start + i >= *j => {}
                                        _ => *slot = Some((start + i, e)),
                                    }
                                    break;
                                }
                            }
                        }
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                    }
                })
                .collect(),
        );
        if let Some((_, e)) = first_err
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(e);
        }
        let mut result = Vec::with_capacity(n);
        for slot in slots {
            result.extend(
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| unreachable!("completed scope filled every slot")),
            );
        }
        Ok(result)
    }

    /// Maps `f` over mutable items in parallel, preserving input order. `f`
    /// receives `(index, &mut item)`; each item is visited exactly once.
    pub fn parallel_map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let task = self.task_len(n);
        let pieces = split_pieces(items, task);
        let slots: Vec<Mutex<Option<Vec<U>>>> = pieces.iter().map(|_| Mutex::new(None)).collect();
        let f = &f;
        self.scope(
            pieces
                .into_iter()
                .zip(&slots)
                .map(|((start, piece), slot)| {
                    move || {
                        let mut out = Vec::with_capacity(piece.len());
                        for (k, item) in piece.iter_mut().enumerate() {
                            out.push(f(start + k, item));
                        }
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                    }
                })
                .collect(),
        );
        let mut result = Vec::with_capacity(n);
        for slot in slots {
            result.extend(
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| unreachable!("completed scope filled every slot")),
            );
        }
        result
    }

    /// Runs `f` over disjoint `chunk`-sized slices of `data` in parallel.
    /// `f` receives `(offset_of_chunk_start, &mut chunk)`. The chunk size is
    /// the caller's stealing granularity: decomposition depends only on
    /// `data.len()` and `chunk`, never on the pool size, so chunk-local
    /// computations (e.g. partial float sums) are reproducible across any
    /// thread count.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        let pieces = split_pieces(data, chunk.max(1));
        let f = &f;
        self.scope(
            pieces
                .into_iter()
                .map(|(start, piece)| move || f(start, piece))
                .collect(),
        );
    }
}

/// Rewrites a string-like panic payload to carry the name of the thread it
/// fired on (e.g. `boom [on pqfs-worker-2]`), so a panic propagated from a
/// pool worker to the submitting thread still attributes to its origin.
/// Non-string payloads pass through untouched.
fn annotate_panic(payload: Box<dyn std::any::Any + Send>) -> Box<dyn std::any::Any + Send> {
    let thread = std::thread::current();
    let Some(name) = thread.name() else {
        return payload;
    };
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    match msg {
        Some(m) => Box::new(format!("{m} [on {name}]")),
        None => payload,
    }
}

/// Splits a slice into `(start_offset, sub-slice)` pieces of at most `len`
/// elements.
fn split_pieces<T>(mut data: &mut [T], len: usize) -> Vec<(usize, &mut [T])> {
    let mut pieces = Vec::with_capacity(data.len().div_ceil(len));
    let mut offset = 0;
    while !data.is_empty() {
        let take = len.min(data.len());
        let (head, tail) = data.split_at_mut(take);
        pieces.push((offset, head));
        offset += take;
        data = tail;
    }
    pieces
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut lot = self
                .shared
                .lot
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *lot = true;
            self.shared.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = ThreadPool::new(4);
        let out: Vec<u32> = pool.parallel_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        let out: Result<Vec<u32>, ()> = pool.try_parallel_map(&[] as &[u32], |_, &x| Ok(x));
        assert_eq!(out.unwrap(), Vec::<u32>::new());
        pool.for_each_chunk(&mut [] as &mut [u32], 8, |_, _| unreachable!());
    }

    #[test]
    fn map_preserves_order_with_more_tasks_than_workers() {
        let pool = ThreadPool::new(3);
        let items: Vec<u64> = (0..10_000).collect();
        let out = pool.parallel_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out.len(), items.len());
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 2);
        }
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let main = std::thread::current().id();
        let out = pool.parallel_map(&[1, 2, 3], |_, &x: &i32| {
            assert_eq!(std::thread::current().id(), main);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..100).collect();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&items, |_, &x| {
                if x == 61 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The pool must stay usable after a panicking scope.
        assert_eq!(pool.parallel_map(&[7u32], |_, &x| x), vec![7]);
    }

    #[test]
    fn try_map_reports_lowest_index_error_and_short_circuits() {
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..10_000).collect();
        let executed = AtomicUsize::new(0);
        let result: Result<Vec<u32>, String> = pool.try_parallel_map(&items, |i, &x| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i >= 5 {
                Err(format!("bad {i}"))
            } else {
                Ok(x)
            }
        });
        let err = result.unwrap_err();
        // Deterministic regardless of scheduling: the lowest-index error.
        assert_eq!(err, "bad 5");
        assert!(
            executed.load(Ordering::Relaxed) < items.len(),
            "short-circuit must skip work"
        );
    }

    #[test]
    fn nested_parallel_map_completes() {
        let pool = ThreadPool::new(4);
        let outer: Vec<u64> = (0..16).collect();
        let totals = pool.parallel_map(&outer, |_, &x| {
            let inner: Vec<u64> = (0..64).collect();
            pool.parallel_map(&inner, |_, &y| x * 1000 + y)
                .into_iter()
                .sum::<u64>()
        });
        for (i, &t) in totals.iter().enumerate() {
            let expect: u64 = (0..64).map(|y| i as u64 * 1000 + y).sum();
            assert_eq!(t, expect);
        }
    }

    #[test]
    fn nested_on_global_pool_completes() {
        let pool = ThreadPool::global();
        let out = pool.parallel_map(&[1u32, 2, 3, 4], |_, &x| {
            pool.parallel_map(&[10u32, 20], |_, &y| x + y)
                .into_iter()
                .sum::<u32>()
        });
        assert_eq!(out, vec![32, 34, 36, 38]);
    }

    #[test]
    fn map_mut_visits_every_item_exactly_once() {
        let pool = ThreadPool::new(4);
        let mut items = vec![0u32; 5000];
        let indexes = pool.parallel_map_mut(&mut items, |i, slot| {
            *slot += 1;
            i
        });
        assert!(items.iter().all(|&v| v == 1));
        // Output order is input order.
        for (k, &i) in indexes.iter().enumerate() {
            assert_eq!(k, i);
        }
    }

    #[test]
    fn for_each_chunk_covers_the_slice_with_correct_offsets() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 1013]; // deliberately not a chunk multiple
        pool.for_each_chunk(&mut data, 64, |start, chunk| {
            assert!(chunk.len() <= 64);
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = (start + k) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn chunk_decomposition_is_thread_count_independent() {
        // The same chunk size must produce the same partial-sum grouping on
        // any pool, so chunk-local float accumulation is reproducible.
        let data: Vec<f64> = (0..3000).map(|i| (i as f64).sqrt()).collect();
        let sum_with = |pool: &ThreadPool| -> f64 {
            let mut copy = data.clone();
            let partials = Mutex::new(vec![0f64; copy.len().div_ceil(256)]);
            pool.for_each_chunk(&mut copy, 256, |start, chunk| {
                partials.lock().unwrap_or_else(PoisonError::into_inner)[start / 256] =
                    chunk.iter().sum();
            });
            let partials = partials.into_inner().unwrap();
            partials.iter().sum()
        };
        let s1 = sum_with(&ThreadPool::new(1));
        let s2 = sum_with(&ThreadPool::new(2));
        let s8 = sum_with(&ThreadPool::new(8));
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn heavy_skew_load_balances() {
        // One item is 100× the work of the rest; with dynamic stealing the
        // other items still complete (this is a liveness/correctness test —
        // timing is covered by the bench crate's scaling binary).
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        let out = pool.parallel_map(&items, |_, &x| {
            let spins = if x == 0 { 2_000_000 } else { 20_000 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn worker_threads_are_named_for_profilers() {
        let pool = ThreadPool::new(4);
        let names: Vec<&str> = pool
            .workers
            .iter()
            .map(|w| w.thread().name().expect("worker must be named"))
            .collect();
        assert_eq!(
            names,
            vec!["pqfs-worker-0", "pqfs-worker-1", "pqfs-worker-2"]
        );
    }

    #[test]
    fn propagated_panics_name_the_executing_thread() {
        // Every thread that can execute a scoped task here is named (pool
        // workers always; the libtest main thread carries the test name), so
        // the payload must gain the `[on …]` suffix.
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..100).collect();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&items, |_, &x| {
                if x == 42 {
                    panic!("kaboom at {x}");
                }
                x
            })
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("kaboom at 42"), "unexpected payload: {msg}");
        assert!(msg.contains(" [on "), "missing thread attribution: {msg}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn pool_work_moves_the_task_counters() {
        let before = pqfs_obs::counter_value("pqfs_pool_tasks_total", None);
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        let out = pool.parallel_map(&items, |_, &x| x + 1);
        assert_eq!(out.len(), items.len());
        let after = pqfs_obs::counter_value("pqfs_pool_tasks_total", None);
        assert!(
            after > before,
            "parallel_map must execute counted tasks ({before} -> {after})"
        );
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map(&[1u8, 2, 3], |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
        drop(pool); // must not hang
    }
}

//! Dictionaries for compressed columns.
//!
//! Paper §6: "In the case of dictionary-based compression (or quantization),
//! the database stores compact codes. A dictionary (or codebook) holds the
//! actual values corresponding to the compact codes."
//!
//! The dictionary here is built from **quantiles** of the column values and
//! is therefore *sorted* — the 1-dimensional analogue of the paper's §4.3
//! optimized assignment: each 16-entry portion holds close values, so the
//! portion maxima (for top-k upper bounds) and portion means (for
//! approximate aggregates) are tight.

/// Entries per portion (one SIMD small table).
pub const PORTION: usize = 16;

/// Maximum dictionary size (codes are single bytes).
pub const MAX_DICT: usize = 256;

/// A sorted dictionary of at most 256 float values.
#[derive(Debug, Clone, PartialEq)]
pub struct Dictionary {
    values: Vec<f32>,
}

impl Dictionary {
    /// Builds a dictionary from explicit values (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, longer than 256, or contains
    /// non-finite entries.
    pub fn new(mut values: Vec<f32>) -> Self {
        assert!(
            !values.is_empty() && values.len() <= MAX_DICT,
            "1..=256 values required"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        values.sort_by(f32::total_cmp); // entries asserted finite above
        Dictionary { values }
    }

    /// Builds a quantile dictionary: `size` evenly spaced quantiles of the
    /// data, deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `size == 0` or `size > 256`.
    pub fn from_quantiles(data: &[f32], size: usize) -> Self {
        assert!(!data.is_empty(), "cannot build a dictionary from no data");
        assert!(size > 0 && size <= MAX_DICT);
        let mut sorted = data.to_vec();
        sorted.sort_by(f32::total_cmp);
        let mut values: Vec<f32> = (0..size)
            .map(|i| {
                let rank = i as f64 / (size.max(2) - 1) as f64 * (sorted.len() - 1) as f64;
                sorted[rank.round() as usize]
            })
            .collect();
        values.dedup();
        Dictionary { values }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary holds a single value. (A dictionary is
    /// never empty.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The decoded value of `code`.
    ///
    /// # Panics
    ///
    /// Panics if `code as usize >= len()`.
    #[inline]
    pub fn decode(&self, code: u8) -> f32 {
        self.values[code as usize]
    }

    /// All values, ascending.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Code of the entry nearest to `v` (ties toward the lower code).
    pub fn encode(&self, v: f32) -> u8 {
        // Binary search on the sorted dictionary, then compare neighbors.
        let idx = self.values.partition_point(|&d| d < v);
        let candidates = [idx.saturating_sub(1), idx.min(self.values.len() - 1)];
        let mut best = candidates[0];
        for &c in &candidates {
            if (self.values[c] - v).abs() < (self.values[best] - v).abs() {
                best = c;
            }
        }
        best as u8
    }

    /// Number of 16-entry portions (the last may be partial).
    pub fn num_portions(&self) -> usize {
        self.values.len().div_ceil(PORTION)
    }

    /// Maximum of each portion — the §6 *maximum tables* for top-k upper
    /// bounds. Always 16 entries; portions beyond the dictionary replicate
    /// the global minimum so they can never win a max comparison.
    pub fn portion_maxima(&self) -> [f32; PORTION] {
        let fill = self.values[0];
        let mut out = [fill; PORTION];
        for (p, chunk) in self.values.chunks(PORTION).enumerate() {
            out[p] = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        }
        out
    }

    /// Minimum of each portion (for top-k-smallest queries / lower bounds).
    pub fn portion_minima(&self) -> [f32; PORTION] {
        let fill = *self
            .values
            .last()
            .unwrap_or_else(|| unreachable!("dictionary is never empty"));
        let mut out = [fill; PORTION];
        for (p, chunk) in self.values.chunks(PORTION).enumerate() {
            out[p] = chunk.iter().copied().fold(f32::INFINITY, f32::min);
        }
        out
    }

    /// Mean of each portion — the §6 *tables of aggregates* for approximate
    /// aggregation.
    pub fn portion_means(&self) -> [f32; PORTION] {
        let mut out = [0f32; PORTION];
        for (p, chunk) in self.values.chunks(PORTION).enumerate() {
            out[p] = chunk.iter().sum::<f32>() / chunk.len() as f32;
        }
        out
    }

    /// Largest distance between a value and its portion mean — an a-priori
    /// error bound for portion-mean aggregation.
    pub fn max_portion_spread(&self) -> f32 {
        let means = self.portion_means();
        self.values
            .chunks(PORTION)
            .enumerate()
            .flat_map(|(p, chunk)| chunk.iter().map(move |&v| (v - means[p]).abs()))
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_values() {
        let d = Dictionary::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(d.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn quantile_dictionary_spans_the_data() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let d = Dictionary::from_quantiles(&data, 256);
        assert!(d.len() > 200);
        assert_eq!(d.values()[0], 0.0);
        assert_eq!(*d.values().last().unwrap(), 999.0);
    }

    #[test]
    fn encode_decode_picks_nearest() {
        let d = Dictionary::new(vec![0.0, 10.0, 20.0]);
        assert_eq!(d.encode(-5.0), 0);
        assert_eq!(d.encode(4.0), 0);
        assert_eq!(d.encode(6.0), 1);
        assert_eq!(d.encode(14.0), 1);
        assert_eq!(d.encode(19.0), 2);
        assert_eq!(d.encode(100.0), 2);
        assert_eq!(d.decode(1), 10.0);
    }

    #[test]
    fn portion_maxima_bound_every_member() {
        let values: Vec<f32> = (0..100).map(|i| ((i * 37) % 83) as f32).collect();
        let d = Dictionary::new(values);
        let maxima = d.portion_maxima();
        for (i, &v) in d.values().iter().enumerate() {
            assert!(maxima[i / PORTION] >= v);
        }
    }

    #[test]
    fn portion_minima_bound_every_member() {
        let values: Vec<f32> = (0..60).map(|i| ((i * 53) % 71) as f32).collect();
        let d = Dictionary::new(values);
        let minima = d.portion_minima();
        for (i, &v) in d.values().iter().enumerate() {
            assert!(minima[i / PORTION] <= v);
        }
    }

    #[test]
    fn sorted_dictionary_has_tight_portions() {
        // Sorted portions: spread within a portion is far below the global
        // spread — the reason quantile dictionaries act like the optimized
        // assignment.
        let values: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let d = Dictionary::new(values);
        assert!(d.max_portion_spread() <= 8.0);
    }

    #[test]
    fn portion_means_average_their_chunk() {
        let d = Dictionary::new((0..32).map(|i| i as f32).collect());
        let means = d.portion_means();
        assert_eq!(means[0], 7.5);
        assert_eq!(means[1], 23.5);
    }

    #[test]
    #[should_panic(expected = "1..=256")]
    fn oversized_dictionary_is_rejected() {
        Dictionary::new(vec![0.0; 257]);
    }
}

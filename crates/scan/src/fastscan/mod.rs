//! PQ Fast Scan (paper §4): the paper's primary contribution.
//!
//! Fast Scan replaces the L1-cache-resident distance tables of PQ Scan with
//! **small tables sized to fit SIMD registers**, built by combining
//!
//! 1. **vector grouping** ([`grouping`]) — the first 4 components only need
//!    the 16-entry table portion shared by the whole group;
//! 2. **minimum tables** ([`mintables`]) — the last 4 components use the
//!    minimum of each portion, tightened by the optimized centroid-index
//!    assignment (`ProductQuantizer::optimize_assignment`);
//! 3. **8-bit distance quantization** ([`crate::quantize`]).
//!
//! The small tables yield a *lower bound* per vector; only vectors whose
//! bound beats the current top-k threshold get an exact ADC computation
//! (Figure 6). The result set is **exactly** the one PQ Scan returns.
//!
//! ```
//! use pqfs_core::{DistanceTables, PqConfig, ProductQuantizer};
//! use pqfs_scan::{FastScanIndex, FastScanOptions, ScanParams, scan_naive};
//! use rand::{Rng, SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = PqConfig::pq8x8(32);
//! let train: Vec<f32> = (0..1000 * 32).map(|_| rng.gen_range(0.0f32..100.0)).collect();
//! let pq = ProductQuantizer::train(&train, &config, 7).unwrap();
//! let base: Vec<f32> = (0..2000 * 32).map(|_| rng.gen_range(0.0f32..100.0)).collect();
//! let codes = pq.encode_batch(&base).unwrap();
//!
//! let index = FastScanIndex::build(&codes, &FastScanOptions::default()).unwrap();
//! let query: Vec<f32> = (0..32).map(|_| rng.gen_range(0.0f32..100.0)).collect();
//! let tables = DistanceTables::compute(&pq, &query).unwrap();
//!
//! let fast = index.scan(&tables, &ScanParams::new(10)).unwrap();
//! let slow = scan_naive(&tables, &codes, 10);
//! assert_eq!(fast.ids(), slow.ids()); // identical results, fewer distance computations
//! ```

pub mod grouping;
pub mod kernel;
pub mod layout;
pub mod mintables;
mod scan;

pub use kernel::Kernel;
pub use scan::{ScanParams, ScanScratch};

use crate::quantize::DEFAULT_BINS;
use crate::result::ScanResult;
use crate::ScanError;
use grouping::{auto_components, GroupedCodes};
use layout::FS_M;
use pqfs_core::{DistanceTables, RowMajorCodes};

/// Index-build options.
#[derive(Debug, Clone)]
pub struct FastScanOptions {
    /// Number of components to group on (`0..=4`); `None` selects
    /// automatically from the partition size using the paper's
    /// `n_min(c) = 50·16^c` rule.
    pub group_components: Option<usize>,
    /// Distance-quantization bins (see [`crate::quantize`]); defaults to
    /// [`DEFAULT_BINS`], `126` reproduces the paper's signed-range scheme.
    pub bins: u16,
    /// Kernel back-end.
    pub kernel: Kernel,
}

impl Default for FastScanOptions {
    fn default() -> Self {
        FastScanOptions {
            group_components: None,
            bins: DEFAULT_BINS,
            kernel: Kernel::Auto,
        }
    }
}

impl FastScanOptions {
    /// Fixes the number of grouping components.
    pub fn with_group_components(mut self, c: usize) -> Self {
        self.group_components = Some(c);
        self
    }

    /// Overrides the quantization bin count.
    pub fn with_bins(mut self, bins: u16) -> Self {
        self.bins = bins;
        self
    }

    /// Overrides the kernel back-end.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// A partition prepared for PQ Fast Scan: grouped, nibble-packed codes.
#[derive(Debug, Clone)]
pub struct FastScanIndex {
    grouped: GroupedCodes,
    bins: u16,
    kernel: Kernel,
}

impl FastScanIndex {
    /// Builds the index from row-major `PQ 8×8` codes.
    ///
    /// # Errors
    ///
    /// * [`ScanError::NeedsPq8x8`] if `codes.m() != 8`;
    /// * [`ScanError::BadGroupComponents`] if an explicit
    ///   `group_components > 4` was requested.
    pub fn build(codes: &RowMajorCodes, opts: &FastScanOptions) -> Result<Self, ScanError> {
        if codes.m() != FS_M {
            return Err(ScanError::NeedsPq8x8 {
                m: codes.m(),
                ksub: 256,
            });
        }
        let c = match opts.group_components {
            Some(c) if c > 4 => return Err(ScanError::BadGroupComponents { c }),
            Some(c) => c,
            None => auto_components(codes.len()),
        };
        Ok(FastScanIndex {
            grouped: GroupedCodes::build(codes, c),
            bins: opts.bins,
            kernel: opts.kernel,
        })
    }

    /// Scans the partition for the query whose distance tables are given,
    /// returning exactly the `params.topk` nearest codes (ids are positions
    /// in the original `codes`).
    ///
    /// # Errors
    ///
    /// * [`ScanError::NeedsPq8x8`] if the tables are not `8 × 256`;
    /// * [`ScanError::KernelUnavailable`] if an explicitly requested SIMD
    ///   back-end is unsupported by this CPU.
    pub fn scan(
        &self,
        tables: &DistanceTables,
        params: &ScanParams,
    ) -> Result<ScanResult, ScanError> {
        scan::scan(self, tables, params)
    }

    /// [`scan`](Self::scan) reusing a caller-held [`ScanScratch`] for the
    /// quantized table buffers, so repeated queries allocate nothing for
    /// table setup. Results are identical to [`scan`](Self::scan).
    ///
    /// # Errors
    ///
    /// As [`scan`](Self::scan).
    pub fn scan_with(
        &self,
        tables: &DistanceTables,
        params: &ScanParams,
        scratch: &mut ScanScratch,
    ) -> Result<ScanResult, ScanError> {
        scan::scan_with(self, tables, params, scratch)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.grouped.len()
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.grouped.is_empty()
    }

    /// Number of grouping components in use.
    pub fn group_components(&self) -> usize {
        self.grouped.layout().c()
    }

    /// Number of (non-empty) groups.
    pub fn num_groups(&self) -> usize {
        self.grouped.groups().len()
    }

    /// Bytes of packed code storage (the paper's §4.2 memory-saving claim
    /// compares this against `8 × n` for row-major codes). Block padding is
    /// included.
    pub fn code_memory_bytes(&self) -> usize {
        self.grouped.code_memory_bytes()
    }

    /// Bytes of the id permutation that maps grouped storage order back to
    /// partition positions (bookkeeping the row-major layout doesn't need).
    pub fn ids_memory_bytes(&self) -> usize {
        self.grouped.ids_memory_bytes()
    }

    pub(crate) fn grouped(&self) -> &GroupedCodes {
        &self.grouped
    }

    pub(crate) fn bins(&self) -> u16 {
        self.bins
    }

    pub(crate) fn kernel(&self) -> Kernel {
        self.kernel
    }
}

//! Fault-injecting [`Read`]/[`Write`] wrappers.
//!
//! Each wrapper consumes **one trigger** of its named failpoint at
//! construction and then applies the action deterministically by stream
//! byte offset — so `bitflip(100)` corrupts the same byte of the same file
//! on every run, regardless of buffering or thread scheduling.

use crate::{injected_error, registry, FaultAction};
use std::io::{self, Read, Write};

/// The stream-applicable subset of [`FaultAction`].
#[derive(Debug, Clone, Copy)]
enum StreamFault {
    /// Fail the first IO call.
    Error,
    /// `Read`: EOF after N bytes. `Write`: injected error after N bytes.
    Truncate(u64),
    /// Flip the low bit of the byte at this offset as it passes through.
    Flip(u64),
}

/// Consumes a trigger of `site` and maps it to a stream fault.
/// [`FaultAction::Delay`] sleeps immediately (construction-time latency).
fn stream_fault(site: &str, write: bool) -> Option<StreamFault> {
    match registry::take(site)? {
        FaultAction::Error => Some(StreamFault::Error),
        FaultAction::ShortRead(n) if !write => Some(StreamFault::Truncate(n)),
        FaultAction::ShortWrite(n) if write => Some(StreamFault::Truncate(n)),
        // A short-read armed on a writer (or vice versa) still fails loudly
        // rather than silently doing nothing.
        FaultAction::ShortRead(_) | FaultAction::ShortWrite(_) => Some(StreamFault::Error),
        FaultAction::BitFlip(k) => Some(StreamFault::Flip(k)),
        FaultAction::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
    }
}

/// A reader that injects the fault armed at its site, if any.
#[derive(Debug)]
pub struct FaultRead<R> {
    inner: R,
    site: &'static str,
    fault: Option<StreamFault>,
    offset: u64,
}

impl<R: Read> FaultRead<R> {
    /// Wraps `inner`, consuming one trigger of the `site` failpoint.
    pub fn new(inner: R, site: &'static str) -> Self {
        let fault = if registry::armed() {
            stream_fault(site, false)
        } else {
            None
        };
        FaultRead {
            inner,
            site,
            fault,
            offset: 0,
        }
    }
}

impl<R: Read> Read for FaultRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let allowed = match self.fault {
            None | Some(StreamFault::Flip(_)) => buf.len(),
            Some(StreamFault::Error) => return Err(injected_error(self.site)),
            Some(StreamFault::Truncate(n)) => {
                let left = n.saturating_sub(self.offset);
                if left == 0 {
                    return Ok(0); // premature EOF: the file "ends" here
                }
                usize::try_from(left).unwrap_or(usize::MAX).min(buf.len())
            }
        };
        let n = self.inner.read(&mut buf[..allowed])?;
        if let Some(StreamFault::Flip(k)) = self.fault {
            if (self.offset..self.offset + n as u64).contains(&k) {
                buf[(k - self.offset) as usize] ^= 1;
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// A writer that injects the fault armed at its site, if any.
#[derive(Debug)]
pub struct FaultWrite<W> {
    inner: W,
    site: &'static str,
    fault: Option<StreamFault>,
    offset: u64,
    scratch: Vec<u8>,
}

impl<W: Write> FaultWrite<W> {
    /// Wraps `inner`, consuming one trigger of the `site` failpoint.
    pub fn new(inner: W, site: &'static str) -> Self {
        let fault = if registry::armed() {
            stream_fault(site, true)
        } else {
            None
        };
        FaultWrite {
            inner,
            site,
            fault,
            offset: 0,
            scratch: Vec::new(),
        }
    }

    /// The wrapped writer (to flush/finish it independently).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let allowed = match self.fault {
            None | Some(StreamFault::Flip(_)) => buf.len(),
            Some(StreamFault::Error) => return Err(injected_error(self.site)),
            Some(StreamFault::Truncate(n)) => {
                let left = n.saturating_sub(self.offset);
                if left == 0 {
                    return Err(injected_error(self.site)); // torn write
                }
                usize::try_from(left).unwrap_or(usize::MAX).min(buf.len())
            }
        };
        let n = match self.fault {
            Some(StreamFault::Flip(k))
                if (self.offset..self.offset + allowed as u64).contains(&k) =>
            {
                self.scratch.clear();
                self.scratch.extend_from_slice(&buf[..allowed]);
                self.scratch[(k - self.offset) as usize] ^= 1;
                self.inner.write(&self.scratch)?
            }
            _ => self.inner.write(&buf[..allowed])?,
        };
        self.offset += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::{exclusive, scoped};

    #[test]
    fn passthrough_when_disarmed() {
        let _lock = exclusive();
        let mut out = Vec::new();
        let mut w = FaultWrite::new(&mut out, "w.t.off");
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(out, b"hello");
        let mut r = FaultRead::new(&b"hello"[..], "r.t.off");
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn short_read_truncates_at_the_exact_offset() {
        let _lock = exclusive();
        let _g = scoped("r.t.short", FaultAction::ShortRead(3));
        let mut r = FaultRead::new(&b"abcdef"[..], "r.t.short");
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc");
    }

    #[test]
    fn bitflip_corrupts_exactly_one_read_byte() {
        let _lock = exclusive();
        let _g = scoped("r.t.flip", FaultAction::BitFlip(2));
        let mut r = FaultRead::new(&b"aaaa"[..], "r.t.flip");
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, [b'a', b'a', b'a' ^ 1, b'a']);
    }

    #[test]
    fn short_write_tears_then_errors() {
        let _lock = exclusive();
        let _g = scoped("w.t.short", FaultAction::ShortWrite(4));
        let mut out = Vec::new();
        let mut w = FaultWrite::new(&mut out, "w.t.short");
        let err = w.write_all(b"abcdef").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(out, b"abcd", "exactly 4 bytes made it to the device");
    }

    #[test]
    fn bitflip_corrupts_exactly_one_written_byte() {
        let _lock = exclusive();
        let _g = scoped("w.t.flip", FaultAction::BitFlip(1));
        let mut out = Vec::new();
        let mut w = FaultWrite::new(&mut out, "w.t.flip");
        w.write_all(b"xy").unwrap();
        w.write_all(b"z").unwrap();
        assert_eq!(out, [b'x', b'y' ^ 1, b'z']);
    }

    #[test]
    fn read_error_fires_on_first_call() {
        let _lock = exclusive();
        let _g = scoped("r.t.err", FaultAction::Error);
        let mut r = FaultRead::new(&b"data"[..], "r.t.err");
        let mut buf = [0u8; 2];
        assert!(r.read(&mut buf).is_err());
    }
}

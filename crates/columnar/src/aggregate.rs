//! Approximate aggregation with in-register **tables of aggregates**
//! (paper §6: "For approximate aggregate queries (e.g., approximate mean),
//! tables of aggregates (e.g., tables of means) can be used instead of
//! minimum tables").
//!
//! Instead of decoding every row through the 256-entry dictionary, the scan
//! looks up a 16-entry table of *portion means* addressed by the code's
//! high nibble. On SSSE3 hosts the per-row table values are produced with
//! `pshufb` and accumulated with `psadbw` (sum of absolute differences
//! against zero — the classic horizontal-add-of-bytes idiom), i.e. the
//! whole aggregation runs on 8-bit integers as §6 suggests.

use crate::column::CompressedColumn;
use crate::dict::PORTION;

/// An approximate aggregate with an a-priori error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxAggregate {
    /// The approximate value.
    pub value: f32,
    /// Guaranteed bound on `|approx − exact|`.
    pub error_bound: f32,
}

/// Approximate mean via the 16-entry portion-mean table.
///
/// Error bound: every row's value differs from its portion mean by at most
/// [`crate::dict::Dictionary::max_portion_spread`]; 8-bit quantization of
/// the mean table adds at most half a quantization step.
pub fn approximate_mean(column: &CompressedColumn) -> ApproxAggregate {
    if column.is_empty() {
        return ApproxAggregate {
            value: 0.0,
            error_bound: 0.0,
        };
    }
    let dict = column.dict();
    let means = dict.portion_means();

    // Quantize the mean table to u8 (round to nearest).
    let lo = means.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = means.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = hi - lo;
    let (delta, qmeans) = if span > 0.0 {
        let delta = span / 255.0;
        let mut q = [0u8; PORTION];
        for (slot, &m) in q.iter_mut().zip(means.iter()) {
            *slot = ((m - lo) / delta).round().clamp(0.0, 255.0) as u8;
        }
        (delta, q)
    } else {
        (0.0, [0u8; PORTION])
    };

    let sum_q = sum_quantized(column.codes(), &qmeans);
    let n = column.len() as f64;
    let value = (lo as f64 + delta as f64 * (sum_q as f64 / n)) as f32;
    let error_bound = dict.max_portion_spread() + delta / 2.0 + 1e-4 * value.abs();
    ApproxAggregate { value, error_bound }
}

/// Approximate sum (same machinery, scaled by the row count).
pub fn approximate_sum(column: &CompressedColumn) -> ApproxAggregate {
    let mean = approximate_mean(column);
    let n = column.len() as f32;
    ApproxAggregate {
        value: mean.value * n,
        error_bound: mean.error_bound * n,
    }
}

/// Sums `qmeans[code >> 4]` over all codes (dispatches to SSSE3).
fn sum_quantized(codes: &[u8], qmeans: &[u8; PORTION]) -> u64 {
    #[cfg(all(target_arch = "x86_64", feature = "avx2"))]
    {
        if std::arch::is_x86_feature_detected!("sse4.1") {
            // SAFETY: SSE4.1 (which implies the SSSE3 shuffle) detected.
            return unsafe { sum_quantized_ssse3(codes, qmeans) };
        }
    }
    sum_quantized_portable(codes, qmeans)
}

fn sum_quantized_portable(codes: &[u8], qmeans: &[u8; PORTION]) -> u64 {
    codes
        .iter()
        .map(|&c| qmeans[(c >> 4) as usize] as u64)
        .sum()
}

/// # Safety
///
/// The caller must verify SSE4.1 support at runtime
/// (`is_x86_feature_detected!("sse4.1")` — SSE4.1 implies SSSE3) before
/// calling: the kernel uses `pshufb` (SSSE3) and `pextrq` (SSE4.1).
#[cfg(all(target_arch = "x86_64", feature = "avx2"))]
#[target_feature(enable = "ssse3,sse4.1")]
unsafe fn sum_quantized_ssse3(codes: &[u8], qmeans: &[u8; PORTION]) -> u64 {
    use std::arch::x86_64::*;
    // SAFETY: `qmeans` is a `[u8; 16]` — exactly one unaligned 128-bit load.
    let table = unsafe { _mm_loadu_si128(qmeans.as_ptr() as *const __m128i) };
    let low = _mm_set1_epi8(0x0F);
    let zero = _mm_setzero_si128();
    let mut total = 0u64;
    let chunks = codes.chunks_exact(PORTION);
    let remainder = chunks.remainder();
    for chunk in chunks {
        // SAFETY: `chunks_exact(16)` yields 16-byte slices, matching the
        // unaligned 128-bit load.
        let block = unsafe { _mm_loadu_si128(chunk.as_ptr() as *const __m128i) };
        let idx = _mm_and_si128(_mm_srli_epi16::<4>(block), low);
        let vals = _mm_shuffle_epi8(table, idx);
        // psadbw against zero: lane sums of 8 bytes land in the two 64-bit
        // halves.
        let sad = _mm_sad_epu8(vals, zero);
        total += _mm_cvtsi128_si64(sad) as u64;
        total += _mm_extract_epi64::<1>(sad) as u64;
    }
    total + sum_quantized_portable(remainder, qmeans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;

    fn ramp_column(n: usize) -> CompressedColumn {
        let data: Vec<f32> = (0..n).map(|i| ((i * 97 + 5) % 1009) as f32).collect();
        CompressedColumn::compress(&data, 256)
    }

    #[test]
    fn approximate_mean_is_within_its_bound() {
        for n in [16usize, 100, 1000, 4099] {
            let col = ramp_column(n);
            let approx = approximate_mean(&col);
            let exact = col.exact_mean();
            assert!(
                (approx.value - exact).abs() <= approx.error_bound,
                "n={n}: |{} - {exact}| > {}",
                approx.value,
                approx.error_bound
            );
        }
    }

    #[test]
    fn bound_is_tight_for_sorted_dictionaries() {
        let col = ramp_column(10_000);
        let approx = approximate_mean(&col);
        // Sorted (quantile) dictionary keeps portions tight, so the bound
        // stays well below the data range.
        assert!(approx.error_bound < 150.0, "bound {}", approx.error_bound);
    }

    #[test]
    fn approximate_sum_scales_the_mean() {
        let col = ramp_column(500);
        let mean = approximate_mean(&col);
        let sum = approximate_sum(&col);
        assert!((sum.value - mean.value * 500.0).abs() < 1.0);
    }

    #[test]
    fn constant_column_is_exact() {
        let dict = Dictionary::new(vec![42.0]);
        let col = CompressedColumn::from_codes(dict, vec![0; 333]);
        let approx = approximate_mean(&col);
        assert!((approx.value - 42.0).abs() <= approx.error_bound);
        assert!((approx.value - 42.0).abs() < 0.5);
    }

    #[test]
    fn empty_column_yields_zero() {
        let col = CompressedColumn::from_codes(Dictionary::new(vec![1.0]), vec![]);
        assert_eq!(
            approximate_mean(&col),
            ApproxAggregate {
                value: 0.0,
                error_bound: 0.0
            }
        );
    }

    #[test]
    fn portable_and_simd_sums_agree() {
        let mut qmeans = [0u8; PORTION];
        for (i, q) in qmeans.iter_mut().enumerate() {
            *q = (i * 13 + 7) as u8;
        }
        let codes: Vec<u8> = (0..1003).map(|i| (i * 89 % 256) as u8).collect();
        let portable = sum_quantized_portable(&codes, &qmeans);
        let dispatched = sum_quantized(&codes, &qmeans);
        assert_eq!(portable, dispatched);
    }
}

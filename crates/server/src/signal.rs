//! Minimal std-only SIGTERM/SIGINT latch for graceful shutdown.
//!
//! The server never *reacts* inside a signal handler — the handler only
//! stores a flag into a static [`AtomicBool`] (one of the few operations
//! that is async-signal-safe), and every server loop polls
//! [`triggered`] at its natural boundary (accept poll, read timeout,
//! batch pop). This crate binds `signal(2)` directly through the libc
//! that std already links, keeping the workspace dependency-free; on
//! glibc `signal` installs BSD semantics (`SA_RESTART`), which is exactly
//! why the loops poll with timeouts instead of relying on `EINTR`.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // Provided by libc, which std always links on unix. `handler` is
        // an `extern "C" fn(i32)` pointer passed as usize so no libc
        // types are needed.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a single atomic store.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        let handler = on_signal as *const () as usize;
        // SAFETY: `signal` is the libc prototype (int, handler) -> old
        // handler; `on_signal` is an `extern "C" fn(i32)` whose address
        // is a valid handler for the whole program lifetime, and it
        // performs only an async-signal-safe atomic store.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Installs the SIGTERM and SIGINT handlers (idempotent). On non-unix
/// targets this is a no-op and shutdown relies on
/// [`crate::ServerHandle::trigger_shutdown`].
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// True once SIGTERM/SIGINT arrived (or [`trigger`] ran).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Sets the flag programmatically — what the signal handler would do.
/// Used by tests and by embedders that manage their own signals.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests that exercise the shutdown path repeatedly).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_and_reset_clears() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}

//! Summary statistics for response-time distributions.
//!
//! The paper characterizes scan times by mean and quartiles (Table 4:
//! mean / 25 % / median / 75 % / 95 %) and plots empirical CDFs (Figure 14).

/// Summary of a sample of measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
}

impl Summary {
    /// Builds a summary from raw values (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(values.iter().all(|v| !v.is_nan()), "sample contains NaN");
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp); // NaNs rejected above
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Summary { sorted, mean }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample has one element (kept for API completeness;
    /// empty samples are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        *self
            .sorted
            .last()
            .unwrap_or_else(|| unreachable!("empty samples are rejected at construction"))
    }

    /// Linear-interpolation percentile, `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let var = self
            .sorted
            .iter()
            .map(|v| (v - self.mean) * (v - self.mean))
            .sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }

    /// The paper's Table 4 row: `(mean, p25, median, p75, p95)`.
    pub fn table4_row(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.mean(),
            self.percentile(25.0),
            self.median(),
            self.percentile(75.0),
            self.percentile(95.0),
        )
    }

    /// Empirical CDF sampled at `points` evenly spaced values across the
    /// data range — the Figure 14 curve as `(value, fraction ≤ value)`.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        let (lo, hi) = (self.min(), self.max());
        let n = self.sorted.len() as f64;
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                let count = self.sorted.partition_point(|&v| v <= x);
                (x, count as f64 / n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.std_dev() - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_values(&[0.0, 10.0]);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.percentile(25.0), 2.5);
    }

    #[test]
    fn single_value_sample() {
        let s = Summary::from_values(&[7.0]);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.percentile(95.0), 7.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::from_values(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn table4_row_matches_individual_calls() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::from_values(&values);
        let (mean, p25, med, p75, p95) = s.table4_row();
        assert_eq!(mean, s.mean());
        assert_eq!(p25, s.percentile(25.0));
        assert_eq!(med, s.median());
        assert_eq!(p75, s.percentile(75.0));
        assert_eq!(p95, s.percentile(95.0));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let values: Vec<f64> = (0..50).map(|i| ((i * 17) % 23) as f64).collect();
        let s = Summary::from_values(&values);
        let cdf = s.cdf(20);
        assert_eq!(cdf.len(), 20);
        for pair in cdf.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "CDF must be monotone");
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_is_rejected() {
        Summary::from_values(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        Summary::from_values(&[1.0, f64::NAN]);
    }
}

//! The global metrics registry: lock-free sharded counters, gauges, and
//! histogram registration.
//!
//! # Recording cost
//!
//! * **Counters** are sharded: each counter holds [`SHARDS`] cache-line-
//!   padded relaxed atomics and every thread is assigned one shard at first
//!   use, so concurrent increments from pool workers never contend on one
//!   cache line. Reading a counter sums the shards.
//! * **Gauges** are single relaxed atomics (`set` / `record_max`).
//! * The registry mutex is touched only at metric *registration* (first use
//!   of a [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] site) and at
//!   exposition time — never on the recording hot path.
//! * When telemetry is disabled at runtime ([`crate::set_enabled`]), every
//!   record call is one relaxed atomic load. With `--no-default-features`
//!   the calls compile to nothing.

#[cfg(feature = "telemetry")]
pub use enabled_impl::*;

#[cfg(feature = "telemetry")]
mod enabled_impl {
    use crate::histogram::{Histogram, HistogramSnapshot};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Counter shard count. Threads are assigned shards round-robin, so up
    /// to this many threads increment without sharing a cache line.
    pub const SHARDS: usize = 16;

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Whether recording is enabled (one relaxed atomic load — the entire
    /// cost of every record call while disabled).
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime. Metrics keep their accumulated
    /// values while disabled; they just stop moving.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }

    /// One cache line holding one shard's count.
    #[repr(align(64))]
    #[derive(Debug)]
    struct Shard(AtomicU64);

    /// A monotonically increasing sharded counter.
    #[derive(Debug)]
    pub struct Counter {
        pub(crate) name: &'static str,
        pub(crate) help: &'static str,
        /// Optional `key="value"` label pair.
        pub(crate) label: Option<(&'static str, String)>,
        shards: [Shard; SHARDS],
    }

    impl Counter {
        fn new(
            name: &'static str,
            help: &'static str,
            label: Option<(&'static str, String)>,
        ) -> Self {
            Counter {
                name,
                help,
                label,
                shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))),
            }
        }

        /// Adds `n` to this thread's shard (one relaxed `fetch_add`).
        #[inline]
        pub fn add(&self, n: u64) {
            let i = MY_SHARD.with(|s| *s);
            self.shards[i].0.fetch_add(n, Ordering::Relaxed);
        }

        /// Adds 1.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// The current total (sums all shards).
        pub fn value(&self) -> u64 {
            self.shards
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum()
        }
    }

    /// A last-value / high-water-mark gauge.
    #[derive(Debug)]
    pub struct Gauge {
        pub(crate) name: &'static str,
        pub(crate) help: &'static str,
        pub(crate) label: Option<(&'static str, String)>,
        value: AtomicU64,
    }

    impl Gauge {
        /// Stores `v`.
        #[inline]
        pub fn set(&self, v: u64) {
            self.value.store(v, Ordering::Relaxed);
        }

        /// Raises the gauge to `v` if it is below it (high-water mark).
        #[inline]
        pub fn record_max(&self, v: u64) {
            self.value.fetch_max(v, Ordering::Relaxed);
        }

        /// The current value.
        pub fn value(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// Sort key inside the registry: `(metric name, rendered label)`. The
    /// exposition order is this key's `Ord`, so output is deterministic.
    type Key = (String, String);

    fn key_of(name: &str, label: Option<(&str, &str)>) -> Key {
        (
            name.to_string(),
            label
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .unwrap_or_default(),
        )
    }

    #[derive(Default)]
    struct Inner {
        counters: BTreeMap<Key, &'static Counter>,
        gauges: BTreeMap<Key, &'static Gauge>,
        histograms: BTreeMap<Key, &'static Histogram>,
    }

    /// A metrics registry. Almost every caller wants [`global`]; tests build
    /// private instances so exposition output can be compared exactly.
    pub struct Registry {
        inner: Mutex<Inner>,
    }

    impl Default for Registry {
        fn default() -> Self {
            Registry::new()
        }
    }

    impl Registry {
        /// An empty registry.
        pub const fn new() -> Self {
            Registry {
                inner: Mutex::new(Inner {
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    histograms: BTreeMap::new(),
                }),
            }
        }

        /// The counter named `name` (registered on first use). Repeated
        /// calls with the same name return the same counter; `help` is
        /// taken from the first registration.
        pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
            self.counter_labeled_opt(name, help, None)
        }

        /// A labeled counter: one time series per `(name, value)` pair.
        pub fn counter_labeled(
            &self,
            name: &'static str,
            help: &'static str,
            label_key: &'static str,
            label_value: &str,
        ) -> &'static Counter {
            self.counter_labeled_opt(name, help, Some((label_key, label_value)))
        }

        fn counter_labeled_opt(
            &self,
            name: &'static str,
            help: &'static str,
            label: Option<(&'static str, &str)>,
        ) -> &'static Counter {
            let key = key_of(name, label);
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(c) = inner.counters.get(&key) {
                return c;
            }
            let leaked: &'static Counter = Box::leak(Box::new(Counter::new(
                name,
                help,
                label.map(|(k, v)| (k, v.to_string())),
            )));
            inner.counters.insert(key, leaked);
            leaked
        }

        /// The gauge named `name` (registered on first use).
        pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
            let key = key_of(name, None);
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(g) = inner.gauges.get(&key) {
                return g;
            }
            let leaked: &'static Gauge = Box::leak(Box::new(Gauge {
                name,
                help,
                label: None,
                value: AtomicU64::new(0),
            }));
            inner.gauges.insert(key, leaked);
            leaked
        }

        /// The histogram named `name` (registered on first use).
        pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
            let key = key_of(name, None);
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(h) = inner.histograms.get(&key) {
                return h;
            }
            let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(name, help)));
            inner.histograms.insert(key, leaked);
            leaked
        }

        /// The value of a counter if it has been registered (exact key
        /// match on name and optional label), else 0. For tests and
        /// assertions — never registers.
        pub fn counter_value(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
            let key = key_of(name, label);
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .counters
                .get(&key)
                .map(|c| c.value())
                .unwrap_or(0)
        }

        /// Snapshot of every registered metric, in deterministic
        /// `(name, label)` order.
        pub(crate) fn collect(&self) -> Collected {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            Collected {
                counters: inner
                    .counters
                    .values()
                    .map(|c| (c.name, c.help, c.label.clone(), c.value()))
                    .collect(),
                gauges: inner
                    .gauges
                    .values()
                    .map(|g| (g.name, g.help, g.label.clone(), g.value()))
                    .collect(),
                histograms: inner
                    .histograms
                    .values()
                    .map(|h| (h.name, h.help, h.bucket_counts(), h.snapshot()))
                    .collect(),
            }
        }
    }

    /// One scalar metric in a snapshot: `(name, help, label, value)`.
    pub(crate) type CollectedScalar = (
        &'static str,
        &'static str,
        Option<(&'static str, String)>,
        u64,
    );

    /// Materialized metric values handed to the exposition formats.
    pub(crate) struct Collected {
        pub counters: Vec<CollectedScalar>,
        pub gauges: Vec<CollectedScalar>,
        pub histograms: Vec<(
            &'static str,
            &'static str,
            [u64; crate::histogram::BUCKET_COUNT],
            HistogramSnapshot,
        )>,
    }

    static GLOBAL: Registry = Registry::new();

    /// The process-wide registry every [`LazyCounter`]/[`LazyGauge`]/
    /// [`LazyHistogram`] site registers into.
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    /// A `const`-constructible counter handle for `static` declarations at
    /// instrumentation sites; registers into [`global`] on first record.
    #[derive(Debug)]
    pub struct LazyCounter {
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, &'static str)>,
        cell: OnceLock<&'static Counter>,
    }

    impl LazyCounter {
        /// A counter site with no labels.
        pub const fn new(name: &'static str, help: &'static str) -> Self {
            LazyCounter {
                name,
                help,
                label: None,
                cell: OnceLock::new(),
            }
        }

        /// A counter site carrying one static `key="value"` label.
        pub const fn labeled(
            name: &'static str,
            help: &'static str,
            label_key: &'static str,
            label_value: &'static str,
        ) -> Self {
            LazyCounter {
                name,
                help,
                label: Some((label_key, label_value)),
                cell: OnceLock::new(),
            }
        }

        fn counter(&self) -> &'static Counter {
            self.cell.get_or_init(|| match self.label {
                None => global().counter(self.name, self.help),
                Some((k, v)) => global().counter_labeled(self.name, self.help, k, v),
            })
        }

        /// Adds `n` when telemetry is enabled.
        #[inline]
        pub fn add(&self, n: u64) {
            if enabled() {
                self.counter().add(n);
            }
        }

        /// Adds 1 when telemetry is enabled.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// The current total.
        pub fn value(&self) -> u64 {
            self.counter().value()
        }
    }

    /// A `const`-constructible gauge handle for `static` declarations.
    #[derive(Debug)]
    pub struct LazyGauge {
        name: &'static str,
        help: &'static str,
        cell: OnceLock<&'static Gauge>,
    }

    impl LazyGauge {
        /// A gauge site.
        pub const fn new(name: &'static str, help: &'static str) -> Self {
            LazyGauge {
                name,
                help,
                cell: OnceLock::new(),
            }
        }

        fn gauge(&self) -> &'static Gauge {
            self.cell
                .get_or_init(|| global().gauge(self.name, self.help))
        }

        /// Stores `v` when telemetry is enabled.
        #[inline]
        pub fn set(&self, v: u64) {
            if enabled() {
                self.gauge().set(v);
            }
        }

        /// Raises the gauge to `v` when telemetry is enabled.
        #[inline]
        pub fn record_max(&self, v: u64) {
            if enabled() {
                self.gauge().record_max(v);
            }
        }

        /// The current value.
        pub fn value(&self) -> u64 {
            self.gauge().value()
        }
    }

    /// A `const`-constructible histogram handle for `static` declarations.
    #[derive(Debug)]
    pub struct LazyHistogram {
        name: &'static str,
        help: &'static str,
        cell: OnceLock<&'static Histogram>,
    }

    impl LazyHistogram {
        /// A histogram site.
        pub const fn new(name: &'static str, help: &'static str) -> Self {
            LazyHistogram {
                name,
                help,
                cell: OnceLock::new(),
            }
        }

        fn histogram(&self) -> &'static Histogram {
            self.cell
                .get_or_init(|| global().histogram(self.name, self.help))
        }

        /// Records `ns` nanoseconds when telemetry is enabled.
        #[inline]
        pub fn observe_ns(&self, ns: u64) {
            if enabled() {
                self.histogram().observe_ns(ns);
            }
        }

        /// Records a [`std::time::Duration`] when telemetry is enabled.
        #[inline]
        pub fn observe(&self, d: std::time::Duration) {
            self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }

        /// Summarizes the current contents.
        pub fn snapshot(&self) -> HistogramSnapshot {
            self.histogram().snapshot()
        }
    }

    /// A counter family with a *dynamic* label value (e.g. a failpoint
    /// site name). Each distinct value is interned as its own time series;
    /// recording takes the registry lock, so families suit rare events —
    /// hot paths should use static [`LazyCounter::labeled`] handles.
    #[derive(Debug)]
    pub struct CounterFamily {
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
    }

    impl CounterFamily {
        /// A family site.
        pub const fn new(name: &'static str, help: &'static str, label_key: &'static str) -> Self {
            CounterFamily {
                name,
                help,
                label_key,
            }
        }

        /// Adds `n` to the series labeled `label_value` when telemetry is
        /// enabled.
        pub fn add(&self, label_value: &str, n: u64) {
            if enabled() {
                global()
                    .counter_labeled(self.name, self.help, self.label_key, label_value)
                    .add(n);
            }
        }

        /// Adds 1 to the series labeled `label_value`.
        pub fn inc(&self, label_value: &str) {
            self.add(label_value, 1);
        }
    }

    /// The value of a global-registry counter, 0 when never registered.
    /// `label` is the optional `(key, value)` pair of the series.
    pub fn counter_value(name: &str, label: Option<(&str, &str)>) -> u64 {
        global().counter_value(name, label)
    }
}

#[cfg(not(feature = "telemetry"))]
pub use disabled_impl::*;

#[cfg(not(feature = "telemetry"))]
mod disabled_impl {
    //! Compiled-out stubs: every record call is a no-op, every read is 0.
    use crate::histogram::HistogramSnapshot;

    /// Always `false` without the `telemetry` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `telemetry` feature.
    pub fn set_enabled(_on: bool) {}

    /// No-op counter handle without the `telemetry` feature.
    #[derive(Debug)]
    pub struct LazyCounter;

    impl LazyCounter {
        /// No-op site.
        pub const fn new(_name: &'static str, _help: &'static str) -> Self {
            LazyCounter
        }

        /// No-op site.
        pub const fn labeled(
            _name: &'static str,
            _help: &'static str,
            _label_key: &'static str,
            _label_value: &'static str,
        ) -> Self {
            LazyCounter
        }

        /// No-op.
        #[inline]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn inc(&self) {}

        /// Always 0.
        pub fn value(&self) -> u64 {
            0
        }
    }

    /// No-op gauge handle without the `telemetry` feature.
    #[derive(Debug)]
    pub struct LazyGauge;

    impl LazyGauge {
        /// No-op site.
        pub const fn new(_name: &'static str, _help: &'static str) -> Self {
            LazyGauge
        }

        /// No-op.
        #[inline]
        pub fn set(&self, _v: u64) {}

        /// No-op.
        #[inline]
        pub fn record_max(&self, _v: u64) {}

        /// Always 0.
        pub fn value(&self) -> u64 {
            0
        }
    }

    /// No-op histogram handle without the `telemetry` feature.
    #[derive(Debug)]
    pub struct LazyHistogram;

    impl LazyHistogram {
        /// No-op site.
        pub const fn new(_name: &'static str, _help: &'static str) -> Self {
            LazyHistogram
        }

        /// No-op.
        #[inline]
        pub fn observe_ns(&self, _ns: u64) {}

        /// No-op.
        #[inline]
        pub fn observe(&self, _d: std::time::Duration) {}

        /// Always empty.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::default()
        }
    }

    /// No-op counter family without the `telemetry` feature.
    #[derive(Debug)]
    pub struct CounterFamily;

    impl CounterFamily {
        /// No-op site.
        pub const fn new(
            _name: &'static str,
            _help: &'static str,
            _label_key: &'static str,
        ) -> Self {
            CounterFamily
        }

        /// No-op.
        pub fn add(&self, _label_value: &str, _n: u64) {}

        /// No-op.
        pub fn inc(&self, _label_value: &str) {}
    }

    /// Always 0 without the `telemetry` feature.
    pub fn counter_value(_name: &str, _label: Option<(&str, &str)>) -> u64 {
        0
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_over_shards() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "help");
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
        // Same name → same counter.
        assert_eq!(reg.counter("t_total", "ignored").value(), 4);
    }

    #[test]
    fn labeled_counters_are_distinct_series() {
        let reg = Registry::new();
        reg.counter_labeled("t_by_kind", "h", "kind", "a").add(1);
        reg.counter_labeled("t_by_kind", "h", "kind", "b").add(2);
        assert_eq!(reg.counter_value("t_by_kind", Some(("kind", "a"))), 1);
        assert_eq!(reg.counter_value("t_by_kind", Some(("kind", "b"))), 2);
        assert_eq!(reg.counter_value("t_by_kind", None), 0);
        assert_eq!(reg.counter_value("absent", None), 0);
    }

    #[test]
    fn gauges_set_and_record_max() {
        let reg = Registry::new();
        let g = reg.gauge("t_gauge", "h");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.value(), 5);
        g.record_max(9);
        assert_eq!(g.value(), 9);
    }

    #[test]
    fn disabling_telemetry_stops_lazy_recording() {
        static C: LazyCounter = LazyCounter::new("t_toggle_total", "h");
        C.inc();
        let before = C.value();
        set_enabled(false);
        C.inc();
        assert_eq!(C.value(), before, "disabled recording must be a no-op");
        set_enabled(true);
        C.inc();
        assert_eq!(C.value(), before + 1);
    }
}
